(* exlrun: execute an EXL program against CSV data.

   Elementary cubes are read from <data-dir>/<CUBE>.csv (header row:
   dimension names then the measure name); derived cubes are written to
   <out-dir>/<CUBE>.csv.

   Examples:
     exlrun program.exl --data ./data --out ./results
     exlrun program.exl --data ./data --backend etl --verify *)

open Cmdliner
open Matrix

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* The Core back ends run the whole program on one engine; [engine] is
   the full EXLEngine facade — per-target dispatch with retry, fallback
   and quarantine (see docs/RELIABILITY.md). *)
type cli_backend = Core_backend of Core.backend | Engine_backend

let backend_conv =
  Arg.enum
    [
      ("reference", Core_backend Core.Reference);
      ("chase", Core_backend Core.Chase);
      ("sql", Core_backend Core.Sql);
      ("vector", Core_backend Core.Vector_engine);
      ("etl", Core_backend Core.Etl_engine);
      ("engine", Engine_backend);
    ]

let load_data data_dir (program : Core.program) =
  let registry = Registry.create () in
  let errors = ref [] in
  List.iter
    (fun schema ->
      let path = Filename.concat data_dir (schema.Schema.name ^ ".csv") in
      if Sys.file_exists path then
        match Csv.cube_of_string schema (read_file path) with
        | Ok cube -> Registry.add registry Registry.Elementary cube
        | Error msg -> errors := Printf.sprintf "%s: %s" path msg :: !errors
      else
        Printf.eprintf "warning: no data for elementary cube %s (%s missing)\n"
          schema.Schema.name path)
    (Exl.Typecheck.elementary_schemas program);
  if !errors = [] then Ok registry
  else Error (String.concat "\n" (List.rev !errors))

let write_results out_dir (program : Core.program) result =
  (try Sys.mkdir out_dir 0o755 with _ -> ());
  List.iter
    (fun schema ->
      let name = schema.Schema.name in
      if not (Exl.Normalize.is_temp name) then
        match Registry.find result name with
        | Some cube ->
            let path = Filename.concat out_dir (name ^ ".csv") in
            let oc = open_out path in
            Fun.protect
              ~finally:(fun () -> close_out_noerr oc)
              (fun () -> Csv.cube_to_channel oc cube);
            Printf.printf "wrote %s (%d tuples)\n" path (Cube.cardinality cube)
        | None -> ())
    (Exl.Typecheck.derived_schemas program)

(* The EXLEngine facade path: dispatch per-target subgraphs with retry,
   fallback and quarantine.  A degraded run (quarantined or skipped
   cubes) still writes every cube it computed, prints the failure
   summary, and exits non-zero. *)
let run_engine ~source ~program ~registry ~out_dir ~overrides ~fault_plan
    ~max_attempts ~backoff ~timeout ~shards ~pool_size =
  let faults =
    match fault_plan with
    | None -> Ok None
    | Some path -> (
        match Engine.Faults.of_string (read_file path) with
        | Ok plan -> Ok (Some plan)
        | Error msg -> Error (Printf.sprintf "%s: %s" path msg))
  in
  match faults with
  | Error msg ->
      prerr_endline ("error: " ^ msg);
      1
  | Ok faults -> (
      let config =
        {
          Engine.Exlengine.default_config with
          policy = { Engine.Dispatcher.default_policy with overrides };
          retry =
            {
              Engine.Dispatcher.default_retry with
              max_attempts;
              base_backoff = backoff;
              subgraph_timeout = timeout;
            };
          faults;
          shards;
          pool_size;
        }
      in
      let engine = Engine.Exlengine.create ~config () in
      let loaded =
        match Engine.Exlengine.register_program engine ~name:"main" source with
        | Error _ as e -> e
        | Ok () ->
            List.fold_left
              (fun acc name ->
                match acc with
                | Error _ -> acc
                | Ok () ->
                    Engine.Exlengine.load_elementary engine
                      (Registry.find_exn registry name))
              (Ok ()) (Registry.names registry)
      in
      match loaded with
      | Error msg ->
          prerr_endline ("error: " ^ msg);
          1
      | Ok () -> (
          match Engine.Exlengine.recompute engine with
          | Error msg ->
              prerr_endline ("error: " ^ msg);
              1
          | Ok report ->
              write_results out_dir program (Engine.Exlengine.store engine);
              let summary = Engine.Dispatcher.failure_summary report in
              if summary <> "" then print_endline summary;
              if Engine.Dispatcher.degraded report then 1 else 0))

let run_inner file data_dir out_dir backend verify overrides fault_plan
    max_attempts backoff timeout shards pool_size =
  let source = read_file file in
  match Exl.Program.load source with
  | Error e ->
      prerr_endline
        ("error: " ^ Exl.Errors.to_string_with_source ~source e);
      1
  | Ok program -> (
      match load_data data_dir program with
      | Error msg ->
          prerr_endline ("error: " ^ msg);
          1
      | Ok registry -> (
          match backend with
          | Engine_backend ->
              run_engine ~source ~program ~registry ~out_dir ~overrides
                ~fault_plan ~max_attempts ~backoff ~timeout ~shards ~pool_size
          | Core_backend backend -> (
          let verified =
            if verify then Core.verify_all_backends program registry
            else Ok ()
          in
          match verified with
          | Error msg ->
              prerr_endline ("verification failed:\n" ^ msg);
              1
          | Ok () -> (
              if verify then
                print_endline "verification: all back ends agree";
              match Core.run ~backend program registry with
              | Error msg ->
                  prerr_endline ("error: " ^ msg);
                  1
              | Ok result ->
                  write_results out_dir program result;
                  0))))

let write_file path contents =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc contents)

(* Observability wrapper: when any telemetry output is requested,
   install an ambient collector around the whole run, then export.
   [--normalize-times] zeroes timestamps/durations and suppresses the
   provenance wall-clock columns so outputs are byte-deterministic —
   what the golden tests diff. *)
let run file data_dir out_dir backend verify overrides fault_plan max_attempts
    backoff timeout shards pool_size trace_file metrics_file events_file
    provenance normalize =
  let wanted =
    trace_file <> None || metrics_file <> None || events_file <> None
    || provenance
  in
  if not wanted then
    run_inner file data_dir out_dir backend verify overrides fault_plan
      max_attempts backoff timeout shards pool_size
  else begin
    let c = Obs.create () in
    let code =
      Obs.with_collector c (fun () ->
          run_inner file data_dir out_dir backend verify overrides fault_plan
            max_attempts backoff timeout shards pool_size)
    in
    Option.iter
      (fun path -> write_file path (Obs.Export.chrome_trace ~normalize c.Obs.trace))
      trace_file;
    Option.iter
      (fun path -> write_file path (Obs.Export.prometheus c.Obs.metrics))
      metrics_file;
    Option.iter
      (fun path ->
        write_file path
          (Obs.Export.jsonl ~normalize c.Obs.trace c.Obs.metrics
             c.Obs.provenance))
      events_file;
    if provenance then
      print_string (Obs.Provenance.report ~timings:(not normalize) c.Obs.provenance);
    code
  end

(* [exlrun update]: recompute a baseline, then apply a batched revision
   file and propagate it incrementally through the determination DAG
   (docs/INCREMENTAL.md). *)
let run_update file data_dir updates_file out_dir =
  let source = read_file file in
  match Exl.Program.load source with
  | Error e ->
      prerr_endline ("error: " ^ Exl.Errors.to_string_with_source ~source e);
      1
  | Ok program -> (
      match load_data data_dir program with
      | Error msg ->
          prerr_endline ("error: " ^ msg);
          1
      | Ok registry -> (
          let engine = Engine.Exlengine.create () in
          let prepared =
            match Engine.Exlengine.register_program engine ~name:"main" source with
            | Error _ as e -> e
            | Ok () -> (
                let rec load = function
                  | [] -> Ok ()
                  | name :: rest -> (
                      match
                        Engine.Exlengine.load_elementary engine
                          (Registry.find_exn registry name)
                      with
                      | Ok () -> load rest
                      | Error _ as e -> e)
                in
                match load (Registry.names registry) with
                | Error _ as e -> e
                | Ok () -> (
                    match Engine.Exlengine.recompute engine with
                    | Error _ as e -> e
                    | Ok baseline -> (
                        (* Warm the solution cache so the batch below
                           propagates incrementally. *)
                        match Engine.Exlengine.warm engine with
                        | Error _ as e -> e
                        | Ok () -> Ok baseline)))
          in
          match prepared with
          | Error msg ->
              prerr_endline ("error: " ^ msg);
              1
          | Ok baseline -> (
              Printf.printf "baseline: recomputed %s\n"
                (String.concat " " baseline.Engine.Dispatcher.recomputed);
              let schema_of =
                Engine.Determination.schema
                  (Engine.Exlengine.determination engine)
              in
              match
                Engine.Update.of_string ~schema_of (read_file updates_file)
              with
              | Error msg ->
                  prerr_endline
                    (Printf.sprintf "error: %s: %s" updates_file msg);
                  1
              | Ok updates -> (
                  match Engine.Exlengine.apply_updates engine updates with
                  | Error msg ->
                      prerr_endline ("error: " ^ msg);
                      1
                  | Ok r ->
                      Printf.printf "updated: %s (%d fact(s) changed)\n"
                        (String.concat " " r.Engine.Exlengine.updated)
                        r.Engine.Exlengine.facts_changed;
                      Printf.printf "recomputed: %s\n"
                        (String.concat " " r.Engine.Exlengine.recomputed);
                      Printf.printf
                        "rederived %d of %d facts (strata: %d skipped, %d \
                         rederived)\n"
                        r.Engine.Exlengine.facts_rederived
                        r.Engine.Exlengine.total_facts
                        r.Engine.Exlengine.strata_skipped
                        r.Engine.Exlengine.strata_rederived;
                      write_results out_dir program
                        (Engine.Exlengine.store engine);
                      0))))

let file_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"EXL program file.")

let data_arg =
  Arg.(
    required
    & opt (some dir) None
    & info [ "d"; "data" ] ~docv:"DIR" ~doc:"Directory with <CUBE>.csv input files.")

let out_arg =
  Arg.(
    value & opt string "results"
    & info [ "o"; "out" ] ~docv:"DIR" ~doc:"Output directory (default: results).")

let backend_arg =
  Arg.(
    value
    & opt backend_conv (Core_backend Core.Reference)
    & info [ "b"; "backend" ] ~docv:"BACKEND"
        ~doc:
          "Execution back end: $(b,reference) (default), $(b,chase), $(b,sql), \
           $(b,vector), $(b,etl), or $(b,engine) for the full dispatcher with \
           retry, target fallback and quarantine.")

let override_arg =
  Arg.(
    value
    & opt_all (pair ~sep:'=' string string) []
    & info [ "override" ] ~docv:"CUBE=TARGET"
        ~doc:
          "Pin a cube to a target system (repeatable; $(b,engine) back end \
           only).")

let fault_plan_arg =
  Arg.(
    value
    & opt (some file) None
    & info [ "fault-plan" ] ~docv:"FILE"
        ~doc:
          "Inject deterministic failures from a fault-plan file (see \
           docs/RELIABILITY.md; $(b,engine) back end only).")

let max_attempts_arg =
  Arg.(
    value & opt int 3
    & info [ "max-attempts" ] ~docv:"N"
        ~doc:"Attempts per dispatch step before falling back ($(b,engine)).")

let backoff_arg =
  Arg.(
    value & opt float 0.01
    & info [ "backoff" ] ~docv:"SECONDS"
        ~doc:"Base retry backoff; 0 disables waiting ($(b,engine)).")

let timeout_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "timeout" ] ~docv:"SECONDS"
        ~doc:"Wall-clock budget per subgraph execution ($(b,engine)).")

let shards_arg =
  Arg.(
    value & opt int 1
    & info [ "shards" ] ~docv:"N"
        ~doc:
          "Partition every full chase into $(docv) shards and run them on \
           the domain pool with work stealing ($(b,engine) back end only; \
           see docs/SHARDING.md).  1 disables sharding.")

let pool_size_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "pool-size" ] ~docv:"N"
        ~doc:
          "Worker-domain count for the engine's pool ($(b,engine) back end \
           only).  Defaults to the machine's recommended domain count.")

let verify_arg =
  Arg.(
    value & flag
    & info [ "verify" ]
        ~doc:"Run all back ends and check they produce identical cubes first.")

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Write a Chrome-trace JSON of the run (hierarchical spans, one \
           lane per domain) to $(docv); load it in Perfetto or \
           chrome://tracing.")

let metrics_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics" ] ~docv:"FILE"
        ~doc:
          "Write run counters, gauges and histograms in Prometheus text \
           format to $(docv).")

let events_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "events" ] ~docv:"FILE"
        ~doc:
          "Write the full event log (spans, metrics, provenance) as JSON \
           Lines to $(docv).")

let provenance_arg =
  Arg.(
    value & flag
    & info [ "provenance" ]
        ~doc:
          "Print the run provenance report: which tgds, target engine, \
           dispatch wave and attempt count produced each output cube.")

let normalize_arg =
  Arg.(
    value & flag
    & info [ "normalize-times" ]
        ~doc:
          "Zero all timestamps and durations in telemetry outputs (for \
           byte-deterministic golden tests).")

let updates_arg =
  Arg.(
    required
    & opt (some file) None
    & info [ "u"; "updates" ] ~docv:"FILE"
        ~doc:
          "Update-batch file: one $(b,set CUBE key... value) or \
           $(b,del CUBE key...) per line ($(b,#) comments allowed).")

let cmd =
  let doc = "run EXL statistical programs against CSV data" in
  Cmd.v
    (Cmd.info "exlrun" ~version:"1.0" ~doc)
    Term.(
      const run $ file_arg $ data_arg $ out_arg $ backend_arg $ verify_arg
      $ override_arg $ fault_plan_arg $ max_attempts_arg $ backoff_arg
      $ timeout_arg $ shards_arg $ pool_size_arg $ trace_arg $ metrics_arg
      $ events_arg $ provenance_arg $ normalize_arg)

let update_cmd =
  let doc =
    "apply a batched elementary-data revision and incrementally recompute \
     exactly the affected derived cubes"
  in
  Cmd.v
    (Cmd.info "exlrun update" ~doc)
    Term.(const run_update $ file_arg $ data_arg $ updates_arg $ out_arg)

(* [exlrun update …] dispatches to the update subcommand; anything else
   keeps the historical positional interface ([exlrun file.exl --data]),
   which a command group would shadow. *)
let () =
  let argv = Sys.argv in
  if Array.length argv > 1 && argv.(1) = "update" then
    let rest = Array.sub argv 2 (Array.length argv - 2) in
    exit (Cmd.eval' ~argv:(Array.append [| "exlrun update" |] rest) update_cmd)
  else exit (Cmd.eval' cmd)
