(* The experiment harness: X1-X9 (see DESIGN.md and EXPERIMENTS.md).

   The paper has no quantitative evaluation tables (it is an industrial
   experience paper); these experiments quantify each claim its prose
   makes, and their printed tables are the repository's "evaluation
   section".  Absolute numbers are machine-dependent; the shapes are
   what EXPERIMENTS.md discusses. *)
open Matrix

(* Measurement discipline: one untimed warmup run (fills lazy caches —
   indexes, memoized batches, translation tables), then per-repetition
   samples until >= 0.1 s total (at least 5 runs, at most 200).  Rows
   report the MEDIAN, which a single GC pause or scheduler blip cannot
   move the way it moves a mean, plus the relative spread
   (p90 - p10) / median so tables show how trustworthy each median
   is.  The regression guards compare medians only. *)
type sample = {
  median_seconds : float;
  spread_pct : float;  (** (p90 - p10) / median, as a percentage *)
  sample_reps : int;
}

let sample_stats durations =
  let sorted = Array.copy durations in
  Array.sort compare sorted;
  let n = Array.length sorted in
  let at p =
    sorted.(min (n - 1) (int_of_float (p *. float_of_int (n - 1) +. 0.5)))
  in
  let median =
    if n mod 2 = 1 then sorted.(n / 2)
    else (sorted.((n / 2) - 1) +. sorted.(n / 2)) /. 2.
  in
  {
    median_seconds = median;
    spread_pct =
      (if median > 0. then (at 0.9 -. at 0.1) /. median *. 100. else 0.);
    sample_reps = n;
  }

let samples_of elapsed f =
  ignore (f ());
  let durations = ref [] in
  let total = ref 0. in
  let reps = ref 0 in
  while (!total < 0.1 || !reps < 5) && !reps < 200 do
    let d = elapsed f in
    durations := d :: !durations;
    total := !total +. d;
    incr reps
  done;
  Array.of_list !durations

let cpu_elapsed f =
  let t0 = Sys.time () in
  ignore (f ());
  Sys.time () -. t0

(* Wall clock via the monotone shim: an NTP step mid-measurement must
   not produce a negative (or inflated) reading. *)
let wall_elapsed f =
  let t0 = Obs.Clock.now () in
  ignore (f ());
  Obs.Clock.elapsed t0

let time_stats f = sample_stats (samples_of cpu_elapsed f)

(* Wall-clock medians, for code that parks domains (CPU time would
   undercount) or that we compare against parallel runs. *)
let wall_stats f = sample_stats (samples_of wall_elapsed f)

(* Median seconds per run (the names predate the median harness; every
   call site wants the robust central estimate, so they all get it). *)
let time_avg f = (time_stats f).median_seconds
let wall_avg f = (wall_stats f).median_seconds

let time_once f =
  let t0 = Sys.time () in
  let r = f () in
  (r, Sys.time () -. t0)

let wall_time_once f =
  let t0 = Obs.Clock.now () in
  let r = f () in
  (r, Obs.Clock.elapsed t0)

let ms seconds = seconds *. 1000.

let compile_exn = Core.compile_exn

let run_exn ~backend program data =
  match Core.run ~backend program data with
  | Ok r -> r
  | Error msg -> failwith (Core.backend_name backend ^ ": " ^ msg)

let header title = Printf.printf "\n### %s\n\n" title

(* ------------------------------------------------------------------ *)
(* X1 — Figure 1: the ETL flow for tgd (2) vs the other engines on the
   same single-join tgd; throughput in joined rows per second. *)

let x1 () =
  header
    "X1  Figure 1: one join tgd (RGDP-style) across engines [rows/s, higher is better]";
  let program = compile_exn Workload.join_program in
  Printf.printf "%10s %14s %14s %14s %14s\n" "rows" "sql" "etl" "vector" "chase";
  List.iter
    (fun rows ->
      let data = Workload.join_registry ~rows () in
      let throughput backend =
        let seconds = time_avg (fun () -> run_exn ~backend program data) in
        float_of_int rows /. seconds
      in
      Printf.printf "%10d %14.0f %14.0f %14.0f %14.0f\n%!" rows
        (throughput Core.Sql) (throughput Core.Etl_engine)
        (throughput Core.Vector_engine) (throughput Core.Chase))
    [ 1_000; 5_000; 20_000 ]

(* ------------------------------------------------------------------ *)
(* X2 — the Section 2 worked example end to end on every back end. *)

let x2 () =
  header "X2  Section 2 GDP program end to end [ms, lower is better]";
  let program = compile_exn Workload.overview_program in
  Printf.printf "%22s %10s %10s %10s %10s %10s\n" "workload" "reference"
    "chase" "sql" "vector" "etl";
  List.iter
    (fun (regions, years) ->
      let data = Workload.overview_registry ~regions ~years () in
      let t backend = ms (time_avg (fun () -> run_exn ~backend program data)) in
      Printf.printf "%14d reg x %dy %10.1f %10.1f %10.1f %10.1f %10.1f\n%!"
        regions years (t Core.Reference) (t Core.Chase) (t Core.Sql)
        (t Core.Vector_engine) (t Core.Etl_engine))
    [ (2, 2); (4, 4); (8, 4) ];
  (* correctness of every cell above *)
  let data = Workload.overview_registry ~regions:4 ~years:4 () in
  match Core.verify_all_backends program data with
  | Ok () -> print_endline "all back ends verified identical on the 4x4 workload."
  | Error msg -> Printf.printf "VERIFICATION FAILED:\n%s\n" msg

(* ------------------------------------------------------------------ *)
(* X3 — translation vs execution cost: the Section 6 claim that the
   metadata-driven approach "does not affect the global elapsed time"
   because translation is offline and data-independent. *)

let x3 () =
  header "X3  Translation vs execution cost [ms]";
  Printf.printf "%12s %12s %18s %18s %12s\n" "statements" "translate"
    "execute (1k rows)" "execute (20k rows)" "ratio@20k";
  List.iter
    (fun length ->
      let source = Workload.chain_program ~length in
      let program = compile_exn source in
      let translate_seconds =
        time_avg (fun () ->
            match Core.sql_of program with Ok s -> s | Error e -> failwith e)
      in
      let exec_seconds rows =
        let data = Workload.chain_registry ~rows () in
        time_avg (fun () -> run_exn ~backend:Core.Sql program data)
      in
      let e1k = exec_seconds 1_000 and e20k = exec_seconds 20_000 in
      Printf.printf "%12d %12.3f %18.1f %18.1f %11.0fx\n%!" length
        (ms translate_seconds) (ms e1k) (ms e20k)
        (e20k /. translate_seconds))
    [ 2; 8; 32 ]

(* ------------------------------------------------------------------ *)
(* X4 — the chase: correctness (Section 4.2) and scaling. *)

(* One naive-vs-semi-naive measurement: same mapping, same source,
   both evaluation modes of Exchange.Chase. *)
type chase_side = {
  seconds : float;
  matches_examined : int;
  tuples_generated : int;
  rounds : int;
}

type chase_row = {
  workload : string;
  naive : chase_side;
  semi_naive : chase_side;
}

let mapping_of source_program =
  match Mappings.Generate.of_checked (compile_exn source_program) with
  | Ok g -> g.Mappings.Generate.mapping
  | Error e -> failwith (Exl.Errors.to_string e)

let chase_side ~mode mapping source =
  let run () =
    match Exchange.Chase.run ~mode mapping source with
    | Ok (_, stats) -> stats
    | Error msg -> failwith msg
  in
  let stats = run () in
  let seconds = wall_avg (fun () -> ignore (run () : Exchange.Chase.stats)) in
  {
    seconds;
    matches_examined = stats.Exchange.Chase.matches_examined;
    tuples_generated = stats.Exchange.Chase.tuples_generated;
    rounds = stats.Exchange.Chase.rounds;
  }

let chase_row ~workload ~program ~data () =
  let mapping = mapping_of program in
  let source = Exchange.Instance.of_registry data in
  {
    workload;
    naive = chase_side ~mode:Exchange.Chase.Naive mapping source;
    semi_naive = chase_side ~mode:Exchange.Chase.Semi_naive mapping source;
  }

(* The chase workloads reported in BENCH_PR2.json: the x4 micro
   workload (overview at 2 regions x 2 years), a >= 10x scale-up of
   it, the single-join tgd at 16k rows, and a 16-step scalar chain
   (deep dependency graph, the worst case for the order-blind naive
   fixpoint). *)
let chase_rows () =
  [
    chase_row ~workload:"overview 2rx2y (x4 micro)"
      ~program:Workload.overview_program
      ~data:(Workload.overview_registry ~regions:2 ~years:2 ())
      ();
    chase_row ~workload:"overview 8rx5y (10x scale)"
      ~program:Workload.overview_program
      ~data:(Workload.overview_registry ~regions:8 ~years:5 ())
      ();
    chase_row ~workload:"join 16k rows" ~program:Workload.join_program
      ~data:(Workload.join_registry ~rows:16_000 ())
      ();
    chase_row ~workload:"chain length 16"
      ~program:(Workload.chain_program ~length:16)
      ~data:(Workload.chain_registry ~rows:2_000 ())
      ();
  ]

let print_chase_rows rows =
  Printf.printf "%-28s %10s %10s %14s %14s %8s %8s %7s\n" "workload"
    "naive ms" "semi ms" "naive matches" "semi matches" "ratio" "speedup"
    "rounds";
  List.iter
    (fun row ->
      Printf.printf "%-28s %10.1f %10.1f %14d %14d %7.1fx %7.2fx %3d/%d\n%!"
        row.workload (ms row.naive.seconds) (ms row.semi_naive.seconds)
        row.naive.matches_examined row.semi_naive.matches_examined
        (float_of_int row.naive.matches_examined
        /. float_of_int (max 1 row.semi_naive.matches_examined))
        (row.naive.seconds /. row.semi_naive.seconds)
        row.naive.rounds row.semi_naive.rounds)
    rows

let x4 () =
  header "X4  Chase scaling on the join tgd [per instance size]";
  let program = compile_exn Workload.join_program in
  Printf.printf "%10s %12s %16s %16s %12s\n" "rows" "time (ms)"
    "matches examined" "tuples generated" "time/row (us)";
  List.iter
    (fun rows ->
      let data = Workload.join_registry ~rows () in
      let generated =
        match Mappings.Generate.of_checked program with
        | Ok g -> g
        | Error e -> failwith (Exl.Errors.to_string e)
      in
      let source = Exchange.Instance.of_registry data in
      let (result : (Exchange.Instance.t * Exchange.Chase.stats, string) result), seconds
          =
        time_once (fun () ->
            Exchange.Chase.run generated.Mappings.Generate.mapping source)
      in
      match result with
      | Error msg -> failwith msg
      | Ok (_, stats) ->
          Printf.printf "%10d %12.1f %16d %16d %12.2f\n%!" rows (ms seconds)
            stats.Exchange.Chase.matches_examined
            stats.Exchange.Chase.tuples_generated
            (seconds /. float_of_int rows *. 1e6))
    [ 1_000; 4_000; 16_000; 64_000 ];
  (* the equivalence theorem, at scale *)
  let data = Workload.join_registry ~rows:16_000 () in
  (match Exchange.Verify.equivalent program data with
  | Ok _ -> print_endline "chase solution == program output (16k rows)."
  | Error msg -> Printf.printf "VERIFICATION FAILED:\n%s\n" msg);
  Printf.printf
    "\n  naive vs semi-naive evaluation [wall-clock; matches examined]\n\n";
  print_chase_rows (chase_rows ())

(* ------------------------------------------------------------------ *)
(* X5 — the determination engine: incremental vs full recomputation. *)

let x5 () =
  header "X5  Incremental recomputation via the determination engine [ms]";
  let fresh_engine () =
    let engine = Engine.Exlengine.create () in
    (match
       Engine.Exlengine.register_program engine ~name:"production"
         Workload.overview_program
     with
    | Ok () -> ()
    | Error msg -> failwith msg);
    (match
       Engine.Exlengine.register_program engine ~name:"dissemination"
         Workload.dissemination_program
    with
    | Ok () -> ()
    | Error msg -> failwith msg);
    let data = Workload.overview_registry ~regions:6 ~years:4 () in
    (match Engine.Exlengine.load_elementary engine (Registry.find_exn data "PDR") with
    | Ok () -> ()
    | Error msg -> failwith msg);
    (match
       Engine.Exlengine.load_elementary engine (Registry.find_exn data "RGDPPC")
     with
    | Ok () -> ()
    | Error msg -> failwith msg);
    (engine, data)
  in
  let engine, data = fresh_engine () in
  let _, full_seconds =
    time_once (fun () ->
        match Engine.Exlengine.recompute engine with
        | Ok r -> r
        | Error msg -> failwith msg)
  in
  let reload name =
    match Engine.Exlengine.load_elementary engine (Registry.find_exn data name) with
    | Ok () -> ()
    | Error msg -> failwith msg
  in
  let timed_recompute () =
    let report, seconds =
      time_once (fun () ->
          match Engine.Exlengine.recompute engine with
          | Ok r -> r
          | Error msg -> failwith msg)
    in
    (List.length report.Engine.Dispatcher.recomputed, seconds)
  in
  reload "RGDPPC";
  let n_partial, partial_seconds = timed_recompute () in
  reload "PDR";
  let n_full2, full2_seconds = timed_recompute () in
  Printf.printf "%-34s %10.1f ms  (%d cubes; includes first-time translation)\n"
    "initial full computation" (ms full_seconds) 7;
  Printf.printf "%-34s %10.1f ms  (%d cubes; PQR skipped)\n"
    "revision touching RGDPPC only" (ms partial_seconds) n_partial;
  Printf.printf "%-34s %10.1f ms  (%d cubes; warm translation cache)\n"
    "revision touching PDR (everything)" (ms full2_seconds) n_full2;
  Printf.printf "incremental speedup vs full: %.2fx\n"
    (full2_seconds /. partial_seconds)

(* ------------------------------------------------------------------ *)
(* X6 — operator class vs target: "not all operators are natively
   supported by all systems". *)

let x6 () =
  header "X6  Operator class x engine [ms; n/s = not supported]";
  let cell backend source data =
    let program = compile_exn source in
    (* mirror the dispatcher's capability check *)
    let supported =
      match Mappings.Generate.of_checked program with
      | Error _ -> false
      | Ok g ->
          let target =
            match backend with
            | Core.Sql -> Engine.Target.sql
            | Core.Vector_engine -> Engine.Target.vector
            | Core.Etl_engine -> Engine.Target.etl_no_stl
            | _ -> Engine.Target.sql
          in
          List.for_all target.Engine.Target.supports
            g.Mappings.Generate.mapping.Mappings.Mapping.t_tgds
    in
    if not supported then "n/s"
    else Printf.sprintf "%.1f" (ms (time_avg (fun () -> run_exn ~backend program data)))
  in
  let series_data = Workload.series_registry ~quarters:200 ~regions:20 () in
  let join_data = Workload.join_registry ~rows:4_000 () in
  Printf.printf "%-26s %10s %10s %10s\n" "operator class" "sql" "vector" "etl";
  List.iter
    (fun (label, source, data) ->
      Printf.printf "%-26s %10s %10s %10s\n%!" label
        (cell Core.Sql source data)
        (cell Core.Vector_engine source data)
        (cell Core.Etl_engine source data))
    [
      ("tuple-level (join +ops)", Workload.join_program, join_data);
      ("aggregation (group by)", Workload.agg_program, series_data);
      ("black box (stl trend)", Workload.stl_program, series_data);
    ]

(* ------------------------------------------------------------------ *)
(* X7 — ablation: materialization strategy on the SQL target.
   Per-tgd INSERTs (the paper's base architecture), CREATE VIEW for
   temporaries (the Section 6 reformulation), and tgd fusion (the
   complex-tgd simplification). *)

let x7 () =
  header "X7  Ablation: materialization strategy on the SQL target [ms]";
  let programs =
    [
      ("overview (GDP)", Workload.overview_program,
       fun () -> Workload.overview_registry ~regions:4 ~years:4 ());
      ("chain of 16 scalar ops", Workload.chain_program ~length:16,
       fun () -> Workload.chain_registry ~rows:20_000 ());
    ]
  in
  Printf.printf "%-24s %12s %12s %12s %10s\n" "program" "insert/tgd"
    "views(tmp)" "fused tgds" "tgds";
  List.iter
    (fun (label, source, data_fn) ->
      let checked = compile_exn source in
      let data = data_fn () in
      let run ?fused ?views () =
        match Relational.Sql_target.run_program ?fused ?views checked data with
        | Ok _ -> ()
        | Error e -> failwith (Exl.Errors.to_string e)
      in
      let t_insert = ms (time_avg (fun () -> run ())) in
      let t_views = ms (time_avg (fun () -> run ~views:`Temporaries ())) in
      let t_fused = ms (time_avg (fun () -> run ~fused:true ())) in
      let tgds =
        match Mappings.Generate.of_checked checked with
        | Ok g ->
            let unfused =
              List.length g.Mappings.Generate.mapping.Mappings.Mapping.t_tgds
            in
            let fused =
              List.length
                (Mappings.Fuse.mapping g.Mappings.Generate.mapping)
                  .Mappings.Mapping.t_tgds
            in
            Printf.sprintf "%d->%d" unfused fused
        | Error _ -> "?"
      in
      Printf.printf "%-24s %12.1f %12.1f %12.1f %10s\n%!" label t_insert t_views
        t_fused tgds)
    programs

(* ------------------------------------------------------------------ *)
(* X8 — parallel dispatch: independent per-target subgraphs on separate
   domains ("applying parallelization and optimization patterns"). *)

let x8 () =
  header "X8  Parallel dispatch of independent subgraphs [wall-clock ms]";
  let setup ~parallel =
    let config =
      {
        Engine.Exlengine.default_config with
        Engine.Exlengine.parallel_dispatch = parallel;
        Engine.Exlengine.record_history = false;
        Engine.Exlengine.targets =
          [ Engine.Target.sql; Engine.Target.vector; Engine.Target.etl_full ];
        Engine.Exlengine.policy =
          {
            Engine.Dispatcher.priority = [ "vector" ];
            (* technical metadata pinning each program to its own
               engine, so the three subgraphs can run concurrently *)
            overrides =
              [
                ("T1", "vector"); ("A1", "vector");
                ("T2", "sql"); ("A2", "sql");
                ("T3", "etl-full"); ("A3", "etl-full");
              ];
          };
      }
    in
    let engine = Engine.Exlengine.create ~config () in
    List.iter
      (fun (name, src) ->
        match Engine.Exlengine.register_program engine ~name src with
        | Ok () -> ()
        | Error msg -> failwith msg)
      Workload.independent_programs;
    let data = Workload.independent_data ~quarters:400 ~regions:24 () in
    List.iter
      (fun name ->
        match
          Engine.Exlengine.load_elementary engine (Matrix.Registry.find_exn data name)
        with
        | Ok () -> ()
        | Error msg -> failwith msg)
      [ "S1"; "S2"; "S3" ];
    (engine, data)
  in
  let timed ~parallel =
    let engine, data = setup ~parallel in
    (* warm the translation cache, then time a full recomputation *)
    (match Engine.Exlengine.recompute engine with
    | Ok _ -> ()
    | Error msg -> failwith msg);
    List.iter
      (fun name ->
        match
          Engine.Exlengine.load_elementary engine (Matrix.Registry.find_exn data name)
        with
        | Ok () -> ()
        | Error msg -> failwith msg)
      [ "S1"; "S2"; "S3" ];
    let _, seconds =
      wall_time_once (fun () ->
          match Engine.Exlengine.recompute engine with
          | Ok r -> r
          | Error msg -> failwith msg)
    in
    seconds
  in
  let cores = Stdlib.Domain.recommended_domain_count () in
  let seq = timed ~parallel:false in
  let par = timed ~parallel:true in
  Printf.printf "%-42s %10.1f ms\n" "sequential dispatch (3 subgraphs)" (ms seq);
  Printf.printf "%-42s %10.1f ms  (%d core%s available)\n"
    "parallel dispatch (3 domains)" (ms par) cores
    (if cores = 1 then "" else "s");
  Printf.printf "speedup: %.2fx\n" (seq /. par);
  if cores < 2 then
    print_endline
      "note: single-core environment — domain coordination overhead makes\n\
       parallel dispatch counterproductive here; the subgraphs are verified\n\
       independent (test_engine.ml: parallel == sequential results), and on a\n\
       multicore host the three stl-heavy groups scale toward min(3, cores)x." 

(* ------------------------------------------------------------------ *)
(* X9 — incremental (delta) chase: revisions touch few tuples; work
   should scale with the revision, not the instance. *)

let x9 () =
  header "X9  Incremental chase vs full re-chase [ms vs fraction revised]";
  let rows = 40_000 in
  let program = compile_exn Workload.join_program in
  let mapping =
    match Mappings.Generate.of_checked program with
    | Ok g -> g.Mappings.Generate.mapping
    | Error e -> failwith (Exl.Errors.to_string e)
  in
  let reg = Workload.join_registry ~rows () in
  let base_source = Exchange.Instance.of_registry reg in
  let base =
    match Exchange.Chase.run mapping base_source with
    | Ok (j, _) -> j
    | Error msg -> failwith msg
  in
  Printf.printf "%12s %14s %14s %14s %12s %14s\n" "revised" "full chase"
    "incremental" "in-place" "speedup" "facts touched";
  List.iter
    (fun fraction ->
      (* revise the first [fraction] of A's tuples *)
      let revised = Matrix.Registry.copy reg in
      let a = Matrix.Registry.find_exn revised "A" in
      let keys = Matrix.Cube.keys a in
      let to_change = int_of_float (float_of_int rows *. fraction) in
      List.iteri
        (fun i k ->
          if i < to_change then
            match Matrix.Cube.find a k with
            | Some v ->
                Matrix.Cube.set a k
                  (Matrix.Value.Float (Matrix.Value.to_float_exn v +. 0.5))
            | None -> ())
        keys;
      let source = Exchange.Instance.of_registry revised in
      let full_seconds =
        time_avg (fun () ->
            match Exchange.Chase.run mapping source with
            | Ok _ -> ()
            | Error msg -> failwith msg)
      in
      let touched = ref 0 in
      let incr_seconds =
        time_avg (fun () ->
            match Exchange.Delta.run_incremental mapping ~base ~source with
            | Ok (_, stats) -> touched := stats.Exchange.Chase.tuples_generated
            | Error msg -> failwith msg)
      in
      (* maintenance mode: the engine updates its live solution *)
      let live = Exchange.Instance.copy base in
      let _, in_place_seconds =
        time_once (fun () ->
            match
              Exchange.Delta.run_incremental ~in_place:true mapping ~base:live
                ~source
            with
            | Ok r -> r
            | Error msg -> failwith msg)
      in
      Printf.printf "%11.1f%% %14.1f %14.1f %14.1f %11.1fx %14d\n%!"
        (fraction *. 100.) (ms full_seconds) (ms incr_seconds)
        (ms in_place_seconds)
        (full_seconds /. in_place_seconds)
        !touched)
    [ 0.001; 0.01; 0.1; 0.5 ]

(* ------------------------------------------------------------------ *)
(* X10 — observability overhead.  The exl-obs layer is an ambient
   nullable sink: with no collector installed every instrumentation
   site is an atomic load and a branch, so the instrumented engine must
   run within 5% of its pre-instrumentation self; with a collector it
   additionally pays span records and aggregated counter flushes. *)

type obs_overhead = {
  disabled_seconds : float;
  enabled_seconds : float;
  enabled_overhead_pct : float;
  disabled_site_ns : float;  (** one disabled [Obs.count] call *)
  counters : (string * int) list;
      (** chase counters from one instrumented run, for the bench JSON *)
}

let obs_overhead () =
  let mapping = mapping_of Workload.overview_program in
  let data = Workload.overview_registry ~regions:8 ~years:5 () in
  let source = Exchange.Instance.of_registry data in
  let run () =
    match Exchange.Chase.run mapping source with
    | Ok _ -> ()
    | Error msg -> failwith msg
  in
  Obs.uninstall ();
  let disabled_seconds = wall_avg run in
  let collector = Obs.create () in
  let enabled_seconds = Obs.with_collector collector (fun () -> wall_avg run) in
  let counters = Obs.Metrics.counters collector.Obs.metrics in
  (* the disabled fast path itself, per call site *)
  let calls = 10_000_000 in
  let t0 = Obs.Clock.now () in
  for _ = 1 to calls do
    Obs.count "bench.disabled_site"
  done;
  let disabled_site_ns = Obs.Clock.elapsed t0 /. float_of_int calls *. 1e9 in
  {
    disabled_seconds;
    enabled_seconds;
    enabled_overhead_pct =
      (enabled_seconds /. disabled_seconds -. 1.) *. 100.;
    disabled_site_ns;
    counters;
  }

let x10 () =
  header "X10  Observability overhead [semi-naive chase, overview 8rx5y]";
  let o = obs_overhead () in
  Printf.printf "%-38s %10.2f ms\n" "chase, no collector installed"
    (ms o.disabled_seconds);
  Printf.printf "%-38s %10.2f ms  (%+.1f%%)\n"
    "chase, collector installed" (ms o.enabled_seconds)
    o.enabled_overhead_pct;
  Printf.printf "%-38s %10.1f ns\n" "one disabled instrumentation site"
    o.disabled_site_ns;
  Printf.printf "\n  counters from the instrumented run:\n";
  List.iter
    (fun (name, v) -> Printf.printf "    %-28s %10d\n" name v)
    o.counters

(* ------------------------------------------------------------------ *)
(* X11 — batched updates through the facade: [apply_updates] against a
   warm solution cache vs a from-scratch [recompute_all] (warm
   translation cache), on the 10x overview workload.  The incremental
   rows are what BENCH_PR5.json records and the CI guard re-measures. *)

type incr_row = {
  label : string;
  batch : int;  (** updates per batch *)
  scratch_seconds : float;
  incr_seconds : float;
  incr_speedup : float;
  facts_rederived : int;  (** deterministic: drift means an algorithm change *)
  total_facts : int;
  strata_skipped : int;
  strata_rederived : int;
}

let incr_rows () =
  let config =
    { Engine.Exlengine.default_config with record_history = false }
  in
  let engine = Engine.Exlengine.create ~config () in
  let check = function Ok v -> v | Error msg -> failwith msg in
  check
    (Engine.Exlengine.register_program engine ~name:"overview"
       Workload.overview_program);
  let data = Workload.overview_registry ~regions:8 ~years:5 () in
  List.iter
    (fun name ->
      check
        (Engine.Exlengine.load_elementary engine (Registry.find_exn data name)))
    [ "PDR"; "RGDPPC" ];
  ignore (check (Engine.Exlengine.recompute_all engine) : Engine.Dispatcher.report);
  check (Engine.Exlengine.warm engine);
  (* the most recent PDR observations — revisions in production arrive
     at the tail of the series *)
  let keys =
    List.sort
      (fun a b -> String.compare (Tuple.to_string a) (Tuple.to_string b))
      (Cube.keys (Registry.find_exn (Engine.Exlengine.store engine) "PDR"))
  in
  let n_keys = List.length keys in
  let tail n = List.filteri (fun i _ -> i >= n_keys - n) keys in
  (* Each timed application must differ from the previous one (an
     already-applied batch compacts to zero deltas), so the revised
     value carries a per-call salt. *)
  let salt = ref 0 in
  let batch n =
    incr salt;
    let v = Value.Float (5000. +. (0.125 *. float_of_int !salt)) in
    List.map
      (fun k -> Engine.Update.set ~cube:"PDR" ~key:(Tuple.to_list k) v)
      (tail n)
  in
  let row label n =
    let apply () =
      check (Engine.Exlengine.apply_updates engine (batch n))
    in
    let report = apply () in
    let incr_seconds =
      wall_avg (fun () -> ignore (apply () : Engine.Exlengine.update_report))
    in
    let scratch_seconds =
      wall_avg (fun () ->
          ignore (check (Engine.Exlengine.recompute_all engine)
                  : Engine.Dispatcher.report))
    in
    {
      label;
      batch = n;
      scratch_seconds;
      incr_seconds;
      incr_speedup = scratch_seconds /. incr_seconds;
      facts_rederived = report.Engine.Exlengine.facts_rederived;
      total_facts = report.Engine.Exlengine.total_facts;
      strata_skipped = report.Engine.Exlengine.strata_skipped;
      strata_rederived = report.Engine.Exlengine.strata_rederived;
    }
  in
  [
    row "overview 8rx5y, 1 revised key" 1;
    row "overview 8rx5y, 1% of PDR revised" (max 1 (n_keys / 100));
    row "overview 8rx5y, 10% of PDR revised" (max 1 (n_keys / 10));
  ]

let print_incr_rows rows =
  Printf.printf "%-36s %8s %12s %12s %9s %14s %8s\n" "workload" "batch"
    "scratch ms" "incr ms" "speedup" "rederived" "strata";
  List.iter
    (fun r ->
      Printf.printf "%-36s %8d %12.1f %12.1f %8.1fx %8d/%5d %5d/%d\n%!"
        r.label r.batch (ms r.scratch_seconds) (ms r.incr_seconds)
        r.incr_speedup r.facts_rederived r.total_facts r.strata_skipped
        r.strata_rederived)
    rows

let x11 () =
  header
    "X11  Batched updates: incremental apply_updates vs recompute_all [wall-clock]";
  print_incr_rows (incr_rows ())

(* ------------------------------------------------------------------ *)
(* X12 — the exl-opt optimizer: chase the generated mapping as-is vs
   the certified-optimized mapping on the same source instance.  The
   counter deltas (matches examined, tuples generated, non-core facts)
   are deterministic; BENCH_PR6.json records them and `--guard-opt`
   re-measures them in CI. *)

type opt_side = {
  opt_seconds : float;
  opt_matches : int;  (** candidate lhs assignments enumerated *)
  opt_tuples : int;  (** facts added, temporaries included *)
  opt_nulls : int;  (** non-core facts: temp padding + outer defaults *)
}

type opt_row = {
  opt_label : string;
  tgds_before : int;
  tgds_after : int;
  est_before : int;
  est_after : int;
  unopt : opt_side;
  opt : opt_side;
}

let opt_side mapping source =
  let run () =
    match Exchange.Chase.run mapping source with
    | Ok (_, stats) -> stats
    | Error msg -> failwith msg
  in
  let stats = run () in
  {
    opt_seconds = wall_avg (fun () -> ignore (run () : Exchange.Chase.stats));
    opt_matches = stats.Exchange.Chase.matches_examined;
    opt_tuples = stats.Exchange.Chase.tuples_generated;
    opt_nulls = stats.Exchange.Chase.nulls_created;
  }

let opt_row ~label ~program ~data () =
  let mapping = mapping_of program in
  let report = Analysis.Optimize.run mapping in
  (match Analysis.Optimize.verify report with
  | Ok () -> ()
  | Error msg -> failwith ("optimizer certificate rejected: " ^ msg));
  let source = Exchange.Instance.of_registry data in
  {
    opt_label = label;
    tgds_before = List.length mapping.Mappings.Mapping.t_tgds;
    tgds_after =
      List.length report.Analysis.Optimize.optimized.Mappings.Mapping.t_tgds;
    est_before = report.Analysis.Optimize.est_before;
    est_after = report.Analysis.Optimize.est_after;
    unopt = opt_side mapping source;
    opt = opt_side report.Analysis.Optimize.optimized source;
  }

let opt_rows () =
  [
    opt_row ~label:"overview 2rx2y (x4 micro)"
      ~program:Workload.overview_program
      ~data:(Workload.overview_registry ~regions:2 ~years:2 ())
      ();
    opt_row ~label:"overview 8rx5y (10x scale)"
      ~program:Workload.overview_program
      ~data:(Workload.overview_registry ~regions:8 ~years:5 ())
      ();
    opt_row ~label:"outer growth 4rx40q"
      ~program:Workload.outer_growth_program
      ~data:(Workload.series_registry ~quarters:40 ~regions:4 ())
      ();
  ]

let print_opt_rows rows =
  Printf.printf "%-28s %7s %14s %14s %14s %10s %10s\n" "workload" "tgds"
    "est. matches" "matches" "tuples" "non-core" "time";
  List.iter
    (fun r ->
      Printf.printf
        "%-28s %3d->%-3d %6d->%-6d %6d->%-6d %6d->%-6d %4d->%-4d %4.1f->%.1fms\n%!"
        r.opt_label r.tgds_before r.tgds_after r.est_before r.est_after
        r.unopt.opt_matches r.opt.opt_matches r.unopt.opt_tuples
        r.opt.opt_tuples r.unopt.opt_nulls r.opt.opt_nulls
        (ms r.unopt.opt_seconds) (ms r.opt.opt_seconds))
    rows

let x12 () =
  header
    "X12  exl-opt: chase of the generated vs the certified-optimized mapping";
  print_opt_rows (opt_rows ())

(* ------------------------------------------------------------------ *)
(* X13 — columnar batches: the chase through the vectorized kernels
   (dictionary-encoded batches, int-keyed hash join, grouped
   aggregation over float arrays) vs the row-at-a-time engine on the
   same mapping and source.  Both paths produce identical solutions
   and identical deterministic counters — asserted here before any
   timing — so the rows compare pure execution strategy.
   BENCH_PR7.json records the medians and `--guard-col` re-measures
   them in CI against a 2x speedup floor. *)

type col_row = {
  col_label : string;
  row_wall : sample;  (** [Chase.run ~columnar:false] *)
  col_wall : sample;  (** [Chase.run ~columnar:true] *)
  col_speedup : float;  (** row median / columnar median *)
  col_matches : int;  (** identical on both paths (asserted) *)
  col_tuples : int;
}

let col_ab_check ~label mapping data =
  let run columnar =
    match
      Exchange.Chase.run ~columnar mapping (Exchange.Instance.of_registry data)
    with
    | Ok (j, stats) -> (j, stats)
    | Error msg -> failwith (label ^ ": " ^ msg)
  in
  let j_row, s_row = run false in
  let j_col, s_col = run true in
  List.iter
    (fun (s : Schema.t) ->
      let name = s.Schema.name in
      let f_row = Exchange.Instance.facts j_row name
      and f_col = Exchange.Instance.facts j_col name in
      let equal =
        List.length f_row = List.length f_col
        && List.for_all2
             (fun a b ->
               Array.length a = Array.length b
               && Array.for_all2 Value.equal a b)
             f_row f_col
      in
      if not equal then
        failwith
          (Printf.sprintf "X13 %s: columnar and row solutions differ on %s"
             label name))
    mapping.Mappings.Mapping.target;
  if
    s_row.Exchange.Chase.matches_examined <> s_col.Exchange.Chase.matches_examined
    || s_row.Exchange.Chase.tuples_generated
       <> s_col.Exchange.Chase.tuples_generated
  then
    failwith
      (Printf.sprintf "X13 %s: columnar and row chase counters differ" label);
  s_col

let col_row ~label ~program ~data () =
  let mapping = mapping_of program in
  let stats = col_ab_check ~label mapping data in
  (* One shared source per side, as in production: source-resident
     caches (indexes, memoized batches) persist across revisions. *)
  let source = Exchange.Instance.of_registry data in
  let timed columnar =
    wall_stats (fun () ->
        match Exchange.Chase.run ~columnar mapping source with
        | Ok _ -> ()
        | Error msg -> failwith msg)
  in
  let row_wall = timed false in
  let col_wall = timed true in
  {
    col_label = label;
    row_wall;
    col_wall;
    col_speedup = row_wall.median_seconds /. col_wall.median_seconds;
    col_matches = stats.Exchange.Chase.matches_examined;
    col_tuples = stats.Exchange.Chase.tuples_generated;
  }

let col_rows () =
  [
    col_row ~label:"overview 8rx5y chase"
      ~program:Workload.overview_program
      ~data:(Workload.overview_registry ~regions:8 ~years:5 ())
      ();
    col_row ~label:"grouped aggregation 200qx200r"
      ~program:Workload.agg_program
      ~data:(Workload.series_registry ~quarters:200 ~regions:200 ())
      ();
  ]

let print_col_rows rows =
  Printf.printf "%-32s %16s %16s %9s %12s %10s\n" "workload"
    "row ms (spread)" "col ms (spread)" "speedup" "matches" "tuples";
  List.iter
    (fun r ->
      Printf.printf "%-32s %9.2f (%3.0f%%) %9.2f (%3.0f%%) %8.2fx %12d %10d\n%!"
        r.col_label
        (ms r.row_wall.median_seconds) r.row_wall.spread_pct
        (ms r.col_wall.median_seconds) r.col_wall.spread_pct
        r.col_speedup r.col_matches r.col_tuples)
    rows

let x13 () =
  header
    "X13  Columnar batches: vectorized chase vs the row engine [wall-clock \
     medians]";
  print_col_rows (col_rows ());
  print_endline
    "\n  (solutions and counters verified identical before timing; both\n\
    \   sides are medians from the same process, so CPU throttling cannot\n\
    \   move the speedup.)"

(* ------------------------------------------------------------------ *)
(* X14 — the sharded multicore chase (lib/shard): the overview workload
   at 100x the X13 scale, hash-partitioned on r into 16 shards, driven
   by 1/2/4/8 domains through the work-stealing pool — exactly the
   `exlrun --shards 16 --pool-size N-1` path.  The sharded solution is
   verified identical to the unsharded chase before any timing.
   Speedups are relative to the 1-domain run of the *same* sharded
   code path: split and merge costs appear on both sides of the ratio,
   so the table isolates how the per-shard phase scales with domains.
   BENCH_PR10.json records the table and `--guard-shard` re-measures
   it in CI against a 2.5x floor at 4 domains (the floor is only
   enforceable on hosts that actually have 4 cores; see
   Baseline.run_shard). *)

type shard_row = {
  shard_domains : int;  (** participants: pool workers + the submitter *)
  shard_wall : sample;
  shard_speedup : float;  (** 1-domain median / this row's median *)
}

let shard_shard_count = 16
let shard_domain_counts = [ 1; 2; 4; 8 ]

(* One sharded chase with [pool]'s workers plus the submitting domain:
   shard tasks go through the stealing executor, as in production. *)
let shard_chase ~pool mapping source =
  match
    Exchange.Chase.run ~shards:shard_shard_count ~shard_key:"r"
      ~executor:(Engine.Pool.stealing_executor pool) mapping source
  with
  | Ok (j, _) -> j
  | Error msg -> failwith ("X14 sharded chase: " ^ msg)

let shard_ab_check mapping data =
  let unsharded =
    match Exchange.Chase.run mapping (Exchange.Instance.of_registry data) with
    | Ok (j, _) -> j
    | Error msg -> failwith ("X14 unsharded chase: " ^ msg)
  in
  let sharded =
    Engine.Pool.with_pool ~size:3 (fun pool ->
        shard_chase ~pool mapping (Exchange.Instance.of_registry data))
  in
  List.iter
    (fun (s : Schema.t) ->
      let name = s.Schema.name in
      let f_u = Exchange.Instance.facts unsharded name
      and f_s = Exchange.Instance.facts sharded name in
      let equal =
        List.length f_u = List.length f_s
        && List.for_all2
             (fun a b ->
               Array.length a = Array.length b
               && Array.for_all2 Value.equal a b)
             f_u f_s
      in
      if not equal then
        failwith
          (Printf.sprintf "X14: sharded and unsharded solutions differ on %s"
             name))
    mapping.Mappings.Mapping.target

let shard_rows () =
  Shard.Driver.install ();
  let mapping = mapping_of Workload.overview_program in
  let data = Workload.shard_registry () in
  shard_ab_check mapping data;
  (* One shared source across all domain counts, as in [col_row]:
     source-resident caches persist, and the timed runs differ only in
     how many domains drain the shard tasks. *)
  let source = Exchange.Instance.of_registry data in
  let timed domains =
    Engine.Pool.with_pool ~size:(domains - 1) (fun pool ->
        wall_stats (fun () -> ignore (shard_chase ~pool mapping source)))
  in
  let samples = List.map (fun d -> (d, timed d)) shard_domain_counts in
  let base = List.assoc 1 samples in
  List.map
    (fun (d, s) ->
      {
        shard_domains = d;
        shard_wall = s;
        shard_speedup = base.median_seconds /. s.median_seconds;
      })
    samples

let print_shard_rows rows =
  Printf.printf "%8s %20s %9s\n" "domains" "wall ms (spread)" "speedup";
  List.iter
    (fun r ->
      Printf.printf "%8d %13.1f (%3.0f%%) %8.2fx\n%!" r.shard_domains
        (ms r.shard_wall.median_seconds)
        r.shard_wall.spread_pct r.shard_speedup)
    rows

let x14 () =
  header
    "X14  Sharded chase: 16 hash shards on r, scaling over domains \
     [wall-clock medians]";
  print_shard_rows (shard_rows ());
  Printf.printf
    "\n\
    \  (sharded and unsharded solutions verified identical before timing;\n\
    \   this host reports %d core(s) — scaling beyond that is not\n\
    \   physically possible.)\n"
    (Stdlib.Domain.recommended_domain_count ())

let all () =
  x1 ();
  x2 ();
  x3 ();
  x4 ();
  x5 ();
  x6 ();
  x7 ();
  x8 ();
  x9 ();
  x10 ();
  x11 ();
  x12 ();
  x13 ();
  x14 ()
