(* Benchmark entry point.

     dune exec bench/main.exe            -- run experiments X1-X6 + micro suite
     dune exec bench/main.exe -- x3      -- one experiment
     dune exec bench/main.exe -- micro   -- only the Bechamel micro suite

   The experiment tables are the reproduction of the paper's (prose)
   evaluation; see EXPERIMENTS.md for the paper-vs-measured discussion. *)

open Bechamel
open Toolkit

(* One Bechamel test per experiment: a small, fixed-size kernel of the
   code path the experiment studies. *)
let micro_tests () =
  let join_program = Core.compile_exn Workload.join_program in
  let join_data = Workload.join_registry ~rows:2_000 () in
  let overview_program = Core.compile_exn Workload.overview_program in
  let overview_data = Workload.overview_registry ~regions:2 ~years:2 () in
  let chain_source = Workload.chain_program ~length:8 in
  let stl_program = Core.compile_exn Workload.stl_program in
  let stl_data = Workload.series_registry ~quarters:120 ~regions:4 () in
  let run backend program data () =
    match Core.run ~backend program data with
    | Ok _ -> ()
    | Error msg -> failwith msg
  in
  Test.make_grouped ~name:"exlengine" ~fmt:"%s %s"
    [
      Test.make ~name:"x1 figure1 join on etl"
        (Staged.stage (run Core.Etl_engine join_program join_data));
      Test.make ~name:"x1 figure1 join on sql"
        (Staged.stage (run Core.Sql join_program join_data));
      Test.make ~name:"x2 overview end-to-end (reference)"
        (Staged.stage (run Core.Reference overview_program overview_data));
      Test.make ~name:"x3 translation exl->mapping->sql"
        (Staged.stage (fun () ->
             match Core.sql_of (Core.compile_exn chain_source) with
             | Ok _ -> ()
             | Error msg -> failwith msg));
      Test.make ~name:"x4 chase on overview"
        (Staged.stage (run Core.Chase overview_program overview_data));
      Test.make ~name:"x5 determination affected-set"
        (Staged.stage
           (let d = Engine.Determination.create () in
            (match
               Engine.Determination.register_source d ~name:"p"
                 Workload.overview_program
             with
            | Ok () -> ()
            | Error msg -> failwith msg);
            fun () ->
              ignore (Engine.Determination.affected d ~changed:[ "RGDPPC" ])));
      Test.make ~name:"x6 stl blackbox on vector"
        (Staged.stage (run Core.Vector_engine stl_program stl_data));
    ]

(* (name, ns/run OLS estimate, r^2) rows, sorted by name. *)
let micro_results () =
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:None () in
  let raw = Benchmark.all cfg [ Instance.monotonic_clock ] (micro_tests ()) in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  Hashtbl.fold
    (fun name result acc ->
      let estimate =
        match Analyze.OLS.estimates result with
        | Some [ e ] -> e
        | _ -> Float.nan
      in
      let r2 = Option.value ~default:Float.nan (Analyze.OLS.r_square result) in
      (name, estimate, r2) :: acc)
    results []
  |> List.sort (fun (a, _, _) (b, _, _) -> String.compare a b)

let run_micro () =
  print_endline "\n### Bechamel micro suite (ns/run, OLS estimate)\n";
  Printf.printf "%-45s %15s %8s\n" "benchmark" "time/run" "r^2";
  List.iter
    (fun (name, estimate, r2) ->
      let human =
        if estimate > 1e9 then Printf.sprintf "%8.2f s" (estimate /. 1e9)
        else if estimate > 1e6 then Printf.sprintf "%8.2f ms" (estimate /. 1e6)
        else if estimate > 1e3 then Printf.sprintf "%8.2f us" (estimate /. 1e3)
        else Printf.sprintf "%8.0f ns" estimate
      in
      Printf.printf "%-45s %15s %8.4f\n" name human r2)
    (micro_results ())

(* --- machine-readable baseline (BENCH_PR4.json) --- *)

(* Hand-rolled JSON: the toolchain has no JSON library and the schema
   is tiny.  Floats are emitted as %.6g with nan/inf mapped to null. *)
let json_escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_float f =
  if Float.is_finite f then Printf.sprintf "%.6g" f else "null"

let json_side (side : Experiments.chase_side) =
  Printf.sprintf
    "{\"seconds\": %s, \"matches_examined\": %d, \"tuples_generated\": %d, \
     \"rounds\": %d}"
    (json_float side.Experiments.seconds)
    side.Experiments.matches_examined side.Experiments.tuples_generated
    side.Experiments.rounds

let run_json path =
  let chase = Experiments.chase_rows () in
  let obs = Experiments.obs_overhead () in
  let micro = micro_results () in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\n  \"pr\": 4,\n  \"chase\": [\n";
  List.iteri
    (fun i row ->
      let naive = row.Experiments.naive
      and semi = row.Experiments.semi_naive in
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"workload\": \"%s\",\n\
           \     \"naive\": %s,\n\
           \     \"semi_naive\": %s,\n\
           \     \"matches_ratio\": %s,\n\
           \     \"speedup\": %s}%s\n"
           (json_escape row.Experiments.workload)
           (json_side naive) (json_side semi)
           (json_float
              (float_of_int naive.Experiments.matches_examined
              /. float_of_int (max 1 semi.Experiments.matches_examined)))
           (json_float (naive.Experiments.seconds /. semi.Experiments.seconds))
           (if i = List.length chase - 1 then "" else ",")))
    chase;
  Buffer.add_string buf
    (Printf.sprintf
       "  ],\n\
       \  \"obs\": {\"disabled_seconds\": %s, \"enabled_seconds\": %s, \
        \"enabled_overhead_pct\": %s, \"disabled_site_ns\": %s},\n\
       \  \"counters\": [\n"
       (json_float obs.Experiments.disabled_seconds)
       (json_float obs.Experiments.enabled_seconds)
       (json_float obs.Experiments.enabled_overhead_pct)
       (json_float obs.Experiments.disabled_site_ns));
  List.iteri
    (fun i (name, n) ->
      Buffer.add_string buf
        (Printf.sprintf "    {\"name\": \"%s\", \"count\": %d}%s\n"
           (json_escape name) n
           (if i = List.length obs.Experiments.counters - 1 then "" else ",")))
    obs.Experiments.counters;
  Buffer.add_string buf "  ],\n  \"micro\": [\n";
  List.iteri
    (fun i (name, estimate, r2) ->
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"name\": \"%s\", \"ns_per_run\": %s, \"r_square\": %s}%s\n"
           (json_escape name) (json_float estimate) (json_float r2)
           (if i = List.length micro - 1 then "" else ",")))
    micro;
  Buffer.add_string buf "  ]\n}\n";
  let oc = open_out path in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Printf.printf "wrote %s\n" path;
  Experiments.print_chase_rows chase

(* --- incremental-recomputation baseline (BENCH_PR5.json) --- *)

let run_json_incr path =
  let rows = Experiments.incr_rows () in
  let buf = Buffer.create 2048 in
  Buffer.add_string buf "{\n  \"pr\": 5,\n  \"incr\": [\n";
  List.iteri
    (fun i (r : Experiments.incr_row) ->
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"label\": \"%s\", \"batch\": %d,\n\
           \     \"scratch_seconds\": %s, \"incr_seconds\": %s, \"speedup\": \
            %s,\n\
           \     \"facts_rederived\": %d, \"total_facts\": %d,\n\
           \     \"strata_skipped\": %d, \"strata_rederived\": %d}%s\n"
           (json_escape r.Experiments.label)
           r.Experiments.batch
           (json_float r.Experiments.scratch_seconds)
           (json_float r.Experiments.incr_seconds)
           (json_float r.Experiments.incr_speedup)
           r.Experiments.facts_rederived r.Experiments.total_facts
           r.Experiments.strata_skipped r.Experiments.strata_rederived
           (if i = List.length rows - 1 then "" else ",")))
    rows;
  Buffer.add_string buf "  ]\n}\n";
  let oc = open_out path in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Printf.printf "wrote %s\n" path;
  Experiments.print_incr_rows rows

(* --- optimizer baseline (BENCH_PR6.json) --- *)

let json_opt_side (s : Experiments.opt_side) =
  Printf.sprintf
    "{\"seconds\": %s, \"matches_examined\": %d, \"tuples_generated\": %d, \
     \"nulls_created\": %d}"
    (json_float s.Experiments.opt_seconds)
    s.Experiments.opt_matches s.Experiments.opt_tuples s.Experiments.opt_nulls

let run_json_opt path =
  let rows = Experiments.opt_rows () in
  let buf = Buffer.create 2048 in
  Buffer.add_string buf "{\n  \"pr\": 6,\n  \"opt\": [\n";
  List.iteri
    (fun i (r : Experiments.opt_row) ->
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"label\": \"%s\",\n\
           \     \"tgds_before\": %d, \"tgds_after\": %d,\n\
           \     \"est_before\": %d, \"est_after\": %d,\n\
           \     \"unoptimized\": %s,\n\
           \     \"optimized\": %s}%s\n"
           (json_escape r.Experiments.opt_label)
           r.Experiments.tgds_before r.Experiments.tgds_after
           r.Experiments.est_before r.Experiments.est_after
           (json_opt_side r.Experiments.unopt)
           (json_opt_side r.Experiments.opt)
           (if i = List.length rows - 1 then "" else ",")))
    rows;
  Buffer.add_string buf "  ]\n}\n";
  let oc = open_out path in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Printf.printf "wrote %s\n" path;
  Experiments.print_opt_rows rows

(* --- columnar baseline (BENCH_PR7.json) --- *)

let json_sample (s : Experiments.sample) =
  Printf.sprintf "\"seconds\": %s, \"spread_pct\": %s, \"reps\": %d"
    (json_float s.Experiments.median_seconds)
    (json_float s.Experiments.spread_pct)
    s.Experiments.sample_reps

let run_json_col path =
  let rows = Experiments.col_rows () in
  let buf = Buffer.create 2048 in
  Buffer.add_string buf "{\n  \"pr\": 7,\n  \"col\": [\n";
  List.iteri
    (fun i (r : Experiments.col_row) ->
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"label\": \"%s\",\n\
           \     \"row\": {%s},\n\
           \     \"col\": {%s},\n\
           \     \"speedup\": %s,\n\
           \     \"matches_examined\": %d, \"tuples_generated\": %d}%s\n"
           (json_escape r.Experiments.col_label)
           (json_sample r.Experiments.row_wall)
           (json_sample r.Experiments.col_wall)
           (json_float r.Experiments.col_speedup)
           r.Experiments.col_matches r.Experiments.col_tuples
           (if i = List.length rows - 1 then "" else ",")))
    rows;
  Buffer.add_string buf "  ]\n}\n";
  let oc = open_out path in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Printf.printf "wrote %s\n" path;
  Experiments.print_col_rows rows

(* --- sharding baseline (BENCH_PR10.json) --- *)

let run_json_shard path =
  let rows = Experiments.shard_rows () in
  let buf = Buffer.create 2048 in
  Buffer.add_string buf
    (Printf.sprintf
       "{\n  \"pr\": 10,\n  \"cores\": %d,\n  \"shards\": %d,\n  \"shard\": [\n"
       (Domain.recommended_domain_count ())
       Experiments.shard_shard_count);
  List.iteri
    (fun i (r : Experiments.shard_row) ->
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"domains\": %d, \"wall\": {%s}, \"speedup\": %s}%s\n"
           r.Experiments.shard_domains
           (json_sample r.Experiments.shard_wall)
           (json_float r.Experiments.shard_speedup)
           (if i = List.length rows - 1 then "" else ",")))
    rows;
  Buffer.add_string buf "  ]\n}\n";
  let oc = open_out path in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Printf.printf "wrote %s\n" path;
  Experiments.print_shard_rows rows

(* --- serving baseline (BENCH_PR9.json) --- *)

let run_json_serve path =
  let rows = Serve_load.rows () in
  let buf = Buffer.create 2048 in
  Buffer.add_string buf "{\n  \"pr\": 9,\n  \"serve\": [\n";
  List.iteri
    (fun i (r : Serve_load.row) ->
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"label\": \"%s\",\n\
           \     \"requests\": %d, \"errors\": %d, \"rejected\": %d,\n\
           \     \"seconds\": %s, \"throughput\": %s,\n\
           \     \"p50_ms\": %s, \"p99_ms\": %s,\n\
           \     \"updates\": %d, \"commits\": %d}%s\n"
           (json_escape r.Serve_load.label)
           r.Serve_load.requests r.Serve_load.errors r.Serve_load.rejected
           (json_float r.Serve_load.seconds)
           (json_float r.Serve_load.throughput)
           (json_float r.Serve_load.p50_ms)
           (json_float r.Serve_load.p99_ms)
           r.Serve_load.updates r.Serve_load.commits
           (if i = List.length rows - 1 then "" else ",")))
    rows;
  Buffer.add_string buf "  ]\n}\n";
  let oc = open_out path in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Printf.printf "wrote %s\n" path;
  Serve_load.print_rows rows

let () =
  let args = Array.to_list Sys.argv in
  match args with
  | _ :: "x1" :: _ -> Experiments.x1 ()
  | _ :: "x2" :: _ -> Experiments.x2 ()
  | _ :: "x3" :: _ -> Experiments.x3 ()
  | _ :: "x4" :: _ -> Experiments.x4 ()
  | _ :: "x5" :: _ -> Experiments.x5 ()
  | _ :: "x6" :: _ -> Experiments.x6 ()
  | _ :: "x7" :: _ -> Experiments.x7 ()
  | _ :: "x8" :: _ -> Experiments.x8 ()
  | _ :: "x9" :: _ -> Experiments.x9 ()
  | _ :: "x10" :: _ -> Experiments.x10 ()
  | _ :: "x11" :: _ -> Experiments.x11 ()
  | _ :: "x12" :: _ -> Experiments.x12 ()
  | _ :: "x13" :: _ -> Experiments.x13 ()
  | _ :: "x14" :: _ -> Experiments.x14 ()
  | _ :: "micro" :: _ -> run_micro ()
  | _ :: "--json" :: rest ->
      run_json (match rest with path :: _ -> path | [] -> "BENCH_PR4.json")
  | _ :: "--guard" :: rest ->
      Baseline.run
        (match rest with path :: _ -> path | [] -> "BENCH_PR4.json")
  | _ :: "--json-incr" :: rest ->
      run_json_incr
        (match rest with path :: _ -> path | [] -> "BENCH_PR5.json")
  | _ :: "--guard-incr" :: rest ->
      Baseline.run_incr
        (match rest with path :: _ -> path | [] -> "BENCH_PR5.json")
  | _ :: "--json-col" :: rest ->
      run_json_col
        (match rest with path :: _ -> path | [] -> "BENCH_PR7.json")
  | _ :: "--guard-col" :: rest ->
      Baseline.run_col
        (match rest with path :: _ -> path | [] -> "BENCH_PR7.json")
  | _ :: "--json-opt" :: rest ->
      run_json_opt
        (match rest with path :: _ -> path | [] -> "BENCH_PR6.json")
  | _ :: "--guard-opt" :: rest ->
      Baseline.run_opt
        (match rest with path :: _ -> path | [] -> "BENCH_PR6.json")
  | _ :: "--json-shard" :: rest ->
      run_json_shard
        (match rest with path :: _ -> path | [] -> "BENCH_PR10.json")
  | _ :: "--guard-shard" :: rest ->
      Baseline.run_shard
        (match rest with path :: _ -> path | [] -> "BENCH_PR10.json")
  | _ :: "--json-serve" :: rest ->
      run_json_serve
        (match rest with path :: _ -> path | [] -> "BENCH_PR9.json")
  | _ :: "--guard-serve" :: rest ->
      Baseline.run_serve
        (match rest with path :: _ -> path | [] -> "BENCH_PR9.json")
  | _ ->
      print_endline "EXLEngine benchmark harness (see EXPERIMENTS.md)";
      Experiments.all ();
      run_micro ()
