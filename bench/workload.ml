(* Scalable synthetic workloads for the benchmark harness.

   The paper's production data is Bank of Italy internal; these
   generators produce cubes with the same shapes (daily population,
   quarterly per-capita values, generic keyed measures) at any scale,
   deterministically. *)
open Matrix

let quarter_domain = Domain.Period (Some Calendar.Quarter)

let region_name i = Printf.sprintf "r%03d" i

(* --- the paper's Section 2 workload, scalable --- *)

let overview_program =
  {|
cube PDR(d: date, r: string);
cube RGDPPC(q: quarter, r: string);

PQR   := avg(PDR, group by quarter(d) as q, r);
RGDP  := RGDPPC * PQR;
GDP   := sum(RGDP, group by q);
GDPT  := stl_t(GDP);
PCHNG := 100 * (GDPT - shift(GDPT, 1)) / GDPT;
|}

let overview_registry ~regions ~years () =
  let reg = Registry.create () in
  let pdr =
    Cube.create
      (Schema.make ~name:"PDR"
         ~dims:[ ("d", Domain.Date); ("r", Domain.String) ]
         ())
  in
  let rgdppc =
    Cube.create
      (Schema.make ~name:"RGDPPC"
         ~dims:[ ("q", quarter_domain); ("r", Domain.String) ]
         ())
  in
  for ri = 0 to regions - 1 do
    let region = region_name ri in
    let base = 1_000_000. +. (250_000. *. float_of_int ri) in
    for year = 2015 to 2015 + years - 1 do
      let days = if Calendar.Date.is_leap_year year then 366 else 365 in
      for doy = 0 to days - 1 do
        let d =
          Calendar.Date.add_days (Calendar.Date.make ~year ~month:1 ~day:1) doy
        in
        let t = float_of_int (((year - 2015) * 365) + doy) in
        Cube.set pdr
          (Tuple.of_list [ Value.Date d; Value.String region ])
          (Value.Float (base +. (12. *. t)))
      done;
      for q = 1 to 4 do
        let t = float_of_int (((year - 2015) * 4) + q - 1) in
        let seasonal = 0.5 *. sin (Float.pi /. 2. *. float_of_int (q - 1)) in
        Cube.set rgdppc
          (Tuple.of_list
             [ Value.Period (Calendar.Period.quarter year q); Value.String region ])
          (Value.Float (7. +. (0.04 *. t) +. seasonal))
      done
    done
  done;
  Registry.add reg Registry.Elementary pdr;
  Registry.add reg Registry.Elementary rgdppc;
  reg

(* --- a single join tgd workload (the paper's tgd (2) / Figure 1) --- *)

let join_program =
  {|
cube A(q: quarter, r: string);
cube B(q: quarter, r: string);
C := A * B;
|}

(* Two cubes of [rows] tuples each, sharing all keys. *)
let join_registry ~rows () =
  let reg = Registry.create () in
  let quarters = max 1 (rows / 50) in
  let regions = max 1 (rows / quarters) in
  let make name offset =
    let cube =
      Cube.create
        (Schema.make ~name
           ~dims:[ ("q", quarter_domain); ("r", Domain.String) ]
           ())
    in
    for qi = 0 to quarters - 1 do
      for ri = 0 to regions - 1 do
        Cube.set cube
          (Tuple.of_list
             [
               Value.Period (Calendar.Period.make Calendar.Quarter ((2000 * 4) + qi));
               Value.String (region_name ri);
             ])
          (Value.Float (offset +. float_of_int ((qi * 7) + ri)))
      done
    done;
    cube
  in
  Registry.add reg Registry.Elementary (make "A" 1.);
  Registry.add reg Registry.Elementary (make "B" 2.);
  reg

(* --- aggregation workload --- *)

let agg_program =
  {|
cube A(q: quarter, r: string);
S := sum(A, group by q);
|}

(* --- seasonal decomposition workload --- *)

let stl_program =
  {|
cube A(q: quarter, r: string);
T := stl_t(A);
|}

let series_registry ~quarters ~regions () =
  let reg = Registry.create () in
  let cube =
    Cube.create
      (Schema.make ~name:"A"
         ~dims:[ ("q", quarter_domain); ("r", Domain.String) ]
         ())
  in
  for ri = 0 to regions - 1 do
    for qi = 0 to quarters - 1 do
      let t = float_of_int qi in
      Cube.set cube
        (Tuple.of_list
           [
             Value.Period (Calendar.Period.make Calendar.Quarter ((2000 * 4) + qi));
             Value.String (region_name ri);
           ])
        (Value.Float
           (100. +. (0.7 *. t)
           +. (8. *. sin (Float.pi /. 2. *. t))
           +. (3. *. cos (0.9 *. t *. float_of_int (ri + 1)))))
    done
  done;
  Registry.add reg Registry.Elementary cube;
  reg

(* --- optimizer workload: an outer combine with provably equal grids
   feeding a growth-rate chain (the normalizer temporaries the exl-opt
   fusion pass exists to eliminate) --- *)

let outer_growth_program =
  {|
cube A(q: quarter, r: string);
PADDED := vadd(A, A);
GROWTH := 100 * (PADDED - shift(PADDED, 1)) / PADDED;
TOTAL  := sum(GROWTH, group by q);
|}

(* --- scalar chain programs for translation-cost scaling --- *)

(* A0 elementary; D1 := A0 + 1; D2 := sqrt(D1); D3 := D2 * 2; ... *)
let chain_program ~length =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "cube A0(q: quarter, r: string);\n";
  let prev = ref "A0" in
  for i = 1 to length do
    let lhs = Printf.sprintf "D%d" i in
    let rhs =
      match i mod 4 with
      | 0 -> Printf.sprintf "%s + 1" !prev
      | 1 -> Printf.sprintf "2 * %s" !prev
      | 2 -> Printf.sprintf "abs(%s)" !prev
      | _ -> Printf.sprintf "%s - 3" !prev
    in
    Buffer.add_string buf (Printf.sprintf "%s := %s;\n" lhs rhs);
    prev := lhs
  done;
  Buffer.contents buf

let chain_registry ~rows () =
  let reg = Registry.create () in
  let quarters = max 1 (rows / 50) in
  let regions = max 1 (rows / quarters) in
  let cube =
    Cube.create
      (Schema.make ~name:"A0"
         ~dims:[ ("q", quarter_domain); ("r", Domain.String) ]
         ())
  in
  for qi = 0 to quarters - 1 do
    for ri = 0 to regions - 1 do
      Cube.set cube
        (Tuple.of_list
           [
             Value.Period (Calendar.Period.make Calendar.Quarter ((2000 * 4) + qi));
             Value.String (region_name ri);
           ])
        (Value.Float (float_of_int ((qi * 3) + ri + 1)))
    done
  done;
  Registry.add reg Registry.Elementary cube;
  reg

(* The second program for the determination-engine experiment. *)
let dissemination_program =
  {|
GDP_INDEX := 100 * GDP / 230000000;
GDP_SMOOTH := ma(GDP_INDEX, 4);
|}

(* Three independent heavy programs over disjoint cubes, for the
   parallel-dispatch experiment: each lands on a different engine under
   an etl-first policy (stl forces the vector engine; an override pins
   the third to SQL). *)
let independent_programs =
  [
    ("p1", "cube S1(q: quarter, r: string);\nT1 := stl_t(S1);\nA1 := T1 * 2;\n");
    ("p2", "cube S2(q: quarter, r: string);\nT2 := stl_s(S2);\nA2 := T2 + 1;\n");
    ("p3", "cube S3(q: quarter, r: string);\nT3 := deseason(S3);\nA3 := abs(T3);\n");
  ]

let independent_data ~quarters ~regions () =
  let reg = Registry.create () in
  List.iter
    (fun name ->
      let cube =
        Cube.create
          (Schema.make ~name
             ~dims:[ ("q", quarter_domain); ("r", Domain.String) ]
             ())
      in
      for ri = 0 to regions - 1 do
        for qi = 0 to quarters - 1 do
          let t = float_of_int qi in
          Cube.set cube
            (Tuple.of_list
               [
                 Value.Period (Calendar.Period.make Calendar.Quarter ((2000 * 4) + qi));
                 Value.String (region_name ri);
               ])
            (Value.Float (50. +. t +. (6. *. sin (Float.pi /. 2. *. t))))
        done
      done;
      Registry.add reg Registry.Elementary cube)
    [ "S1"; "S2"; "S3" ];
  reg

(* --- the sharding workload: the worked example at 100x --- *)

(* 100x the columnar bench's 8-region x 5-year overview cube
   (region-years: 40 -> 4000).  At this scale the per-region daily
   aggregation dominates the chase, so partitioning on r hands each
   shard a heavy, independent slice and the sequential split/merge
   phases stay small next to the per-shard work. *)
let shard_registry () = overview_registry ~regions:800 ~years:5 ()
