(* Closed-loop load generator for exlserve (`bench --json-serve`).

   Boots the daemon in-process on an ephemeral loopback port, then
   drives it with closed-loop client threads over real TCP — each
   client keeps one persistent connection and one outstanding request,
   so offered load adapts to the server instead of overrunning it.

   Scenarios:
   - read-only: every client GETs cube slices;
   - mixed: readers as above plus writers POSTing small update
     batches, which exercises the coalescing single-writer loop and
     snapshot publication under read pressure.

   Reports per-scenario throughput and latency quantiles, plus the
   server-side commit count scraped from /metrics — the
   updates-per-commit ratio is the coalescer at work. *)

open Matrix

type row = {
  label : string;
  requests : int;  (** completed with a 2xx *)
  errors : int;  (** 5xx, transport failures, malformed responses *)
  rejected : int;  (** 429 admission-control pushback (not an error) *)
  seconds : float;
  throughput : float;  (** 2xx responses per second *)
  p50_ms : float;
  p99_ms : float;
  updates : int;  (** update batches POSTed (mixed scenario) *)
  commits : int;  (** server-side commits those batches coalesced into *)
}

(* --- fixture: three years of sales across ten shops --- *)

let shops =
  [| "rome"; "milan"; "turin"; "naples"; "bari"; "genoa"; "parma"; "pisa";
     "como"; "lecce" |]

let months =
  Array.init 36 (fun i -> Printf.sprintf "%04dM%02d" (2020 + (i / 12)) (1 + (i mod 12)))

let sales_program =
  "cube SALES(m: month, shop: string);\n\
   TOTAL := sum(SALES, group by m);\n\
   ROME := filter(SALES, shop = \"rome\");\n"

let boot () =
  (* the daemon's counters (and /metrics) need an ambient collector *)
  Obs.install (Obs.create ());
  let engine = Engine.Exlengine.create () in
  (match Engine.Exlengine.register_program engine ~name:"load" sales_program with
  | Ok () -> ()
  | Error msg -> failwith msg);
  let schema =
    Schema.make ~name:"SALES"
      ~dims:[ ("m", Domain.Period (Some Calendar.Month)); ("shop", Domain.String) ]
      ()
  in
  let rows =
    Array.to_list months
    |> List.concat_map (fun m ->
           Array.to_list shops
           |> List.mapi (fun i shop ->
                  [
                    Value.of_string_guess m;
                    Value.String shop;
                    Value.Float (100. +. float_of_int i);
                  ]))
  in
  (match
     Engine.Exlengine.load_elementary engine (Cube.of_rows schema rows)
   with
  | Ok () -> ()
  | Error msg -> failwith msg);
  (match Engine.Exlengine.recompute_all engine with
  | Ok report -> (
      (match Engine.Exlengine.warm engine with Ok () | Error _ -> ());
      let server = Serve.Server.create ~report engine in
      let fd, port = Serve.Server.listen_inet ~host:"127.0.0.1" ~port:0 () in
      let th = Serve.Server.serve_background server fd in
      (server, th, port))
  | Error msg -> failwith msg)

(* --- a keep-alive HTTP client --- *)

type conn = { fd : Unix.file_descr; mutable pending : string }

let connect port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  Unix.setsockopt fd Unix.TCP_NODELAY true;
  { fd; pending = "" }

let close conn = try Unix.close conn.fd with Unix.Unix_error _ -> ()

let write_all fd s =
  let n = String.length s in
  let rec go off =
    if off < n then go (off + Unix.write_substring fd s off (n - off))
  in
  go 0

let header_end s =
  let n = String.length s in
  let rec go i =
    if i + 4 > n then None
    else if String.sub s i 4 = "\r\n\r\n" then Some (i + 4)
    else go (i + 1)
  in
  go 0

let content_length headers =
  let lower = String.lowercase_ascii headers in
  match
    String.split_on_char '\n' lower
    |> List.find_opt (fun l ->
           String.length l >= 15 && String.sub l 0 15 = "content-length:")
  with
  | None -> 0
  | Some l -> (
      let v = String.trim (String.sub l 15 (String.length l - 15)) in
      match int_of_string_opt (String.trim v) with Some n -> n | None -> 0)

(* One request-response round trip on a persistent connection. *)
let roundtrip conn ~meth ~target ?(body = "") () =
  let b = Buffer.create 256 in
  Buffer.add_string b (Printf.sprintf "%s %s HTTP/1.1\r\n" meth target);
  if body <> "" then
    Buffer.add_string b
      (Printf.sprintf "content-length: %d\r\n" (String.length body));
  Buffer.add_string b "\r\n";
  Buffer.add_string b body;
  write_all conn.fd (Buffer.contents b);
  let chunk = Bytes.create 8192 in
  let rec fill () =
    match header_end conn.pending with
    | Some hdr ->
        let len = content_length (String.sub conn.pending 0 hdr) in
        let total = hdr + len in
        if String.length conn.pending >= total then begin
          let status = Scanf.sscanf conn.pending "HTTP/1.1 %d" (fun d -> d) in
          conn.pending <-
            String.sub conn.pending total (String.length conn.pending - total);
          status
        end
        else read_more ()
    | None -> read_more ()
  and read_more () =
    match Unix.read conn.fd chunk 0 8192 with
    | 0 -> failwith "connection closed mid-response"
    | n ->
        conn.pending <- conn.pending ^ Bytes.sub_string chunk 0 n;
        fill ()
  in
  fill ()

(* --- client loops --- *)

type client_tally = {
  mutable ok : int;
  mutable bad : int;
  mutable pushed_back : int;
  mutable latencies : float list;
}

let reader_targets =
  [| "/v1/cube/TOTAL"; "/v1/cube/SALES?shop=rome"; "/v1/cube/ROME";
     "/v1/cube/SALES?limit=50"; "/v1/cubes" |]

let run_client ~port ~deadline ~next_request =
  let tally = { ok = 0; bad = 0; pushed_back = 0; latencies = [] } in
  let conn = connect port in
  Fun.protect
    ~finally:(fun () -> close conn)
    (fun () ->
      let i = ref 0 in
      while Unix.gettimeofday () < deadline do
        let meth, target, body = next_request !i in
        incr i;
        let t0 = Unix.gettimeofday () in
        match roundtrip conn ~meth ~target ~body () with
        | status ->
            let dt = Unix.gettimeofday () -. t0 in
            if status >= 200 && status < 300 then begin
              tally.ok <- tally.ok + 1;
              tally.latencies <- dt :: tally.latencies
            end
            else if status = 429 then tally.pushed_back <- tally.pushed_back + 1
            else tally.bad <- tally.bad + 1
        | exception _ -> tally.bad <- tally.bad + 1
      done);
  tally

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.
  else sorted.(max 0 (min (n - 1) (int_of_float (p *. float_of_int n))))

(* Scrape a counter straight off the exposition format, with a
   one-shot connection that reads until EOF. *)
let scrape_counter ~port name =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      write_all fd "GET /metrics HTTP/1.1\r\nconnection: close\r\n\r\n";
      let buf = Buffer.create 4096 in
      let chunk = Bytes.create 4096 in
      let rec go () =
        match Unix.read fd chunk 0 4096 with
        | 0 -> ()
        | n ->
            Buffer.add_subbytes buf chunk 0 n;
            go ()
      in
      go ();
      let line =
        String.split_on_char '\n' (Buffer.contents buf)
        |> List.find_opt (fun l ->
               String.length l > String.length name
               && String.sub l 0 (String.length name) = name
               && l.[String.length name] = ' ')
      in
      match line with
      | None -> 0
      | Some l -> (
          match String.rindex_opt l ' ' with
          | None -> 0
          | Some i ->
              int_of_float
                (Option.value ~default:0.
                   (float_of_string_opt
                      (String.sub l (i + 1) (String.length l - i - 1))))))

let run_scenario ~port ~label ~duration ~readers ~writers =
  let commits_before = scrape_counter ~port "exl_serve_commits" in
  let deadline = Unix.gettimeofday () +. duration in
  let t0 = Unix.gettimeofday () in
  let results = Array.make (readers + writers) None in
  let spawn idx next_request =
    Thread.create
      (fun () -> results.(idx) <- Some (run_client ~port ~deadline ~next_request))
      ()
  in
  let threads =
    List.init readers (fun r ->
        spawn r (fun i ->
            ( "GET",
              reader_targets.((i + r) mod Array.length reader_targets),
              "" )))
    @ List.init writers (fun w ->
          spawn (readers + w) (fun i ->
              let m = months.((i + (7 * w)) mod Array.length months) in
              let shop = shops.((i + w) mod Array.length shops) in
              let v = float_of_int (200 + ((i + w) mod 97)) in
              ( "POST",
                "/v1/update",
                Printf.sprintf "set SALES %s %s %g\n" m shop v )))
  in
  List.iter Thread.join threads;
  let seconds = Unix.gettimeofday () -. t0 in
  let commits_after = scrape_counter ~port "exl_serve_commits" in
  let tallies =
    Array.to_list results |> List.filter_map Fun.id
  in
  let ok = List.fold_left (fun a t -> a + t.ok) 0 tallies in
  let bad = List.fold_left (fun a t -> a + t.bad) 0 tallies in
  let pushed = List.fold_left (fun a t -> a + t.pushed_back) 0 tallies in
  let updates =
    (* every writer 2xx is one accepted update batch *)
    List.filteri (fun i _ -> i >= readers) (Array.to_list results)
    |> List.filter_map Fun.id
    |> List.fold_left (fun a t -> a + t.ok) 0
  in
  let latencies =
    List.concat_map (fun t -> t.latencies) tallies |> Array.of_list
  in
  Array.sort compare latencies;
  {
    label;
    requests = ok;
    errors = bad;
    rejected = pushed;
    seconds;
    throughput = (if seconds > 0. then float_of_int ok /. seconds else 0.);
    p50_ms = 1000. *. percentile latencies 0.50;
    p99_ms = 1000. *. percentile latencies 0.99;
    updates;
    commits = max 0 (commits_after - commits_before);
  }

let rows ?(duration = 0.8) () =
  let server, th, port = boot () in
  Fun.protect
    ~finally:(fun () ->
      Serve.Server.shutdown server;
      Thread.join th)
    (fun () ->
      [
        run_scenario ~port ~label:"read-only 4 clients" ~duration ~readers:4
          ~writers:0;
        run_scenario ~port ~label:"mixed 4 readers + 2 writers" ~duration
          ~readers:4 ~writers:2;
      ])

let print_rows rows =
  Printf.printf "%-30s %9s %7s %7s %9s %9s %8s %8s\n" "scenario" "req/s"
    "p50ms" "p99ms" "errors" "rejected" "updates" "commits";
  List.iter
    (fun r ->
      Printf.printf "%-30s %9.0f %7.3f %7.3f %9d %9d %8d %8d\n" r.label
        r.throughput r.p50_ms r.p99_ms r.errors r.rejected r.updates r.commits)
    rows
