(* The chase regression guard (`bench --guard BASELINE.json`).

   Re-measures the naive-vs-semi-naive chase rows and compares them to
   a committed baseline (BENCH_PR4.json).  A workload regresses when

   - its semi-naive [matches_examined] moved more than 25% in either
     direction (the count is deterministic, so any drift is a real
     algorithmic change, not noise), or
   - its semi-naive wall-clock grew more than 25% AND the naive/semi
     speedup also shrank more than 25% — both at once, so a slow or
     throttled CI runner (which slows naive and semi alike) cannot
     fail the build, while a genuine semi-naive slowdown (which moves
     both measures) does.

   Exit code 1 on any regression, 0 otherwise. *)

let tolerance = 0.25

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

type base_row = {
  workload : string;
  matches_examined : float;
  seconds : float;
  speedup : float;
}

let base_rows json =
  List.filter_map
    (fun entry ->
      let field path =
        List.fold_left
          (fun acc name -> Option.bind acc (Obs.Json.member name))
          (Some entry) path
      in
      match
        ( Option.bind (field [ "workload" ]) Obs.Json.string_value,
          Option.bind (field [ "semi_naive"; "matches_examined" ]) Obs.Json.number,
          Option.bind (field [ "semi_naive"; "seconds" ]) Obs.Json.number,
          Option.bind (field [ "speedup" ]) Obs.Json.number )
      with
      | Some workload, Some matches_examined, Some seconds, Some speedup ->
          Some { workload; matches_examined; seconds; speedup }
      | _ -> None)
    (match Obs.Json.member "chase" json with
    | Some chase -> Obs.Json.elements chase
    | None -> [])

let run base_path =
  match Obs.Json.parse (read_file base_path) with
  | Error msg ->
      Printf.eprintf "guard: cannot parse %s: %s\n" base_path msg;
      exit 1
  | Ok json ->
      let base = base_rows json in
      if base = [] then begin
        Printf.eprintf "guard: no chase rows in %s\n" base_path;
        exit 1
      end;
      Printf.printf "chase regression guard vs %s (tolerance %.0f%%)\n\n"
        base_path (tolerance *. 100.);
      let current = Experiments.chase_rows () in
      let failures = ref 0 in
      let check row =
        match
          List.find_opt
            (fun (c : Experiments.chase_row) -> c.Experiments.workload = row.workload)
            current
        with
        | None ->
            incr failures;
            Printf.printf "  FAIL %-28s workload no longer measured\n"
              row.workload
        | Some c ->
            let semi = c.Experiments.semi_naive in
            let cur_matches = float_of_int semi.Experiments.matches_examined in
            let cur_seconds = semi.Experiments.seconds in
            let cur_speedup =
              c.Experiments.naive.Experiments.seconds /. cur_seconds
            in
            let matches_ok =
              cur_matches <= row.matches_examined *. (1. +. tolerance)
              && cur_matches >= row.matches_examined *. (1. -. tolerance)
            in
            let seconds_ok =
              cur_seconds <= row.seconds *. (1. +. tolerance)
              || cur_speedup >= row.speedup *. (1. -. tolerance)
            in
            if not (matches_ok && seconds_ok) then incr failures;
            Printf.printf
              "  %s %-28s matches %.0f -> %.0f%s; semi %.2f ms -> %.2f ms, \
               speedup %.2fx -> %.2fx%s\n"
              (if matches_ok && seconds_ok then "ok  " else "FAIL")
              row.workload row.matches_examined cur_matches
              (if matches_ok then "" else " (moved > tolerance)")
              (row.seconds *. 1000.) (cur_seconds *. 1000.) row.speedup
              cur_speedup
              (if seconds_ok then "" else " (slower and less speedup)")
      in
      List.iter check base;
      if !failures > 0 then begin
        Printf.printf "\n%d workload(s) regressed.\n" !failures;
        exit 1
      end
      else print_endline "\nno regressions."
