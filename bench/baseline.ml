(* The chase regression guard (`bench --guard BASELINE.json`).

   Re-measures the naive-vs-semi-naive chase rows and compares them to
   a committed baseline (BENCH_PR4.json).  A workload regresses when

   - its semi-naive [matches_examined] moved more than 25% in either
     direction (the count is deterministic, so any drift is a real
     algorithmic change, not noise), or
   - its semi-naive wall-clock grew more than 25% AND the naive/semi
     speedup also shrank more than 25% — both at once, so a slow or
     throttled CI runner (which slows naive and semi alike) cannot
     fail the build, while a genuine semi-naive slowdown (which moves
     both measures) does.

   Exit code 1 on any regression, 0 otherwise. *)

let tolerance = 0.25

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

type base_row = {
  workload : string;
  matches_examined : float;
  seconds : float;
  speedup : float;
}

let base_rows json =
  List.filter_map
    (fun entry ->
      let field path =
        List.fold_left
          (fun acc name -> Option.bind acc (Obs.Json.member name))
          (Some entry) path
      in
      match
        ( Option.bind (field [ "workload" ]) Obs.Json.string_value,
          Option.bind (field [ "semi_naive"; "matches_examined" ]) Obs.Json.number,
          Option.bind (field [ "semi_naive"; "seconds" ]) Obs.Json.number,
          Option.bind (field [ "speedup" ]) Obs.Json.number )
      with
      | Some workload, Some matches_examined, Some seconds, Some speedup ->
          Some { workload; matches_examined; seconds; speedup }
      | _ -> None)
    (match Obs.Json.member "chase" json with
    | Some chase -> Obs.Json.elements chase
    | None -> [])

let run base_path =
  match Obs.Json.parse (read_file base_path) with
  | Error msg ->
      Printf.eprintf "guard: cannot parse %s: %s\n" base_path msg;
      exit 1
  | Ok json ->
      let base = base_rows json in
      if base = [] then begin
        Printf.eprintf "guard: no chase rows in %s\n" base_path;
        exit 1
      end;
      Printf.printf "chase regression guard vs %s (tolerance %.0f%%)\n\n"
        base_path (tolerance *. 100.);
      let current = Experiments.chase_rows () in
      let failures = ref 0 in
      let check row =
        match
          List.find_opt
            (fun (c : Experiments.chase_row) -> c.Experiments.workload = row.workload)
            current
        with
        | None ->
            incr failures;
            Printf.printf "  FAIL %-28s workload no longer measured\n"
              row.workload
        | Some c ->
            let semi = c.Experiments.semi_naive in
            let cur_matches = float_of_int semi.Experiments.matches_examined in
            let cur_seconds = semi.Experiments.seconds in
            let cur_speedup =
              c.Experiments.naive.Experiments.seconds /. cur_seconds
            in
            let matches_ok =
              cur_matches <= row.matches_examined *. (1. +. tolerance)
              && cur_matches >= row.matches_examined *. (1. -. tolerance)
            in
            let seconds_ok =
              cur_seconds <= row.seconds *. (1. +. tolerance)
              || cur_speedup >= row.speedup *. (1. -. tolerance)
            in
            if not (matches_ok && seconds_ok) then incr failures;
            Printf.printf
              "  %s %-28s matches %.0f -> %.0f%s; semi %.2f ms -> %.2f ms, \
               speedup %.2fx -> %.2fx%s\n"
              (if matches_ok && seconds_ok then "ok  " else "FAIL")
              row.workload row.matches_examined cur_matches
              (if matches_ok then "" else " (moved > tolerance)")
              (row.seconds *. 1000.) (cur_seconds *. 1000.) row.speedup
              cur_speedup
              (if seconds_ok then "" else " (slower and less speedup)")
      in
      List.iter check base;
      if !failures > 0 then begin
        Printf.printf "\n%d workload(s) regressed.\n" !failures;
        exit 1
      end
      else print_endline "\nno regressions."

(* --- the incremental-recomputation guard (`bench --guard-incr`) ---

   Re-measures the X11 apply_updates-vs-recompute_all rows against
   BENCH_PR5.json.  A row regresses when

   - its [facts_rederived] moved more than 25% in either direction
     (deterministic, so drift is an algorithmic change), or
   - its incremental speedup fell below the 3x floor the acceptance
     criterion demands AND below 75% of the baseline speedup — both
     sides are ratios of wall-clock measured in the same process, so
     a throttled runner (which slows scratch and incremental alike)
     cannot fail the build. *)

let speedup_floor = 3.0

type incr_base = {
  label : string;
  base_facts_rederived : float;
  base_speedup : float;
}

let incr_base_rows json =
  List.filter_map
    (fun entry ->
      match
        ( Option.bind (Obs.Json.member "label" entry) Obs.Json.string_value,
          Option.bind (Obs.Json.member "facts_rederived" entry) Obs.Json.number,
          Option.bind (Obs.Json.member "speedup" entry) Obs.Json.number )
      with
      | Some label, Some base_facts_rederived, Some base_speedup ->
          Some { label; base_facts_rederived; base_speedup }
      | _ -> None)
    (match Obs.Json.member "incr" json with
    | Some rows -> Obs.Json.elements rows
    | None -> [])

let run_incr base_path =
  match Obs.Json.parse (read_file base_path) with
  | Error msg ->
      Printf.eprintf "guard-incr: cannot parse %s: %s\n" base_path msg;
      exit 1
  | Ok json ->
      let base = incr_base_rows json in
      if base = [] then begin
        Printf.eprintf "guard-incr: no incr rows in %s\n" base_path;
        exit 1
      end;
      Printf.printf
        "incremental regression guard vs %s (tolerance %.0f%%, speedup floor \
         %.1fx)\n\n"
        base_path (tolerance *. 100.) speedup_floor;
      let current = Experiments.incr_rows () in
      let failures = ref 0 in
      let check row =
        match
          List.find_opt
            (fun (c : Experiments.incr_row) -> c.Experiments.label = row.label)
            current
        with
        | None ->
            incr failures;
            Printf.printf "  FAIL %-36s row no longer measured\n" row.label
        | Some c ->
            let cur_facts = float_of_int c.Experiments.facts_rederived in
            let cur_speedup = c.Experiments.incr_speedup in
            let facts_ok =
              cur_facts <= row.base_facts_rederived *. (1. +. tolerance)
              && cur_facts >= row.base_facts_rederived *. (1. -. tolerance)
            in
            let speedup_ok =
              cur_speedup >= speedup_floor
              || cur_speedup >= row.base_speedup *. (1. -. tolerance)
            in
            if not (facts_ok && speedup_ok) then incr failures;
            Printf.printf
              "  %s %-36s rederived %.0f -> %.0f%s; speedup %.2fx -> %.2fx%s\n"
              (if facts_ok && speedup_ok then "ok  " else "FAIL")
              row.label row.base_facts_rederived cur_facts
              (if facts_ok then "" else " (moved > tolerance)")
              row.base_speedup cur_speedup
              (if speedup_ok then "" else " (below floor and baseline)")
      in
      List.iter check base;
      if !failures > 0 then begin
        Printf.printf "\n%d row(s) regressed.\n" !failures;
        exit 1
      end
      else print_endline "\nno regressions."

(* --- the columnar guard (`bench --guard-col`) ---

   Re-measures the X13 columnar-vs-row chase rows against
   BENCH_PR7.json.  A row regresses when

   - its [matches_examined] moved more than 25% in either direction
     (the counter is deterministic and identical on both paths, so
     drift is an algorithmic change), or
   - the columnar speedup fell below the 2x floor the acceptance
     criterion demands.  The speedup is a ratio of two wall-clock
     medians measured back to back in the same process, so a slow or
     throttled CI runner (which slows both paths alike) cannot fail
     the build — only the vectorized kernels actually losing their
     edge can. *)

let col_speedup_floor = 2.0

type col_base = {
  col_label : string;
  base_col_matches : float;
  base_col_speedup : float;
}

let col_base_rows json =
  List.filter_map
    (fun entry ->
      match
        ( Option.bind (Obs.Json.member "label" entry) Obs.Json.string_value,
          Option.bind (Obs.Json.member "matches_examined" entry) Obs.Json.number,
          Option.bind (Obs.Json.member "speedup" entry) Obs.Json.number )
      with
      | Some col_label, Some base_col_matches, Some base_col_speedup ->
          Some { col_label; base_col_matches; base_col_speedup }
      | _ -> None)
    (match Obs.Json.member "col" json with
    | Some rows -> Obs.Json.elements rows
    | None -> [])

let run_col base_path =
  match Obs.Json.parse (read_file base_path) with
  | Error msg ->
      Printf.eprintf "guard-col: cannot parse %s: %s\n" base_path msg;
      exit 1
  | Ok json ->
      let base = col_base_rows json in
      if base = [] then begin
        Printf.eprintf "guard-col: no col rows in %s\n" base_path;
        exit 1
      end;
      Printf.printf
        "columnar regression guard vs %s (tolerance %.0f%%, speedup floor \
         %.1fx)\n\n"
        base_path (tolerance *. 100.) col_speedup_floor;
      let current = Experiments.col_rows () in
      let failures = ref 0 in
      let check row =
        match
          List.find_opt
            (fun (c : Experiments.col_row) ->
              c.Experiments.col_label = row.col_label)
            current
        with
        | None ->
            incr failures;
            Printf.printf "  FAIL %-32s row no longer measured\n" row.col_label
        | Some c ->
            let cur_matches = float_of_int c.Experiments.col_matches in
            let cur_speedup = c.Experiments.col_speedup in
            let matches_ok =
              cur_matches <= row.base_col_matches *. (1. +. tolerance)
              && cur_matches >= row.base_col_matches *. (1. -. tolerance)
            in
            let speedup_ok = cur_speedup >= col_speedup_floor in
            if not (matches_ok && speedup_ok) then incr failures;
            Printf.printf
              "  %s %-32s matches %.0f -> %.0f%s; speedup %.2fx -> %.2fx%s\n"
              (if matches_ok && speedup_ok then "ok  " else "FAIL")
              row.col_label row.base_col_matches cur_matches
              (if matches_ok then "" else " (moved > tolerance)")
              row.base_col_speedup cur_speedup
              (if speedup_ok then ""
               else
                 Printf.sprintf " (below the %.1fx floor)" col_speedup_floor)
      in
      List.iter check base;
      if !failures > 0 then begin
        Printf.printf "\n%d row(s) regressed.\n" !failures;
        exit 1
      end
      else print_endline "\nno regressions."

(* --- the optimizer guard (`bench --guard-opt`) ---

   Re-measures the X12 unoptimized-vs-optimized chase rows against
   BENCH_PR6.json.  All compared quantities are counters, not clocks,
   so a throttled runner cannot fail the build.  A row regresses when

   - an optimized-side counter (matches examined, tuples generated,
     nulls created) drifted more than 25% from the baseline in either
     direction (deterministic: drift is an algorithmic change), or
   - the optimizer stopped improving: the optimized chase examines at
     least as many matches as the unoptimized one, or creates more
     non-core facts (or any, where the baseline recorded none). *)

type opt_base = {
  opt_label : string;
  base_matches : float;
  base_tuples : float;
  base_nulls : float;
}

let opt_base_rows json =
  List.filter_map
    (fun entry ->
      let field path =
        List.fold_left
          (fun acc name -> Option.bind acc (Obs.Json.member name))
          (Some entry) path
      in
      match
        ( Option.bind (field [ "label" ]) Obs.Json.string_value,
          Option.bind (field [ "optimized"; "matches_examined" ]) Obs.Json.number,
          Option.bind (field [ "optimized"; "tuples_generated" ]) Obs.Json.number,
          Option.bind (field [ "optimized"; "nulls_created" ]) Obs.Json.number )
      with
      | Some opt_label, Some base_matches, Some base_tuples, Some base_nulls ->
          Some { opt_label; base_matches; base_tuples; base_nulls }
      | _ -> None)
    (match Obs.Json.member "opt" json with
    | Some rows -> Obs.Json.elements rows
    | None -> [])

let run_opt base_path =
  match Obs.Json.parse (read_file base_path) with
  | Error msg ->
      Printf.eprintf "guard-opt: cannot parse %s: %s\n" base_path msg;
      exit 1
  | Ok json ->
      let base = opt_base_rows json in
      if base = [] then begin
        Printf.eprintf "guard-opt: no opt rows in %s\n" base_path;
        exit 1
      end;
      Printf.printf "optimizer regression guard vs %s (tolerance %.0f%%)\n\n"
        base_path (tolerance *. 100.);
      let current = Experiments.opt_rows () in
      let failures = ref 0 in
      let within base cur =
        cur <= base *. (1. +. tolerance) && cur >= base *. (1. -. tolerance)
      in
      let check row =
        match
          List.find_opt
            (fun (c : Experiments.opt_row) ->
              c.Experiments.opt_label = row.opt_label)
            current
        with
        | None ->
            incr failures;
            Printf.printf "  FAIL %-28s row no longer measured\n" row.opt_label
        | Some c ->
            let o = c.Experiments.opt and u = c.Experiments.unopt in
            let drift_ok =
              within row.base_matches (float_of_int o.Experiments.opt_matches)
              && within row.base_tuples (float_of_int o.Experiments.opt_tuples)
              && (row.base_nulls = 0.
                  && o.Experiments.opt_nulls = 0
                 || within row.base_nulls (float_of_int o.Experiments.opt_nulls))
            in
            let improves_ok =
              o.Experiments.opt_matches < u.Experiments.opt_matches
              && o.Experiments.opt_nulls <= u.Experiments.opt_nulls
              && ((not (row.base_nulls = 0.)) || o.Experiments.opt_nulls = 0)
            in
            if not (drift_ok && improves_ok) then incr failures;
            Printf.printf
              "  %s %-28s matches %.0f -> %d (unopt %d)%s; non-core %.0f -> \
               %d (unopt %d)%s\n"
              (if drift_ok && improves_ok then "ok  " else "FAIL")
              row.opt_label row.base_matches o.Experiments.opt_matches
              u.Experiments.opt_matches
              (if drift_ok then "" else " (drifted > tolerance)")
              row.base_nulls o.Experiments.opt_nulls u.Experiments.opt_nulls
              (if improves_ok then "" else " (optimizer stopped improving)")
      in
      List.iter check base;
      if !failures > 0 then begin
        Printf.printf "\n%d row(s) regressed.\n" !failures;
        exit 1
      end
      else print_endline "\nno regressions."

(* --- the serving guard (`bench --guard-serve`) ---

   Re-runs the exlserve closed-loop load scenarios against
   BENCH_PR9.json.  Wall-clock throughput on a shared CI runner is
   noisy, so the guard avoids comparing clocks to clocks; a scenario
   regresses only when

   - any request errored (5xx, transport failure — deterministic:
     the daemon must answer everything it admits), or
   - throughput fell below an absolute floor set far under any
     observed machine (a loopback in-process daemon that cannot
     answer [serve_throughput_floor] closed-loop requests per second
     is broken, not slow), or
   - the mixed scenario stopped coalescing: more server-side commits
     than accepted update batches, or no commit at all despite
     accepted updates. *)

let serve_throughput_floor = 200.

type serve_base = { serve_label : string; base_throughput : float }

let serve_base_rows json =
  List.filter_map
    (fun entry ->
      match
        ( Option.bind (Obs.Json.member "label" entry) Obs.Json.string_value,
          Option.bind (Obs.Json.member "throughput" entry) Obs.Json.number )
      with
      | Some serve_label, Some base_throughput ->
          Some { serve_label; base_throughput }
      | _ -> None)
    (match Obs.Json.member "serve" json with
    | Some rows -> Obs.Json.elements rows
    | None -> [])

let run_serve base_path =
  match Obs.Json.parse (read_file base_path) with
  | Error msg ->
      Printf.eprintf "guard-serve: cannot parse %s: %s\n" base_path msg;
      exit 1
  | Ok json ->
      let base = serve_base_rows json in
      if base = [] then begin
        Printf.eprintf "guard-serve: no serve rows in %s\n" base_path;
        exit 1
      end;
      Printf.printf
        "serving regression guard vs %s (throughput floor %.0f req/s)\n\n"
        base_path serve_throughput_floor;
      let current = Serve_load.rows () in
      let failures = ref 0 in
      let check row =
        match
          List.find_opt
            (fun (c : Serve_load.row) -> c.Serve_load.label = row.serve_label)
            current
        with
        | None ->
            incr failures;
            Printf.printf "  FAIL %-30s scenario no longer measured\n"
              row.serve_label
        | Some c ->
            let errors_ok = c.Serve_load.errors = 0 in
            let floor_ok = c.Serve_load.throughput >= serve_throughput_floor in
            let coalesce_ok =
              c.Serve_load.updates = 0
              || (c.Serve_load.commits > 0
                 && c.Serve_load.commits <= c.Serve_load.updates)
            in
            if not (errors_ok && floor_ok && coalesce_ok) then incr failures;
            Printf.printf
              "  %s %-30s %.0f req/s (baseline %.0f); %d error(s)%s%s%s\n"
              (if errors_ok && floor_ok && coalesce_ok then "ok  " else "FAIL")
              row.serve_label c.Serve_load.throughput row.base_throughput
              c.Serve_load.errors
              (if errors_ok then "" else " (must be 0)")
              (if floor_ok then ""
               else Printf.sprintf " (below the %.0f req/s floor)"
                      serve_throughput_floor)
              (if coalesce_ok then ""
               else
                 Printf.sprintf " (coalescing broken: %d commits for %d updates)"
                   c.Serve_load.commits c.Serve_load.updates)
      in
      List.iter check base;
      if !failures > 0 then begin
        Printf.printf "\n%d scenario(s) regressed.\n" !failures;
        exit 1
      end
      else print_endline "\nno regressions."

(* --- the sharding guard (`bench --guard-shard`) ---

   Re-measures the X14 sharded-chase scaling table against
   BENCH_PR10.json.  The compared quantity is the ratio of the
   4-domain to the 1-domain wall-clock of the *same* sharded code
   path, measured back to back in one process, so a uniformly slow or
   throttled runner cannot fail the build — only the per-shard phase
   losing its domain scaling can.  Re-measuring also re-asserts that
   the sharded and unsharded solutions are identical
   ([Experiments.shard_rows] raises otherwise).  The floor is only
   enforceable where the cores exist: on hosts with fewer than
   [shard_floor_domains] cores the guard still runs the measurement
   and the solution check, but reports the floor as not applicable —
   wall-clock scaling cannot exist without the cores to scale onto. *)

let shard_speedup_floor = 2.5
let shard_floor_domains = 4

type shard_base = { base_domains : int; base_shard_speedup : float }

let shard_base_rows json =
  List.filter_map
    (fun entry ->
      match
        ( Option.bind (Obs.Json.member "domains" entry) Obs.Json.number,
          Option.bind (Obs.Json.member "speedup" entry) Obs.Json.number )
      with
      | Some d, Some base_shard_speedup ->
          Some { base_domains = int_of_float d; base_shard_speedup }
      | _ -> None)
    (match Obs.Json.member "shard" json with
    | Some rows -> Obs.Json.elements rows
    | None -> [])

let run_shard base_path =
  match Obs.Json.parse (read_file base_path) with
  | Error msg ->
      Printf.eprintf "guard-shard: cannot parse %s: %s\n" base_path msg;
      exit 1
  | Ok json ->
      let base = shard_base_rows json in
      if base = [] then begin
        Printf.eprintf "guard-shard: no shard rows in %s\n" base_path;
        exit 1
      end;
      let cores = Domain.recommended_domain_count () in
      let enforce = cores >= shard_floor_domains in
      Printf.printf
        "sharding scaling guard vs %s (floor %.1fx at %d domains; host has %d \
         core(s)%s)\n\n"
        base_path shard_speedup_floor shard_floor_domains cores
        (if enforce then "" else ", floor not applicable");
      let current = Experiments.shard_rows () in
      Experiments.print_shard_rows current;
      let failures = ref 0 in
      let check (row : shard_base) =
        match
          List.find_opt
            (fun (c : Experiments.shard_row) ->
              c.Experiments.shard_domains = row.base_domains)
            current
        with
        | None ->
            incr failures;
            Printf.printf "  FAIL %d domains: row no longer measured\n"
              row.base_domains
        | Some c ->
            let floor_ok =
              (not enforce)
              || row.base_domains <> shard_floor_domains
              || c.Experiments.shard_speedup >= shard_speedup_floor
            in
            if not floor_ok then incr failures;
            Printf.printf "  %s %d domains: speedup %.2fx -> %.2fx%s\n"
              (if floor_ok then "ok  " else "FAIL")
              row.base_domains row.base_shard_speedup
              c.Experiments.shard_speedup
              (if floor_ok then ""
               else
                 Printf.sprintf " (below the %.1fx floor)" shard_speedup_floor)
      in
      List.iter check base;
      if !failures > 0 then begin
        Printf.printf "\n%d row(s) regressed.\n" !failures;
        exit 1
      end
      else
        print_endline
          (if enforce then "\nno regressions."
           else
             "\nno regressions (scaling floor skipped: not enough cores; \
              solutions verified identical).")
