examples/sdmx_dissemination.ml: Core Csv Cube Demo_data Float List Matrix Option Printf Registry Sdmx String Tuple Value
