examples/demo_data.ml: Calendar Cube Domain Float List Matrix Option Printf Random Registry Schema Tuple Value
