examples/monetary_aggregates.ml: Core Demo_data Matrix
