examples/quickstart.ml: Core Demo_data Matrix
