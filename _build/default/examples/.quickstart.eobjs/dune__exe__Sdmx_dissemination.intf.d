examples/sdmx_dissemination.mli:
