examples/quickstart.mli:
