examples/seasonal_tourism.ml: Core Demo_data Float List Matrix Option Printf Sys
