examples/seasonal_tourism.mli:
