examples/multi_target_dispatch.mli:
