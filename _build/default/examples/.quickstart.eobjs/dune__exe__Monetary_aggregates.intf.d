examples/monetary_aggregates.mli:
