examples/multi_target_dispatch.ml: Calendar Cube Demo_data Engine Float List Matrix Option Printf String Tuple Value
