(* Monetary aggregates: a central-bank style production flow on the
   DBMS target.

   From monthly outstanding deposits by sector and instrument plus
   currency in circulation, derive the narrow (M1) and broad (M2)
   monetary aggregates and their annual growth rates — the kind of
   statistical product the Bank of Italy's EXL programs produce.

   This example also prints the deployable artifacts: CREATE TABLE DDL
   and the SQL script an external DBMS would run.

   Run with: dune exec examples/monetary_aggregates.exe *)

let program_source =
  {|
cube DEPOSITS(m: month, sector: string, instrument: string);
cube CURRENCY(m: month);

-- total deposits per instrument (summed over holding sectors)
DEP_BY_INSTR := sum(DEPOSITS, group by m, instrument);

DEP_TOTAL := sum(DEP_BY_INSTR, group by m);

-- overnight deposits only: a selection (dice) on the instrument dim
OVERNIGHT := filter(DEPOSITS, instrument = "overnight");
OVERNIGHT_TOTAL := sum(OVERNIGHT, group by m);

M1 := CURRENCY + OVERNIGHT_TOTAL;                -- narrow money
M2 := CURRENCY + DEP_TOTAL;                      -- broad money

-- year-on-year growth, in percent
M2_YOY := 100 * (M2 - shift(M2, 12)) / shift(M2, 12);

-- seasonally adjusted broad money
M2_SA := deseason(M2);
|}

let () =
  let program = Core.compile_exn program_source in

  Demo_data.section "DDL for the DBMS target";
  (match Core.ddl_of program with
  | Ok ddl -> print_string ddl
  | Error msg -> failwith msg);

  Demo_data.section "Generated SQL (fused)";
  (match Core.sql_of ~fused:true program with
  | Ok sql -> print_string sql
  | Error msg -> failwith msg);

  Demo_data.section "Execution on the SQL engine (3 years of data)";
  let data = Matrix.Registry.create () in
  Matrix.Registry.add data Matrix.Registry.Elementary (Demo_data.deposits ~years:3 ());
  Matrix.Registry.add data Matrix.Registry.Elementary (Demo_data.currency ~years:3 ());
  let result =
    match Core.run ~backend:Core.Sql program data with
    | Ok r -> r
    | Error msg -> failwith msg
  in
  print_endline "Narrow money M1 = currency + overnight deposits:";
  Demo_data.print_cube_head ~limit:4 (Matrix.Registry.find_exn result "M1");
  print_endline "\nBroad money M2 (first months shown):";
  let m2 = Matrix.Registry.find_exn result "M2" in
  Demo_data.print_cube_head ~limit:6 m2;
  print_endline "\nM2 year-on-year growth (percent):";
  Demo_data.print_series (Matrix.Registry.find_exn result "M2_YOY");

  Demo_data.section "Cross-backend verification";
  match Core.verify_all_backends program data with
  | Ok () -> print_endline "all back ends agree."
  | Error msg -> failwith msg
