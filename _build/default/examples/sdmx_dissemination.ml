(* The full statistical production flow of the paper's introduction:
   collection (CSV-shaped raw data), production (an EXL program run
   through EXLEngine), and dissemination (SDMX-ML packaging — the
   Matrix model "falls in the class of SDMX").

   Run with: dune exec examples/sdmx_dissemination.exe *)

open Matrix

let program_source =
  {|
cube ARRIVALS(m: month, r: string);

TOTAL := sum(ARRIVALS, group by m);
ADJUSTED := deseason(TOTAL);
YOY := 100 * (TOTAL - shift(TOTAL, 12)) / shift(TOTAL, 12);
|}

let () =
  (* --- collection --- *)
  Demo_data.section "Collection: raw arrivals (CSV exchange format)";
  let arrivals = Demo_data.arrivals ~years:3 () in
  let csv = Csv.cube_to_string arrivals in
  print_string (String.concat "\n" (List.filteri (fun i _ -> i < 5)
    (String.split_on_char '\n' csv)));
  Printf.printf "\n  ... (%d tuples)\n" (Cube.cardinality arrivals);

  (* --- production --- *)
  Demo_data.section "Production: EXL program through the engine";
  let program = Core.compile_exn program_source in
  let data = Registry.create () in
  Registry.add data Registry.Elementary arrivals;
  let result =
    match Core.run program data with Ok r -> r | Error msg -> failwith msg
  in
  print_endline "Seasonally adjusted national series (first year):";
  List.iteri
    (fun i (k, v) ->
      if i < 12 then
        Printf.printf "  %-8s %10.1f\n"
          (Value.to_string (Tuple.get k 0))
          (Option.value ~default:Float.nan (Value.to_float v)))
    (Cube.to_alist (Registry.find_exn result "ADJUSTED"));

  (* --- dissemination --- *)
  Demo_data.section "Dissemination: SDMX data structure definition";
  print_string (Sdmx.dsd_of_schema (Cube.schema (Registry.find_exn result "YOY")));

  Demo_data.section "Dissemination: SDMX generic data message (excerpt)";
  let xml = Sdmx.generic_data_of_cube (Registry.find_exn result "YOY") in
  let lines = String.split_on_char '\n' xml in
  List.iteri (fun i line -> if i < 14 then print_endline line) lines;
  Printf.printf "  ... (%d lines total)\n" (List.length lines);

  Demo_data.section "Dissemination: dataflow catalog";
  print_string (Sdmx.dataflow_of_registry result)
