(* Synthetic elementary data shared by the examples.

   The paper's production data (Bank of Italy population and GDP cubes)
   is not available; these generators produce cubes with the same
   shapes: daily population levels, quarterly per-capita aggregates,
   monthly seasonal flows.  Deterministic (fixed seed) so example output
   is reproducible. *)
open Matrix

let seed = 0x5EED
let rng () = Random.State.make [| seed |]

let date y m d = Calendar.Date.make ~year:y ~month:m ~day:d
let quarter y q = Value.Period (Calendar.Period.quarter y q)
let month y m = Value.Period (Calendar.Period.month y m)

(* --- the paper's overview cubes --- *)

let regions = [ "north"; "centre"; "south" ]

(* PDR(d, r): population of region r at the end of day d. *)
let pdr ~years () =
  let schema =
    Schema.make ~name:"PDR" ~dims:[ ("d", Domain.Date); ("r", Domain.String) ] ()
  in
  let cube = Cube.create schema in
  List.iteri
    (fun ri region ->
      let base = 8_000_000. +. (2_000_000. *. float_of_int ri) in
      for year = 2018 to 2018 + years - 1 do
        let days = if Calendar.Date.is_leap_year year then 366 else 365 in
        for doy = 0 to days - 1 do
          let d = Calendar.Date.add_days (date year 1 1) doy in
          let t = float_of_int (((year - 2018) * 365) + doy) in
          (* slow growth plus a mild seasonal ripple (tourism, ...) *)
          let population =
            base +. (55. *. t)
            +. (40_000. *. sin (2. *. Float.pi *. float_of_int doy /. 365.))
          in
          Cube.set cube
            (Tuple.of_list [ Value.Date d; Value.String region ])
            (Value.Float population)
        done
      done)
    regions;
  cube

(* RGDPPC(q, r): regional GDP per capita by quarter. *)
let rgdppc ~years () =
  let schema =
    Schema.make ~name:"RGDPPC"
      ~dims:[ ("q", Domain.Period (Some Calendar.Quarter)); ("r", Domain.String) ]
      ()
  in
  let cube = Cube.create schema in
  List.iteri
    (fun ri region ->
      for year = 2018 to 2018 + years - 1 do
        for q = 1 to 4 do
          let t = float_of_int (((year - 2018) * 4) + q - 1) in
          let seasonal = 0.6 *. sin (Float.pi /. 2. *. float_of_int (q - 1)) in
          let level = 7.2 +. (0.4 *. float_of_int ri) in
          Cube.set cube
            (Tuple.of_list [ quarter year q; Value.String region ])
            (Value.Float (level +. (0.045 *. t) +. seasonal))
        done
      done)
    regions;
  cube

let overview_registry ?(years = 4) () =
  let reg = Registry.create () in
  Registry.add reg Registry.Elementary (pdr ~years ());
  Registry.add reg Registry.Elementary (rgdppc ~years ());
  reg

(* --- banking data for the monetary aggregates example --- *)

let sectors = [ "households"; "firms" ]
let instruments = [ "overnight"; "savings"; "time" ]

(* DEPOSITS(m, sector, instrument): outstanding amounts by month. *)
let deposits ~years () =
  let st = rng () in
  let schema =
    Schema.make ~name:"DEPOSITS"
      ~dims:
        [
          ("m", Domain.Period (Some Calendar.Month));
          ("sector", Domain.String);
          ("instrument", Domain.String);
        ]
      ()
  in
  let cube = Cube.create schema in
  List.iteri
    (fun si sector ->
      List.iteri
        (fun ii instrument ->
          let base = 120. +. (40. *. float_of_int si) +. (25. *. float_of_int ii) in
          for year = 2020 to 2020 + years - 1 do
            for m = 1 to 12 do
              let t = float_of_int (((year - 2020) * 12) + m - 1) in
              let noise = Random.State.float st 4. -. 2. in
              Cube.set cube
                (Tuple.of_list
                   [ month year m; Value.String sector; Value.String instrument ])
                (Value.Float (base +. (0.8 *. t) +. noise))
            done
          done)
        instruments)
    sectors;
  cube

(* CURRENCY(m): currency in circulation by month. *)
let currency ~years () =
  let schema =
    Schema.make ~name:"CURRENCY"
      ~dims:[ ("m", Domain.Period (Some Calendar.Month)) ]
      ()
  in
  let cube = Cube.create schema in
  for year = 2020 to 2020 + years - 1 do
    for m = 1 to 12 do
      let t = float_of_int (((year - 2020) * 12) + m - 1) in
      Cube.set cube
        (Tuple.of_list [ month year m ])
        (Value.Float (95. +. (0.3 *. t)))
    done
  done;
  cube

(* --- tourism data for the seasonal decomposition example --- *)

(* ARRIVALS(m, r): monthly tourist arrivals with strong summer
   seasonality. *)
let arrivals ~years () =
  let st = rng () in
  let schema =
    Schema.make ~name:"ARRIVALS"
      ~dims:[ ("m", Domain.Period (Some Calendar.Month)); ("r", Domain.String) ]
      ()
  in
  let cube = Cube.create schema in
  List.iteri
    (fun ri region ->
      let base = 400. +. (150. *. float_of_int ri) in
      for year = 2019 to 2019 + years - 1 do
        for m = 1 to 12 do
          let t = float_of_int (((year - 2019) * 12) + m - 1) in
          (* peak in August (m = 8), trough in winter *)
          let season =
            250. *. exp (-.((float_of_int m -. 8.) ** 2.) /. 8.)
          in
          let noise = Random.State.float st 20. -. 10. in
          Cube.set cube
            (Tuple.of_list [ month year m; Value.String region ])
            (Value.Float (base +. (2.5 *. t) +. season +. noise))
        done
      done)
    regions;
  cube

(* --- small printing helpers --- *)

let print_cube_head ?(limit = 8) cube =
  let alist = Cube.to_alist cube in
  let total = List.length alist in
  List.iteri
    (fun i (k, v) ->
      if i < limit then
        Printf.printf "  %-28s %12s\n" (Tuple.to_string k) (Value.to_string v))
    alist;
  if total > limit then Printf.printf "  ... (%d tuples total)\n" total

let print_series cube =
  List.iter
    (fun (k, v) ->
      Printf.printf "  %-10s %12.3f\n"
        (Value.to_string (Tuple.get k 0))
        (Option.value ~default:Float.nan (Value.to_float v)))
    (Cube.to_alist cube)

let section title =
  Printf.printf "\n=== %s ===\n" title
