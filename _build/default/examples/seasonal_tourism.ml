(* Seasonal decomposition workload: monthly tourist arrivals.

   Exercises the paper's flagship black-box operator family (stl) on a
   strongly seasonal series, runs the same program on every back end
   (reference interpreter, chase, SQL, vector, ETL) and cross-checks the
   results, then prints the R and Matlab scripts the vector target would
   ship to the external tools.

   Run with: dune exec examples/seasonal_tourism.exe *)

let program_source =
  {|
cube ARRIVALS(m: month, r: string);

-- national totals
TOTAL := sum(ARRIVALS, group by m);

-- decomposition into trend / seasonal / remainder
TREND    := stl_t(TOTAL);
SEASONAL := stl_s(TOTAL);
IRREGULAR := stl_r(TOTAL);

-- seasonally adjusted series and its month-on-month change
ADJUSTED := TOTAL - SEASONAL;
MOM := 100 * (ADJUSTED - shift(ADJUSTED, 1)) / shift(ADJUSTED, 1);

-- per-region trend: the slice-wise extension of the stl operator
REGIONAL_TREND := stl_t(ARRIVALS);
|}

let take n xs =
  List.filteri (fun i _ -> i < n) xs

let () =
  let program = Core.compile_exn program_source in
  let data = Matrix.Registry.create () in
  Matrix.Registry.add data Matrix.Registry.Elementary (Demo_data.arrivals ~years:4 ());

  Demo_data.section "Execution on every back end";
  let results =
    List.map
      (fun backend ->
        let t0 = Sys.time () in
        match Core.run ~backend program data with
        | Ok r -> (backend, r, Sys.time () -. t0)
        | Error msg ->
            failwith (Core.backend_name backend ^ " failed: " ^ msg))
      Core.all_backends
  in
  List.iter
    (fun (backend, _, seconds) ->
      Printf.printf "  %-10s ran in %6.1f ms\n" (Core.backend_name backend)
        (seconds *. 1000.))
    results;
  (match Core.verify_all_backends program data with
  | Ok () -> print_endline "  all five back ends produce identical cubes."
  | Error msg -> failwith msg);

  Demo_data.section "Decomposition (first year)";
  let result = match results with (_, r, _) :: _ -> r | [] -> assert false in
  let series name =
    Matrix.Cube.to_alist (Matrix.Registry.find_exn result name)
  in
  let fl v = Option.value ~default:Float.nan (Matrix.Value.to_float v) in
  Printf.printf "  %-8s %10s %10s %10s %10s\n" "month" "total" "trend"
    "seasonal" "irregular";
  List.iter2
    (fun ((k, total), (_, trend)) ((_, seasonal), (_, irregular)) ->
      Printf.printf "  %-8s %10.1f %10.1f %10.1f %10.1f\n"
        (Matrix.Value.to_string (Matrix.Tuple.get k 0))
        (fl total) (fl trend) (fl seasonal) (fl irregular))
    (take 12 (List.combine (series "TOTAL") (series "TREND")))
    (take 12 (List.combine (series "SEASONAL") (series "IRREGULAR")));

  Demo_data.section "R script for the vector target";
  (match Core.r_of program with
  | Ok r -> print_string r
  | Error msg -> failwith msg);

  Demo_data.section "Matlab script for the vector target";
  match Core.matlab_of program with
  | Ok m -> print_string m
  | Error msg -> failwith msg
