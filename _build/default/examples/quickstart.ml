(* Quickstart: the paper's Section 2 worked example, end to end.

   Computes the percentage change of the GDP trend by quarter, given
   GDP per capita by region/quarter and population by day/region:

     PQR   := avg(PDR, group by quarter(d) as q, r);
     RGDP  := RGDPPC * PQR;
     GDP   := sum(RGDP, group by q);
     GDPT  := stl_t(GDP);
     PCHNG := 100 * (GDPT - shift(GDPT, 1)) / GDPT;

   Run with: dune exec examples/quickstart.exe *)

let program_source =
  {|
cube PDR(d: date, r: string);
cube RGDPPC(q: quarter, r: string);

PQR   := avg(PDR, group by quarter(d) as q, r);
RGDP  := RGDPPC * PQR;
GDP   := sum(RGDP, group by q);
GDPT  := stl_t(GDP);
PCHNG := 100 * (GDPT - shift(GDPT, 1)) / GDPT;
|}

let () =
  let program = Core.compile_exn program_source in

  Demo_data.section "The generated schema mapping (tgds + egds)";
  (match Core.tgds_of program with
  | Ok text -> print_string text
  | Error msg -> failwith msg);

  Demo_data.section "SQL translation (what a DBMS target receives)";
  (match Core.sql_of ~fused:true program with
  | Ok sql -> print_string sql
  | Error msg -> failwith msg);

  Demo_data.section "Execution on synthetic data (4 years, 3 regions)";
  let data = Demo_data.overview_registry () in
  let result =
    match Core.run program data with Ok r -> r | Error msg -> failwith msg
  in
  print_endline "GDP by quarter (billions):";
  Demo_data.print_series (Matrix.Registry.find_exn result "GDP");
  print_endline "\nPercentage change of the GDP trend (PCHNG):";
  Demo_data.print_series (Matrix.Registry.find_exn result "PCHNG");

  Demo_data.section "Cross-backend verification";
  (match Core.verify_all_backends program data with
  | Ok () ->
      print_endline
        "chase, SQL engine, vector engine and ETL engine all reproduce the\n\
         reference interpreter exactly (the paper's Section 4.2 theorem)."
  | Error msg -> failwith msg)
