(* The EXLEngine architecture in action (paper, Section 6).

   Two statistical programs share cubes in one global dependency DAG.
   The determination engine detects what changed, the dispatcher splits
   the recomputation across target systems by capability (the ETL
   engine cannot run seasonal decomposition, so those cubes go to the
   vector engine), translations are cached offline, and historicity
   keeps dated versions of every cube.

   Run with: dune exec examples/multi_target_dispatch.exe *)

open Matrix

let production_program =
  {|
cube PDR(d: date, r: string);
cube RGDPPC(q: quarter, r: string);

PQR   := avg(PDR, group by quarter(d) as q, r);
RGDP  := RGDPPC * PQR;
GDP   := sum(RGDP, group by q);
GDPT  := stl_t(GDP);
PCHNG := 100 * (GDPT - shift(GDPT, 1)) / GDPT;
|}

(* A second program, registered later, reading the first one's output
   across the program boundary. *)
let dissemination_program =
  {|
GDP_INDEX := 100 * GDP / 230000000;
GDP_SMOOTH := ma(GDP_INDEX, 4);
|}

let date y m d = Calendar.Date.make ~year:y ~month:m ~day:d

let print_report (report : Engine.Dispatcher.report) =
  List.iter
    (fun (s : Engine.Dispatcher.subgraph_report) ->
      Printf.printf "  %-8s computes [%s] via %s artifact (%0.1f ms translate, %0.1f ms execute)\n"
        s.Engine.Dispatcher.target
        (String.concat ", " s.Engine.Dispatcher.cubes)
        (Engine.Target.artifact_kind s.Engine.Dispatcher.artifact)
        (s.Engine.Dispatcher.translate_seconds *. 1000.)
        (s.Engine.Dispatcher.execute_seconds *. 1000.))
    report.Engine.Dispatcher.subgraphs

let ok = function Ok v -> v | Error msg -> failwith msg

let () =
  (* Technical metadata: prefer the ETL engine, fall back by capability. *)
  let config =
    {
      Engine.Exlengine.default_config with
      Engine.Exlengine.policy =
        {
          Engine.Dispatcher.priority = [ "etl"; "vector"; "sql" ];
          overrides = [ ("GDP", "sql") ];  (* force one cube to the DBMS *)
        };
    }
  in
  let engine = Engine.Exlengine.create ~config () in
  ok (Engine.Exlengine.register_program engine ~name:"production" production_program);
  ok (Engine.Exlengine.register_program engine ~name:"dissemination" dissemination_program);

  Demo_data.section "Global dependency DAG";
  print_string (Engine.Determination.dot (Engine.Exlengine.determination engine));

  Demo_data.section "Initial load and full computation";
  ok (Engine.Exlengine.load_elementary engine (Demo_data.pdr ~years:4 ()));
  ok (Engine.Exlengine.load_elementary engine (Demo_data.rgdppc ~years:4 ()));
  let report = ok (Engine.Exlengine.recompute ~as_of:(date 2026 1 1) engine) in
  print_report report;

  Demo_data.section "A revision arrives: only RGDPPC changes";
  let revised = Demo_data.rgdppc ~years:4 () in
  (* revise one figure upward by 2% *)
  let revision_key =
    Tuple.of_list
      [ Value.Period (Calendar.Period.quarter 2021 4); Value.String "north" ]
  in
  (match Cube.find revised revision_key with
  | Some v ->
      Cube.set revised revision_key
        (Value.Float (Value.to_float_exn v *. 1.02))
  | None -> failwith "expected revision key");
  ok (Engine.Exlengine.load_elementary engine revised);
  Printf.printf "dirty cubes: %s\n"
    (String.concat ", " (Engine.Exlengine.changed engine));
  let report2 = ok (Engine.Exlengine.recompute ~as_of:(date 2026 2 1) engine) in
  Printf.printf "recomputed: %s (PQR untouched — not downstream of RGDPPC)\n"
    (String.concat ", " report2.Engine.Dispatcher.recomputed);
  print_report report2;
  Printf.printf "translation cache: %d hits, %d misses (second run reused all artifacts)\n"
    (Engine.Translation.cache_hits (Engine.Exlengine.translation_cache engine))
    (Engine.Translation.cache_misses (Engine.Exlengine.translation_cache engine));

  Demo_data.section "Historicity: GDP before and after the revision";
  let q4 = Tuple.of_list [ Value.Period (Calendar.Period.quarter 2021 4) ] in
  let value_at date =
    match Engine.Exlengine.cube_as_of engine date "GDP" with
    | Some cube ->
        Option.value ~default:Float.nan
          (Option.bind (Cube.find cube q4) Value.to_float)
    | None -> Float.nan
  in
  Printf.printf "  GDP(2021Q4) as of 2026-01-15: %14.0f\n" (value_at (date 2026 1 15));
  Printf.printf "  GDP(2021Q4) as of 2026-02-15: %14.0f  (after the +2%% revision)\n"
    (value_at (date 2026 2 15));
  Printf.printf "  versions stored for GDP: %d, for PQR: %d\n"
    (Engine.Historicity.version_count (Engine.Exlengine.history engine) "GDP")
    (Engine.Historicity.version_count (Engine.Exlengine.history engine) "PQR")
