type program = Exl.Typecheck.checked

let err e = Exl.Errors.to_string e

let compile source = Result.map_error err (Exl.Program.load source)
let compile_exn source = Exl.Program.load_exn source

let mapping_of program =
  match Mappings.Generate.of_checked program with
  | Ok g -> Ok g.Mappings.Generate.mapping
  | Error e -> Error (err e)

let fused_mapping_of program =
  Result.map Mappings.Fuse.mapping (mapping_of program)

type backend = Reference | Chase | Sql | Vector_engine | Etl_engine

let backend_name = function
  | Reference -> "reference"
  | Chase -> "chase"
  | Sql -> "sql"
  | Vector_engine -> "vector"
  | Etl_engine -> "etl"

let all_backends = [ Reference; Chase; Sql; Vector_engine; Etl_engine ]

let run ?(backend = Reference) program registry =
  match backend with
  | Reference -> Result.map_error err (Exl.Interp.run program registry)
  | Chase ->
      Result.map_error err
        (Result.map fst (Exchange.Verify.run_program_via_chase program registry))
  | Sql -> Result.map_error err (Relational.Sql_target.run_program program registry)
  | Vector_engine ->
      Result.map_error err (Vector.Vector_target.run_program program registry)
  | Etl_engine ->
      Result.map_error err (Etl.Etl_target.run_program program registry)

let verify_all_backends ?(eps = 1e-7) program registry =
  match run ~backend:Reference program registry with
  | Error msg -> Error ("reference failed: " ^ msg)
  | Ok reference ->
      let check_backend backend =
        match run ~backend program registry with
        | Error msg -> Some (Printf.sprintf "%s failed: %s" (backend_name backend) msg)
        | Ok got ->
            let problems =
              List.filter_map
                (fun name ->
                  let expected = Matrix.Registry.find_exn reference name in
                  match Matrix.Registry.find got name with
                  | None -> Some (Printf.sprintf "%s: missing cube %s" (backend_name backend) name)
                  | Some c ->
                      if Matrix.Cube.equal_data ~eps expected c then None
                      else
                        Some
                          (Printf.sprintf "%s: cube %s differs: %s"
                             (backend_name backend) name
                             (String.concat "; "
                                (Matrix.Cube.diff_data ~eps expected c))))
                (Matrix.Registry.names reference)
            in
            if problems = [] then None else Some (String.concat "\n" problems)
      in
      let failures =
        List.filter_map check_backend [ Chase; Sql; Vector_engine; Etl_engine ]
      in
      if failures = [] then Ok () else Error (String.concat "\n" failures)

let sql_of ?fused program =
  Result.map_error err (Relational.Sql_target.script_of_program ?fused program)

let ddl_of program = Result.map Relational.Sql_gen.ddl_of_mapping (mapping_of program)

let r_of program =
  Result.map_error err (Vector.Vector_target.r_script_of_program program)

let matlab_of program =
  Result.map_error err (Vector.Vector_target.matlab_script_of_program program)

let kettle_of program =
  Result.map_error err (Etl.Etl_target.kettle_catalog_of_program program)

let tgds_of program = Result.map Mappings.Mapping.to_string (mapping_of program)
