(** EXLEngine — executable schema mappings for statistical data
    processing.

    One-stop public API over the full pipeline of the paper:

    {v
    EXL program ──► schema mapping (tgds + egds) ──► SQL | R | Matlab | ETL
        │                     │
        │                     └─► stratified chase (correctness witness)
        └─► reference interpreter
    v}

    Layered libraries (usable directly for finer control):
    {!Matrix} (cubes), [Stats], [Ops], [Exl] (language), [Mappings],
    [Exchange] (chase), [Relational], [Vector], [Etl], [Engine]
    (determination/dispatch/historicity). *)

type program = Exl.Typecheck.checked
(** A parsed and type-checked EXL program. *)

val compile : string -> (program, string) result
(** Parse and type-check EXL source. *)

val compile_exn : string -> program

val mapping_of : program -> (Mappings.Mapping.t, string) result
(** The generated schema mapping (one extended tgd per normalized
    statement, plus functionality egds). *)

val fused_mapping_of : program -> (Mappings.Mapping.t, string) result
(** Mapping with normalizer temporaries inlined (the paper's complex
    tgd (5) form). *)

(** Execution back ends. [Reference] is the direct interpreter; the
    others run generated code on the corresponding substrate; [Chase]
    solves the data-exchange problem. All produce identical cubes
    (property-tested). *)
type backend = Reference | Chase | Sql | Vector_engine | Etl_engine

val backend_name : backend -> string
val all_backends : backend list

val run :
  ?backend:backend ->
  program ->
  Matrix.Registry.t ->
  (Matrix.Registry.t, string) result
(** Run the program against elementary data (default backend:
    [Reference]). *)

val verify_all_backends :
  ?eps:float -> program -> Matrix.Registry.t -> (unit, string) result
(** The paper's Section 4.2 equivalence, extended to every back end:
    all five produce the same cubes, else a diff report. *)

(** Deployable artifacts per target system. *)

val sql_of : ?fused:bool -> program -> (string, string) result
val ddl_of : program -> (string, string) result
val r_of : program -> (string, string) result
val matlab_of : program -> (string, string) result
val kettle_of : program -> (string, string) result
val tgds_of : program -> (string, string) result
(** The mapping in logic notation (the paper's tgd listing). *)
