lib/exl/program.mli: Errors Matrix Registry Typecheck
