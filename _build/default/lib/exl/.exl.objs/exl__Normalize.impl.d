lib/exl/normalize.ml: Ast Hashtbl List Ops Option Pretty Printf String Typecheck
