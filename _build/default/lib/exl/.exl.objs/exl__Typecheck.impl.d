lib/exl/typecheck.ml: Array Ast Domain Errors Float Hashtbl List Matrix Ops Option Printf Registry Schema Stats String Value
