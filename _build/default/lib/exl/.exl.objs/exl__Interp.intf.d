lib/exl/interp.mli: Ast Cube Domain Errors Matrix Registry Typecheck Value
