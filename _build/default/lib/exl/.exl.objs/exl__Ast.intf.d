lib/exl/ast.mli: Format Matrix Ops Stats
