lib/exl/errors.mli: Ast Format
