lib/exl/lexer.ml: Ast Buffer Errors List String Token
