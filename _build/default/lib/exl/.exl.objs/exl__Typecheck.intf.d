lib/exl/typecheck.mli: Ast Domain Errors Matrix Registry Schema
