lib/exl/normalize.mli: Ast Errors Typecheck
