lib/exl/lexer.mli: Errors Token
