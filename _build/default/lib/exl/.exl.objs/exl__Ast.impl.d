lib/exl/ast.ml: Calendar Domain Float Format Hashtbl List Matrix Ops Option Printf Stats String Value
