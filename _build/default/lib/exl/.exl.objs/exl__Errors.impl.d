lib/exl/errors.ml: Ast Format List Printf String
