lib/exl/pretty.ml: Ast Float Format List Matrix Ops Printf String
