lib/exl/interp.ml: Array Ast Calendar Cube Errors List Matrix Ops Option Printf Registry Schema Stats Tuple Typecheck Value
