lib/exl/token.mli: Ast Format
