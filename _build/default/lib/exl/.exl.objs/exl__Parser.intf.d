lib/exl/parser.mli: Ast Errors
