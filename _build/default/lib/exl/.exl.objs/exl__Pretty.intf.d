lib/exl/pretty.mli: Ast Format
