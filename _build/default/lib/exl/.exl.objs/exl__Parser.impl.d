lib/exl/parser.ml: Array Ast Errors Lexer List Matrix Ops Token
