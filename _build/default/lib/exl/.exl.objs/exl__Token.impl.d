lib/exl/token.ml: Ast Format Printf
