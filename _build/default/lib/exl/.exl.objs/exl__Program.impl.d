lib/exl/program.ml: Errors Interp Normalize Parser Result Typecheck
