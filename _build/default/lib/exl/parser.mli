(** Recursive-descent parser for EXL (grammar in {!Ast}). *)

val parse : string -> (Ast.program, Errors.t) result
val parse_expr : string -> (Ast.expr, Errors.t) result
(** Parses a single expression (the whole input must be consumed). *)
