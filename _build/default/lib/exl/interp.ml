open Matrix

type value = V_scalar of float | V_cube of Cube.t

let shift_key_value amount v =
  match v with
  | Value.Period p -> Some (Value.Period (Calendar.Period.shift p amount))
  | Value.Date d -> Some (Value.Date (Calendar.Date.add_days d amount))
  | Value.(Null | Bool _ | Int _ | Float _ | String _) -> None

(* The conventional default for the missing side: the operation's
   neutral element on that side (paper: "in the sum operator, we could
   have zero as the default value"). *)
let default_for = function
  | Ops.Binop.Add | Ops.Binop.Sub -> 0.
  | Ops.Binop.Mul | Ops.Binop.Div | Ops.Binop.Pow -> 1.

let dims_of_cube c =
  Array.to_list (Cube.schema c).Schema.dims
  |> List.map (fun d -> (d.Schema.dim_name, d.Schema.dim_domain))

let align_dims target c =
  let schema = Cube.schema c in
  let current = Schema.dim_names schema in
  if current = List.map fst target then c
  else
    let perm =
      Array.of_list
        (List.map (fun (n, _) -> Schema.dim_index_exn schema n) target)
    in
    let out_schema =
      Schema.make ~measure_name:schema.Schema.measure_name
        ~measure_domain:schema.Schema.measure_domain ~name:schema.Schema.name
        ~dims:target ()
    in
    Cube.mapi (fun k v -> Some (Tuple.project k perm, v)) out_schema c

let anon_schema dims = Schema.make ~name:"_" ~dims ()

let rec eval env reg expr : value =
  match expr with
  | Ast.Number f -> V_scalar f
  | Ast.Cube_ref name -> (
      match Registry.find reg name with
      | Some c -> V_cube c
      | None -> (
          (* A declared but unloaded elementary cube is empty. *)
          match Typecheck.Env.schema env name with
          | Some s -> V_cube (Cube.create s)
          | None -> Errors.failf "reference to undefined cube %s" name))
  | Ast.Neg e -> (
      match eval env reg e with
      | V_scalar f -> V_scalar (-.f)
      | V_cube c ->
          V_cube
            (Cube.map_measure
               (fun v ->
                 match Value.to_float v with
                 | Some f -> Value.of_float (-.f)
                 | None -> Value.Null)
               c))
  | Ast.Binop (op, a, b) -> eval_binop env reg op a b
  | Ast.Call c -> eval_call env reg c

and eval_binop env reg op a b =
  match (eval env reg a, eval env reg b) with
  | V_scalar x, V_scalar y -> (
      match Ops.Binop.eval op x y with
      | Some r -> V_scalar r
      | None ->
          Errors.failf "constant expression %g %s %g is undefined" x
            (Ops.Binop.to_string op) y)
  | V_cube c, V_scalar y ->
      V_cube
        (Cube.map_measure (fun v -> Ops.Binop.eval_value op v (Value.Float y)) c)
  | V_scalar x, V_cube c ->
      V_cube
        (Cube.map_measure (fun v -> Ops.Binop.eval_value op (Value.Float x) v) c)
  | V_cube ca, V_cube cb ->
      let dims = dims_of_cube ca in
      let cb = align_dims dims cb in
      V_cube
        (Cube.merge_join (Ops.Binop.eval_value op) (anon_schema dims) ca cb)

and eval_call env reg (c : Ast.call) =
  match Ast.classify c.fn with
  | Ast.Shift_op -> eval_shift env reg c
  | Ast.Filter_op -> eval_filter env reg c
  | Ast.Outer_op op -> eval_outer env reg c op
  | Ast.Agg_op aggr -> eval_agg env reg c aggr
  | Ast.Scalar_op s -> eval_scalar env reg c s
  | Ast.Blackbox_op b -> eval_blackbox env reg c b
  | Ast.Unknown_op -> Errors.failf ~pos:c.pos "unknown operator %s" c.fn

and eval_cube_operand env reg what e =
  match eval env reg e with
  | V_cube c -> c
  | V_scalar _ -> Errors.failf "%s operand must be a cube" what

and eval_outer env reg (c : Ast.call) op =
  let a, b, default =
    match c.args with
    | [ a; b ] -> (a, b, default_for op)
    | [ a; b; d ] when Ast.as_number d <> None ->
        (a, b, Option.get (Ast.as_number d))
    | _ -> Errors.failf ~pos:c.pos "malformed %s call" c.fn
  in
  let ca = eval_cube_operand env reg c.fn a in
  let cb = eval_cube_operand env reg c.fn b in
  let dims = dims_of_cube ca in
  let cb = align_dims dims cb in
  let combine va vb =
    let f v = Option.value ~default (Option.bind v Value.to_float) in
    match Ops.Binop.eval op (f va) (f vb) with
    | Some r -> Value.of_float r
    | None -> Value.Null
  in
  V_cube (Cube.merge_outer combine (anon_schema dims) ca cb)

and eval_filter env reg (c : Ast.call) =
  let operand =
    match c.args with
    | [ e ] -> e
    | _ -> Errors.fail ~pos:c.pos "malformed filter call"
  in
  let cube = eval_cube_operand env reg "filter" operand in
  let schema = Cube.schema cube in
  let checks =
    List.map
      (fun (dim, literal) ->
        let idx = Schema.dim_index_exn schema dim in
        let domain = Option.get (Schema.dim_domain schema dim) in
        match Ast.coerce_literal domain literal with
        | Some v -> (idx, v)
        | None ->
            Errors.failf ~pos:c.pos "filter: literal %s does not fit dimension %s"
              (Value.to_string literal) dim)
      c.conditions
  in
  V_cube
    (Cube.filter
       (fun k _ ->
         List.for_all (fun (idx, v) -> Value.equal (Tuple.get k idx) v) checks)
       cube)

and eval_shift env reg c =
  let operand, dim, amount =
    match c.args with
    | [ e; k ] when Ast.as_number k <> None ->
        (e, None, int_of_float (Option.get (Ast.as_number k)))
    | [ e; Ast.Cube_ref d; k ] when Ast.as_number k <> None ->
        (e, Some d, int_of_float (Option.get (Ast.as_number k)))
    | _ -> Errors.fail ~pos:c.pos "malformed shift call"
  in
  let cube = eval_cube_operand env reg "shift" operand in
  let schema = Cube.schema cube in
  let tdim =
    match dim with
    | Some d -> Schema.dim_index_exn schema d
    | None -> (
        match Schema.time_dims schema with
        | [ d ] -> Schema.dim_index_exn schema d
        | _ -> Errors.fail ~pos:c.pos "shift: ambiguous temporal dimension")
  in
  let out =
    Cube.mapi
      (fun k v ->
        match shift_key_value amount (Tuple.get k tdim) with
        | Some shifted ->
            let arr = Tuple.to_array k in
            arr.(tdim) <- shifted;
            Some (Tuple.of_array arr, v)
        | None -> None)
      schema cube
  in
  V_cube out

and eval_agg env reg (c : Ast.call) aggr =
  let operand =
    match c.args with
    | [ e ] -> e
    | _ -> Errors.failf ~pos:c.pos "%s expects one operand" c.fn
  in
  let cube = eval_cube_operand env reg c.fn operand in
  let schema = Cube.schema cube in
  let items = Option.value ~default:[] c.group_by in
  let projections =
    List.map
      (fun (item : Ast.dim_item) ->
        let idx = Schema.dim_index_exn schema item.src in
        let fn = Option.map Ops.Dim_fn.find_exn item.fn in
        (idx, fn))
      items
  in
  let result_dims =
    List.map
      (fun (item : Ast.dim_item) ->
        let name = Ast.dim_item_result_name item in
        let domain =
          match item.fn with
          | Some fn -> Ops.Dim_fn.result_domain (Ops.Dim_fn.find_exn fn)
          | None -> (
              match Schema.dim_domain schema item.src with
              | Some d -> d
              | None -> Errors.failf "no dimension %s" item.src)
        in
        (name, domain))
      items
  in
  (* Bags are accumulated in sorted key order so that order-sensitive
     aggregates (first/last) are deterministic. *)
  let groups : float list ref Tuple.Table.t = Tuple.Table.create 64 in
  let order = ref [] in
  List.iter
    (fun (k, v) ->
      match Value.to_float v with
      | None -> ()
      | Some f ->
          let group_key =
            Tuple.of_list
              (List.map
                 (fun (idx, fn) ->
                   let raw = Tuple.get k idx in
                   match fn with
                   | None -> raw
                   | Some dim_fn -> (
                       match Ops.Dim_fn.apply dim_fn raw with
                       | Some v' -> v'
                       | None ->
                           Errors.failf
                             "dimension function %s undefined on %s"
                             dim_fn.Ops.Dim_fn.name (Value.to_string raw)))
                 projections)
          in
          (match Tuple.Table.find_opt groups group_key with
          | Some bag -> bag := f :: !bag
          | None ->
              Tuple.Table.replace groups group_key (ref [ f ]);
              order := group_key :: !order))
    (Cube.to_alist cube);
  let out = Cube.create (anon_schema result_dims) in
  List.iter
    (fun key ->
      let bag = List.rev !(Tuple.Table.find groups key) in
      Cube.set out key (Value.of_float (Stats.Aggregate.apply aggr bag)))
    (List.rev !order);
  V_cube out

and eval_scalar env reg (c : Ast.call) s =
  match Ast.split_call_args c with
  | Error msg -> Errors.fail ~pos:c.pos msg
  | Ok (params, operand) -> (
      match operand with
      | None -> (
          match List.rev params with
          | x :: rest -> (
              match Ops.Scalar_fn.apply s ~params:(List.rev rest) x with
              | Some r -> V_scalar r
              | None ->
                  Errors.failf ~pos:c.pos "%s undefined on constant arguments"
                    c.fn)
          | [] -> Errors.failf ~pos:c.pos "%s is missing its operand" c.fn)
      | Some e -> (
          match eval env reg e with
          | V_scalar x -> (
              match Ops.Scalar_fn.apply s ~params x with
              | Some r -> V_scalar r
              | None ->
                  Errors.failf ~pos:c.pos "%s undefined on constant arguments"
                    c.fn)
          | V_cube cube ->
              V_cube
                (Cube.map_measure (Ops.Scalar_fn.apply_value s ~params) cube)))

and eval_blackbox env reg (c : Ast.call) b =
  match Ast.split_call_args c with
  | Error msg -> Errors.fail ~pos:c.pos msg
  | Ok (params, operand) -> (
      match operand with
      | None -> Errors.failf ~pos:c.pos "%s is missing its cube operand" c.fn
      | Some e -> (
          let cube = eval_cube_operand env reg c.fn e in
          match Ops.Blackbox.apply_cube b ~params cube with
          | Ok out -> V_cube out
          | Error msg -> Errors.fail ~pos:c.pos msg))

let eval_expr env reg e = Errors.protect (fun () -> eval env reg e)

let store env reg (s : Ast.stmt) result =
  let schema = Typecheck.Env.schema_exn env s.lhs in
  let cube =
    match result with
    | V_scalar f ->
        let c = Cube.create schema in
        Cube.set c (Tuple.of_list []) (Value.of_float f);
        c
    | V_cube c ->
        let target_dims =
          Array.to_list schema.Schema.dims
          |> List.map (fun d -> (d.Schema.dim_name, d.Schema.dim_domain))
        in
        Cube.with_schema schema (align_dims target_dims c)
  in
  Registry.add reg Registry.Derived cube

let run_stmt env reg s =
  Errors.protect (fun () -> store env reg s (eval env reg s.rhs))

let run (checked : Typecheck.checked) input =
  let reg = Registry.create () in
  (* Elementary cubes: copy data from the input registry, defaulting to
     empty, always under the declared schema. *)
  List.iter
    (fun schema ->
      let cube =
        match Registry.find input schema.Schema.name with
        | Some c -> Cube.with_schema schema (Cube.copy c)
        | None -> Cube.create schema
      in
      Registry.add reg Registry.Elementary cube)
    (Typecheck.elementary_schemas checked);
  let rec loop = function
    | [] -> Ok reg
    | s :: rest -> (
        match run_stmt checked.Typecheck.env reg s with
        | Ok () -> loop rest
        | Error e ->
            Error
              {
                e with
                Errors.msg =
                  Printf.sprintf "in statement %s: %s" s.Ast.lhs e.Errors.msg;
              })
  in
  loop checked.Typecheck.statements
