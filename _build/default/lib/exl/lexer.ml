let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let keyword_of s =
  match String.lowercase_ascii s with
  | "cube" -> Some Token.KW_CUBE
  | "group" -> Some Token.KW_GROUP
  | "by" -> Some Token.KW_BY
  | "as" -> Some Token.KW_AS
  | _ -> None

type state = {
  src : string;
  mutable i : int;
  mutable line : int;
  mutable bol : int;  (* index of beginning of current line *)
}

let pos st = { Ast.line = st.line; col = st.i - st.bol + 1 }

let tokenize src =
  let st = { src; i = 0; line = 1; bol = 0 } in
  let n = String.length src in
  let out = ref [] in
  let emit tok p = out := { Token.token = tok; pos = p } :: !out in
  let peek k = if st.i + k < n then Some src.[st.i + k] else None in
  let newline () =
    st.line <- st.line + 1;
    st.bol <- st.i
  in
  let skip_line_comment () =
    while st.i < n && src.[st.i] <> '\n' do
      st.i <- st.i + 1
    done
  in
  let lex_number p =
    let start = st.i in
    while st.i < n && is_digit src.[st.i] do
      st.i <- st.i + 1
    done;
    if st.i < n && src.[st.i] = '.' && (match peek 1 with Some c -> is_digit c | None -> false)
    then begin
      st.i <- st.i + 1;
      while st.i < n && is_digit src.[st.i] do
        st.i <- st.i + 1
      done
    end;
    (match peek 0 with
    | Some ('e' | 'E') ->
        let j = ref (st.i + 1) in
        (match if !j < n then Some src.[!j] else None with
        | Some ('+' | '-') -> incr j
        | _ -> ());
        if !j < n && is_digit src.[!j] then begin
          st.i <- !j;
          while st.i < n && is_digit src.[st.i] do
            st.i <- st.i + 1
          done
        end
    | _ -> ());
    let text = String.sub src start (st.i - start) in
    match float_of_string_opt text with
    | Some f -> emit (Token.NUMBER f) p
    | None -> Errors.fail ~pos:p ("invalid number literal " ^ text)
  in
  let lex_string p =
    st.i <- st.i + 1;
    let buf = Buffer.create 16 in
    let rec loop () =
      if st.i >= n then Errors.fail ~pos:p "unterminated string literal"
      else
        match src.[st.i] with
        | '"' -> st.i <- st.i + 1
        | '\\' when st.i + 1 < n ->
            (match src.[st.i + 1] with
            | '"' -> Buffer.add_char buf '"'
            | '\\' -> Buffer.add_char buf '\\'
            | 'n' -> Buffer.add_char buf '\n'
            | 't' -> Buffer.add_char buf '\t'
            | c -> Errors.failf ~pos:p "unknown escape sequence \\%c" c);
            st.i <- st.i + 2;
            loop ()
        | '\n' -> Errors.fail ~pos:p "unterminated string literal"
        | c ->
            Buffer.add_char buf c;
            st.i <- st.i + 1;
            loop ()
    in
    loop ();
    emit (Token.STRING (Buffer.contents buf)) p
  in
  let lex_ident p =
    let start = st.i in
    while st.i < n && is_ident_char src.[st.i] do
      st.i <- st.i + 1
    done;
    let text = String.sub src start (st.i - start) in
    match keyword_of text with
    | Some kw -> emit kw p
    | None -> emit (Token.IDENT text) p
  in
  let step () =
    let p = pos st in
    match src.[st.i] with
    | ' ' | '\t' | '\r' -> st.i <- st.i + 1
    | '\n' ->
        st.i <- st.i + 1;
        newline ()
    | '#' -> skip_line_comment ()
    | '-' when peek 1 = Some '-' -> skip_line_comment ()
    | '+' ->
        emit Token.PLUS p;
        st.i <- st.i + 1
    | '-' ->
        emit Token.MINUS p;
        st.i <- st.i + 1
    | '*' ->
        emit Token.STAR p;
        st.i <- st.i + 1
    | '/' ->
        emit Token.SLASH p;
        st.i <- st.i + 1
    | '^' ->
        emit Token.CARET p;
        st.i <- st.i + 1
    | '(' ->
        emit Token.LPAREN p;
        st.i <- st.i + 1
    | ')' ->
        emit Token.RPAREN p;
        st.i <- st.i + 1
    | ',' ->
        emit Token.COMMA p;
        st.i <- st.i + 1
    | ';' ->
        emit Token.SEMI p;
        st.i <- st.i + 1
    | ':' when peek 1 = Some '=' ->
        emit Token.ASSIGN p;
        st.i <- st.i + 2
    | ':' ->
        emit Token.COLON p;
        st.i <- st.i + 1
    | '=' ->
        emit Token.EQUAL p;
        st.i <- st.i + 1
    | '"' -> lex_string p
    | c when is_digit c -> lex_number p
    | c when is_ident_start c -> lex_ident p
    | c -> Errors.failf ~pos:p "unexpected character %C" c
  in
  Errors.protect (fun () ->
      while st.i < n do
        step ()
      done;
      emit Token.EOF (pos st);
      List.rev !out)
