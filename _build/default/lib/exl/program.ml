let load source = Result.bind (Parser.parse source) Typecheck.check
let load_normalized source = Result.bind (load source) Normalize.checked

let run_source source registry =
  Result.bind (load source) (fun checked -> Interp.run checked registry)

let load_exn source =
  match load source with
  | Ok c -> c
  | Error e -> invalid_arg ("EXL: " ^ Errors.to_string e)

let run_exn checked registry =
  match Interp.run checked registry with
  | Ok reg -> reg
  | Error e -> invalid_arg ("EXL: " ^ Errors.to_string e)
