type t =
  | IDENT of string
  | NUMBER of float
  | STRING of string
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | CARET
  | LPAREN
  | RPAREN
  | COMMA
  | COLON
  | SEMI
  | ASSIGN
  | EQUAL
  | KW_CUBE
  | KW_GROUP
  | KW_BY
  | KW_AS
  | EOF

type located = { token : t; pos : Ast.pos }

let to_string = function
  | IDENT s -> s
  | NUMBER f -> Printf.sprintf "%g" f
  | STRING s -> Printf.sprintf "%S" s
  | PLUS -> "+"
  | MINUS -> "-"
  | STAR -> "*"
  | SLASH -> "/"
  | CARET -> "^"
  | LPAREN -> "("
  | RPAREN -> ")"
  | COMMA -> ","
  | COLON -> ":"
  | SEMI -> ";"
  | ASSIGN -> ":="
  | EQUAL -> "="
  | KW_CUBE -> "cube"
  | KW_GROUP -> "group"
  | KW_BY -> "by"
  | KW_AS -> "as"
  | EOF -> "<eof>"

let pp ppf t = Format.pp_print_string ppf (to_string t)
