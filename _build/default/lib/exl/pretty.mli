(** EXL program printer.

    Produces concrete syntax that re-parses to the same AST
    ([Parser.parse (Pretty.program_to_string p)] = [p] up to positions);
    this round-trip is property-tested. *)

val expr_to_string : Ast.expr -> string
val stmt_to_string : Ast.stmt -> string
val decl_to_string : Ast.decl -> string
val program_to_string : Ast.program -> string
val pp_expr : Format.formatter -> Ast.expr -> unit
val pp_program : Format.formatter -> Ast.program -> unit
