open Matrix

(** One-stop front end: parse, check, normalize, interpret. *)

val load : string -> (Typecheck.checked, Errors.t) result
(** Parse and type-check EXL source. *)

val load_normalized : string -> (Typecheck.checked, Errors.t) result
(** [load] followed by one-operator-per-statement normalization. *)

val run_source : string -> Registry.t -> (Registry.t, Errors.t) result
(** Parse, check and interpret against the given elementary data. *)

val load_exn : string -> Typecheck.checked
(** @raise Invalid_argument with the rendered error. Convenience for
    examples and benches. *)

val run_exn : Typecheck.checked -> Registry.t -> Registry.t
