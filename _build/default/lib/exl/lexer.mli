(** Hand-written lexer for EXL.

    Comments run from [--] or [#] to end of line.  Keywords ([cube],
    [group], [by], [as]) are case-insensitive; identifiers are
    case-sensitive (cube names are uppercase by Bank convention but
    this is not enforced). *)

val tokenize : string -> (Token.located list, Errors.t) result
(** The resulting list always ends with [EOF]. *)
