open Matrix

(** Reference interpreter: the direct algorithmic semantics of EXL.

    This is the ground truth of the whole reproduction.  Section 4.2 of
    the paper proves that the chase over the generated schema mappings
    produces exactly the output of the statistical program; we verify
    that theorem mechanically by comparing the chase (and every target
    engine) against this interpreter. *)

type value = V_scalar of float | V_cube of Cube.t

val eval_expr :
  Typecheck.Env.t -> Registry.t -> Ast.expr -> (value, Errors.t) result
(** Evaluate one expression against the cubes currently in the
    registry. *)

val run_stmt :
  Typecheck.Env.t -> Registry.t -> Ast.stmt -> (unit, Errors.t) result
(** Evaluate a statement and store the resulting derived cube. *)

val run : Typecheck.checked -> Registry.t -> (Registry.t, Errors.t) result
(** Run a whole checked program.  The input registry provides the
    elementary cubes (missing ones are treated as empty, matching the
    partial-function reading); the result is a fresh registry holding
    elementary and derived cubes.  The input registry is not mutated. *)

val shift_key_value : int -> Value.t -> Value.t option
(** The time-shift on one dimension value: periods shift by index,
    dates by days; [None] on non-temporal values.  Exposed because every
    target engine must implement the same convention: positive amounts
    lag, i.e. [shift(e, s)] holds at time [t] the value of [e] at
    [t - s] (this matches the paper's statements (5a)-(5d) and tgd (5),
    which compare a quarter with its predecessor). *)

val align_dims : (string * Domain.t) list -> Cube.t -> Cube.t
(** Reorder a cube's dimensions (by name) to the given order. *)
