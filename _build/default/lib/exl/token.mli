(** Lexical tokens of EXL. *)

type t =
  | IDENT of string
  | NUMBER of float
  | STRING of string
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | CARET
  | LPAREN
  | RPAREN
  | COMMA
  | COLON
  | SEMI
  | ASSIGN  (** [:=] *)
  | EQUAL  (** [=], in filter conditions *)
  | KW_CUBE
  | KW_GROUP
  | KW_BY
  | KW_AS
  | EOF

type located = { token : t; pos : Ast.pos }

val to_string : t -> string
val pp : Format.formatter -> t -> unit
