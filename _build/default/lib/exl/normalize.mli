(** Normalization: one operator per statement.

    Section 4.1 of the paper assumes "expressions in EXL statements
    include one operator ... we could add additional statements and
    auxiliary cubes to handle intermediate results" — its example turns
    statement (5) into (5a)-(5d).  This pass performs that rewriting:
    after it, every statement's right-hand side is {e simple} — a single
    operator applied to atoms (cube references or numbers), or a plain
    copy.  Mapping generation consumes normalized programs; the [Fuse]
    pass of the mapping layer can later recombine chains into complex
    tgds like the paper's tgd (5). *)

val is_atom : Ast.expr -> bool
val is_simple : Ast.expr -> bool
(** Atom, or one operator whose operands are atoms. *)

val is_normal : Ast.program -> bool

val program : Ast.program -> Ast.program
(** Rewrites every statement into simple ones, introducing auxiliary
    cubes named [<lhs>__<n>].  Fresh names are guaranteed not to clash
    with any identifier in the program.  Declarations are preserved.
    The output re-parses and re-checks; temporaries inherit schemas by
    inference. *)

val fold_constants : Ast.expr -> Ast.expr
(** Constant folding on numeric subexpressions (applied by [program]
    before flattening); undefined constant operations are left alone so
    the runtime error surfaces unchanged. *)

val cse : Ast.program -> Ast.program
(** Common-subexpression elimination on a normalized program: auxiliary
    statements with identical right-hand sides are merged (e.g.
    [100 * (C - shift(C, 1)) / shift(C, 1)] needs one shift temp, not
    two). Only temporaries are folded. *)

val checked : Typecheck.checked -> (Typecheck.checked, Errors.t) result
(** [program] followed by [cse] and re-typechecking. *)

val temp_base : string -> string
(** The statement lhs an auxiliary cube was generated for:
    [temp_base "PCHNG__2" = "PCHNG"], identity on other names. *)

val is_temp : string -> bool
