type t = { pos : Ast.pos option; msg : string }

let make ?pos msg = { pos; msg }
let makef ?pos fmt = Format.kasprintf (fun msg -> make ?pos msg) fmt

let to_string e =
  match e.pos with
  | Some p -> Format.asprintf "%a: %s" Ast.pp_pos p e.msg
  | None -> e.msg

let pp ppf e = Format.pp_print_string ppf (to_string e)

let to_string_with_source ~source e =
  match e.pos with
  | None -> to_string e
  | Some p ->
      let lines = String.split_on_char '\n' source in
      if p.Ast.line < 1 || p.Ast.line > List.length lines then to_string e
      else
        let line = List.nth lines (p.Ast.line - 1) in
        let caret = String.make (max 0 (p.Ast.col - 1)) ' ' ^ "^" in
        Printf.sprintf "%s\n  %s\n  %s" (to_string e) line caret

exception Exl_error of t

let fail ?pos msg = raise (Exl_error (make ?pos msg))
let failf ?pos fmt = Format.kasprintf (fun msg -> fail ?pos msg) fmt

let protect f =
  try Ok (f ()) with
  | Exl_error e -> Error e
  | Invalid_argument msg -> Error (make msg)
