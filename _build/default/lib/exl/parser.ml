type state = { tokens : Token.located array; mutable i : int }

let current st = st.tokens.(st.i)
let peek_token st = (current st).Token.token
let pos st = (current st).Token.pos
let advance st = if st.i < Array.length st.tokens - 1 then st.i <- st.i + 1

let expect st tok =
  if peek_token st = tok then advance st
  else
    Errors.failf ~pos:(pos st) "expected %s but found %s"
      (Token.to_string tok)
      (Token.to_string (peek_token st))

let expect_ident st =
  match peek_token st with
  | Token.IDENT name ->
      advance st;
      name
  | other ->
      Errors.failf ~pos:(pos st) "expected an identifier but found %s"
        (Token.to_string other)

(* dim ::= ID ["as" ID] | ID "(" ID ")" ["as" ID] *)
let parse_dim_item st =
  let first = expect_ident st in
  let fn, src =
    if peek_token st = Token.LPAREN then begin
      advance st;
      let src = expect_ident st in
      expect st Token.RPAREN;
      (Some first, src)
    end
    else (None, first)
  in
  let alias =
    if peek_token st = Token.KW_AS then begin
      advance st;
      Some (expect_ident st)
    end
    else None
  in
  { Ast.src; fn; alias }

let parse_group_by st =
  expect st Token.KW_GROUP;
  expect st Token.KW_BY;
  let rec loop acc =
    let item = parse_dim_item st in
    if peek_token st = Token.COMMA then begin
      advance st;
      loop (item :: acc)
    end
    else List.rev (item :: acc)
  in
  loop []

let rec parse_expr_prec st min_prec =
  let lhs = parse_unary st in
  climb st lhs min_prec

and climb st lhs min_prec =
  match binop_of (peek_token st) with
  | Some op when Ops.Binop.precedence op >= min_prec ->
      advance st;
      let next_min =
        if Ops.Binop.is_right_assoc op then Ops.Binop.precedence op
        else Ops.Binop.precedence op + 1
      in
      let rhs = parse_expr_prec st next_min in
      climb st (Ast.Binop (op, lhs, rhs)) min_prec
  | _ -> lhs

and binop_of = function
  | Token.PLUS -> Some Ops.Binop.Add
  | Token.MINUS -> Some Ops.Binop.Sub
  | Token.STAR -> Some Ops.Binop.Mul
  | Token.SLASH -> Some Ops.Binop.Div
  | Token.CARET -> Some Ops.Binop.Pow
  | _ -> None

and parse_unary st =
  match peek_token st with
  | Token.MINUS ->
      advance st;
      Ast.Neg (parse_unary st)
  | _ -> parse_atom st

and parse_atom st =
  let p = pos st in
  match peek_token st with
  | Token.NUMBER f ->
      advance st;
      Ast.Number f
  | Token.LPAREN ->
      advance st;
      let e = parse_expr_prec st 1 in
      expect st Token.RPAREN;
      e
  | Token.IDENT name ->
      advance st;
      if peek_token st = Token.LPAREN then begin
        advance st;
        parse_call st name p
      end
      else Ast.Cube_ref name
  | other ->
      Errors.failf ~pos:p "expected an expression but found %s"
        (Token.to_string other)

(* call arguments: expressions, filter conditions (IDENT = literal),
   optionally terminated by a group-by. *)
and parse_call st fn call_pos =
  let args = ref [] and group_by = ref None and conditions = ref [] in
  let next_is_condition () =
    match peek_token st with
    | Token.IDENT _ ->
        st.i + 1 < Array.length st.tokens
        && st.tokens.(st.i + 1).Token.token = Token.EQUAL
    | _ -> false
  in
  let parse_condition () =
    let dim = expect_ident st in
    expect st Token.EQUAL;
    let literal =
      match peek_token st with
      | Token.STRING text ->
          advance st;
          Matrix.Value.String text
      | Token.NUMBER f ->
          advance st;
          Matrix.Value.Float f
      | Token.MINUS ->
          advance st;
          (match peek_token st with
          | Token.NUMBER f ->
              advance st;
              Matrix.Value.Float (-.f)
          | other ->
              Errors.failf ~pos:(pos st)
                "expected a number after - in a condition, found %s"
                (Token.to_string other))
      | other ->
          Errors.failf ~pos:(pos st)
            "expected a literal after %s =, found %s" dim
            (Token.to_string other)
    in
    conditions := (dim, literal) :: !conditions
  in
  let rec loop () =
    (match peek_token st with
    | Token.KW_GROUP -> group_by := Some (parse_group_by st)
    | _ when next_is_condition () -> parse_condition ()
    | _ -> args := parse_expr_prec st 1 :: !args);
    match peek_token st with
    | Token.COMMA when !group_by = None ->
        advance st;
        loop ()
    | Token.COMMA ->
        Errors.fail ~pos:(pos st) "group by must be the last clause of a call"
    | _ -> ()
  in
  if peek_token st <> Token.RPAREN then loop ();
  expect st Token.RPAREN;
  Ast.Call
    {
      fn;
      args = List.rev !args;
      group_by = !group_by;
      conditions = List.rev !conditions;
      pos = call_pos;
    }

(* decl ::= "cube" ID "(" ID ":" TYPE ("," ID ":" TYPE)* ")" [":" TYPE] ";" *)
let parse_decl st =
  let d_pos = pos st in
  expect st Token.KW_CUBE;
  let d_name = expect_ident st in
  expect st Token.LPAREN;
  let rec dims acc =
    let dim = expect_ident st in
    expect st Token.COLON;
    let dom = expect_ident st in
    let acc = (dim, dom) :: acc in
    if peek_token st = Token.COMMA then begin
      advance st;
      dims acc
    end
    else List.rev acc
  in
  let d_dims = if peek_token st = Token.RPAREN then [] else dims [] in
  expect st Token.RPAREN;
  let d_measure =
    if peek_token st = Token.COLON then begin
      advance st;
      Some (expect_ident st)
    end
    else None
  in
  expect st Token.SEMI;
  { Ast.d_name; d_dims; d_measure; d_pos }

let parse_stmt st =
  let s_pos = pos st in
  let lhs = expect_ident st in
  expect st Token.ASSIGN;
  let rhs = parse_expr_prec st 1 in
  expect st Token.SEMI;
  { Ast.lhs; rhs; s_pos }

let parse_program st =
  let rec loop acc =
    match peek_token st with
    | Token.EOF -> List.rev acc
    | Token.KW_CUBE -> loop (Ast.Decl (parse_decl st) :: acc)
    | _ -> loop (Ast.Stmt (parse_stmt st) :: acc)
  in
  loop []

let with_tokens src f =
  match Lexer.tokenize src with
  | Error e -> Error e
  | Ok tokens ->
      Errors.protect (fun () ->
          let st = { tokens = Array.of_list tokens; i = 0 } in
          let result = f st in
          (match peek_token st with
          | Token.EOF -> ()
          | other ->
              Errors.failf ~pos:(pos st) "unexpected %s after the end of input"
                (Token.to_string other));
          result)

let parse src = with_tokens src parse_program
let parse_expr src = with_tokens src (fun st -> parse_expr_prec st 1)
