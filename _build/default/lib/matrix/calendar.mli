(** Civil dates and statistical periods.

    The Matrix data model (and EXL) distinguishes time dimensions from the
    others; values of time dimensions are either civil dates or {e periods}
    at a given sampling frequency (year, semester, quarter, month, week,
    day).  Frequency conversion (e.g. [quarter] applied to a date dimension,
    as in statement (1) of the paper's overview) and the [shift] operator
    are defined here. *)

(** A sampling frequency, ordered from coarsest to finest. *)
type frequency = Year | Semester | Quarter | Month | Week | Day

val frequency_to_string : frequency -> string
val frequency_of_string : string -> frequency option

val periods_per_year : frequency -> int option
(** [None] for [Week] and [Day], whose count per year is not constant. *)

val compare_frequency : frequency -> frequency -> int
(** Coarser frequencies compare smaller: [Year < ... < Day]. *)

module Date : sig
  (** Civil (proleptic Gregorian) dates. *)

  type t = private { year : int; month : int; day : int }

  val make : year:int -> month:int -> day:int -> t
  (** @raise Invalid_argument on out-of-range components. *)

  val make_opt : year:int -> month:int -> day:int -> t option
  val is_leap_year : int -> bool
  val days_in_month : year:int -> month:int -> int
  val compare : t -> t -> int
  val equal : t -> t -> bool

  val to_rata_die : t -> int
  (** Days since 0000-03-01 under the proleptic Gregorian calendar; a
      total order on dates supporting O(1) day arithmetic. *)

  val of_rata_die : int -> t
  val add_days : t -> int -> t
  val day_of_week : t -> int  (** 0 = Monday ... 6 = Sunday (ISO). *)

  val to_string : t -> string  (** ISO-8601 [YYYY-MM-DD]. *)

  val of_string : string -> t option
  val pp : Format.formatter -> t -> unit
end

module Period : sig
  (** A period is a frequency together with an integral index counting
      periods from a fixed epoch, so that [shift] is index arithmetic and
      periods at the same frequency are totally ordered. *)

  type t = private { freq : frequency; index : int }

  val make : frequency -> int -> t

  val year : int -> t
  val semester : int -> int -> t  (** [semester y s] with [s] in 1..2. *)

  val quarter : int -> int -> t   (** [quarter y q] with [q] in 1..4. *)

  val month : int -> int -> t     (** [month y m] with [m] in 1..12. *)

  val week : int -> int -> t      (** [week y w], ISO week number. *)

  val day : Date.t -> t

  val freq : t -> frequency
  val index : t -> int

  val year_of : t -> int
  (** The calendar year the period starts in. *)

  val sub_of : t -> int
  (** The within-year ordinal (quarter number, month number, ...);
      1 for [Year]. *)

  val shift : t -> int -> t
  (** [shift p s] is the period [s] steps later ([s] may be negative).
      This is the paper's time-shift operator on dimension values. *)

  val diff : t -> t -> int
  (** [diff a b = index a - index b]; requires equal frequencies.
      @raise Invalid_argument on frequency mismatch. *)

  val compare : t -> t -> int
  (** Orders first by frequency, then by index, so mixed-frequency keys
      still sort deterministically. *)

  val equal : t -> t -> bool
  val hash : t -> int

  val start_date : t -> Date.t
  val end_date : t -> Date.t

  val of_date : frequency -> Date.t -> t
  (** Frequency conversion of a date: the period of the given frequency
      containing the date.  [of_date Quarter] is the paper's [quarter]
      scalar dimension function. *)

  val convert : frequency -> t -> t
  (** Convert a period to a coarser (or equal) frequency: the target
      period containing this period's start date. *)

  val range : t -> t -> t list
  (** [range a b] enumerates periods from [a] to [b] inclusive, at the
      frequency of [a]. @raise Invalid_argument on frequency mismatch. *)

  val to_string : t -> string
  (** ["2023"], ["2023S1"], ["2023Q2"], ["2023M07"], ["2023W05"],
      ["2023-07-14"]. *)

  val of_string : string -> t option
  val pp : Format.formatter -> t -> unit
end
