(** SDMX-ML export of cube structures and data.

    The paper positions the Matrix model "in the class of SDMX
    (Statistical Data and Metadata Exchange), the internationally
    adopted model", and its production flow ends with {e dissemination}
    — packaging products for stakeholders.  This module renders the two
    artifacts that phase needs: a Data Structure Definition for a cube
    schema and a generic data message for its contents. *)

val time_period : Calendar.Period.t -> string
(** SDMX time-period representation: ["2020"], ["2020-S1"],
    ["2020-Q1"], ["2020-01"], ["2020-W05"], ["2020-01-17"]. *)

val dsd_of_schema : ?agency:string -> Schema.t -> string
(** An SDMX-ML structure message with one DataStructure: a Dimension
    per categorical dimension, a TimeDimension for the temporal one,
    and the PrimaryMeasure. *)

val generic_data_of_cube : ?agency:string -> Cube.t -> string
(** An SDMX-ML generic data message: one Series per combination of
    non-temporal dimension values (ordered, deterministic), with one
    Obs per period; cubes without a temporal dimension render as a
    single series keyed by all dimensions. *)

val dataflow_of_registry : ?agency:string -> Registry.t -> string
(** Structure message listing a Dataflow per cube (the catalog a
    dissemination system would publish). *)
