let manifest_name = "manifest"

let manifest_of_registry registry =
  let line name =
    let cube = Registry.find_exn registry name in
    let schema = Cube.schema cube in
    let kind =
      Registry.kind_to_string
        (Option.value ~default:Registry.Derived (Registry.kind_of registry name))
    in
    let dims =
      String.concat ","
        (Array.to_list
           (Array.map
              (fun d ->
                Printf.sprintf "%s:%s" d.Schema.dim_name
                  (Domain.to_string d.Schema.dim_domain))
              schema.Schema.dims))
    in
    Printf.sprintf "%s|%s|%s|%s:%s" name kind dims schema.Schema.measure_name
      (Domain.to_string schema.Schema.measure_domain)
  in
  String.concat "\n" (List.map line (Registry.names registry)) ^ "\n"

let parse_typed field what =
  match String.index_opt field ':' with
  | Some i ->
      let name = String.sub field 0 i in
      let dom = String.sub field (i + 1) (String.length field - i - 1) in
      (match Domain.of_string dom with
      | Some d -> Ok (name, d)
      | None -> Error (Printf.sprintf "unknown domain %s in %s" dom what))
  | None -> Error (Printf.sprintf "malformed %s field %s" what field)

let registry_schemas_of_manifest text =
  let lines =
    List.filter (fun l -> String.trim l <> "") (String.split_on_char '\n' text)
  in
  let rec loop acc = function
    | [] -> Ok (List.rev acc)
    | line :: rest -> (
        match String.split_on_char '|' line with
        | [ name; kind_text; dims_text; measure_text ] -> (
            let kind =
              match kind_text with
              | "elementary" -> Ok Registry.Elementary
              | "derived" -> Ok Registry.Derived
              | other -> Error ("unknown kind " ^ other)
            in
            match kind with
            | Error msg -> Error msg
            | Ok kind -> (
                let dim_fields =
                  if dims_text = "" then []
                  else String.split_on_char ',' dims_text
                in
                let rec parse_dims acc = function
                  | [] -> Ok (List.rev acc)
                  | f :: fs -> (
                      match parse_typed f "dimension" with
                      | Ok d -> parse_dims (d :: acc) fs
                      | Error _ as e -> e)
                in
                match parse_dims [] dim_fields with
                | Error msg -> Error msg
                | Ok dims -> (
                    match parse_typed measure_text "measure" with
                    | Error msg -> Error msg
                    | Ok (measure_name, measure_domain) ->
                        let schema =
                          Schema.make ~measure_name ~measure_domain ~name ~dims ()
                        in
                        loop ((schema, kind) :: acc) rest)))
        | _ -> Error ("malformed manifest line: " ^ line))
  in
  loop [] lines

let write_file path content =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc content)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let save ~dir registry =
  try
    if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
    write_file (Filename.concat dir manifest_name) (manifest_of_registry registry);
    List.iter
      (fun name ->
        write_file
          (Filename.concat dir (name ^ ".csv"))
          (Csv.cube_to_string (Registry.find_exn registry name)))
      (Registry.names registry);
    Ok ()
  with Sys_error msg -> Error msg

let load ~dir =
  try
    let manifest = read_file (Filename.concat dir manifest_name) in
    match registry_schemas_of_manifest manifest with
    | Error msg -> Error msg
    | Ok entries ->
        let registry = Registry.create () in
        let rec loop = function
          | [] -> Ok registry
          | (schema, kind) :: rest -> (
              let path =
                Filename.concat dir (schema.Schema.name ^ ".csv")
              in
              match Csv.cube_of_string schema (read_file path) with
              | Ok cube ->
                  Registry.add registry kind cube;
                  loop rest
              | Error msg ->
                  Error (Printf.sprintf "%s: %s" path msg))
        in
        loop entries
  with Sys_error msg -> Error msg
