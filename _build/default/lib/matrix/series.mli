(** Time-series view of one-dimensional temporal cubes.

    The paper treats time series as cubes with a single time dimension;
    black-box operators (seasonal decomposition, moving averages) act on
    the chronologically sorted vector of measures.  This module converts
    between the two representations. *)

type t = private {
  schema : Schema.t;
  points : (Calendar.Period.t * float) array;  (** sorted by period *)
}

val of_cube : Cube.t -> t
(** @raise Invalid_argument if the cube is not a time series (one
    temporal dimension, numeric measures). Date keys are converted to
    day periods. *)

val to_cube : t -> Cube.t
val length : t -> int
val periods : t -> Calendar.Period.t array
val values : t -> float array
val frequency : t -> Calendar.frequency option
(** [None] on an empty series. *)

val is_contiguous : t -> bool
(** Consecutive points are consecutive periods — what seasonal
    decomposition requires. *)

val map_values : (float array -> float array) -> t -> t
(** Apply a whole-vector transform (a black-box operator): the result
    keeps the same periods. @raise Invalid_argument if the transform
    changes the length. *)

val with_values : t -> float array -> t
val make : Schema.t -> (Calendar.Period.t * float) list -> t
val pp : Format.formatter -> t -> unit
