type t = { schema : Schema.t; data : Value.t Tuple.Table.t }

exception Functionality_violation of { cube : string; key : Tuple.t }

let create schema = { schema; data = Tuple.Table.create 64 }
let schema c = c.schema
let name c = c.schema.Schema.name
let cardinality c = Tuple.Table.length c.data
let is_empty c = cardinality c = 0

let set c key v =
  if Value.is_null v then Tuple.Table.remove c.data key
  else Tuple.Table.replace c.data key v

let add_strict c key v =
  if not (Value.is_null v) then
    match Tuple.Table.find_opt c.data key with
    | Some existing when not (Value.equal existing v) ->
        raise (Functionality_violation { cube = name c; key })
    | Some _ -> ()
    | None -> Tuple.Table.replace c.data key v

let validate_tuple c key =
  if not (Schema.compatible_tuple c.schema key) then
    invalid_arg
      (Printf.sprintf "Cube: tuple %s does not fit schema %s"
         (Tuple.to_string key)
         (Schema.to_string c.schema))

let find c key = Tuple.Table.find_opt c.data key

let find_exn c key =
  match find c key with
  | Some v -> v
  | None ->
      invalid_arg
        (Printf.sprintf "Cube.find_exn: %s undefined on %s" (name c)
           (Tuple.to_string key))

let mem c key = Tuple.Table.mem c.data key
let remove c key = Tuple.Table.remove c.data key
let iter f c = Tuple.Table.iter f c.data
let fold f c init = Tuple.Table.fold f c.data init
let keys c = fold (fun k _ acc -> k :: acc) c []

let to_alist c =
  fold (fun k v acc -> (k, v) :: acc) c []
  |> List.sort (fun (a, _) (b, _) -> Tuple.compare a b)

let of_alist schema alist =
  let c = create schema in
  List.iter (fun (k, v) -> set c k v) alist;
  c

let of_rows schema rows =
  let n = Schema.arity schema in
  let c = create schema in
  List.iter
    (fun row ->
      let arr = Array.of_list row in
      if Array.length arr <> n + 1 then
        invalid_arg
          (Printf.sprintf "Cube.of_rows: row of width %d for schema %s"
             (Array.length arr)
             (Schema.to_string schema));
      let key = Tuple.of_array (Array.sub arr 0 n) in
      validate_tuple c key;
      set c key arr.(n))
    rows;
  c

let copy c = { schema = c.schema; data = Tuple.Table.copy c.data }

let with_schema schema c =
  if Schema.arity schema <> Schema.arity c.schema then
    invalid_arg "Cube.with_schema: arity mismatch";
  { schema; data = Tuple.Table.copy c.data }

let map_measure f c =
  let out = create c.schema in
  iter (fun k v -> set out k (f v)) c;
  out

let mapi f schema c =
  let out = create schema in
  iter
    (fun k v ->
      match f k v with
      | Some (k', v') -> add_strict out k' v'
      | None -> ())
    c;
  out

let filter p c =
  let out = create c.schema in
  iter (fun k v -> if p k v then set out k v) c;
  out

let merge_join combine schema a b =
  let small, large, flip =
    if cardinality a <= cardinality b then (a, b, false) else (b, a, true)
  in
  let out = create schema in
  iter
    (fun k v_small ->
      match find large k with
      | Some v_large ->
          let v =
            if flip then combine v_large v_small else combine v_small v_large
          in
          set out k v
      | None -> ())
    small;
  out

let merge_outer combine schema a b =
  let out = create schema in
  iter
    (fun k va ->
      let vb = find b k in
      set out k (combine (Some va) vb))
    a;
  iter
    (fun k vb -> if not (mem a k) then set out k (combine None (Some vb)))
    b;
  out

let values_close eps a b =
  match (Value.to_float a, Value.to_float b) with
  | Some x, Some y -> Float.abs (x -. y) <= eps
  | _ -> Value.equal a b

let equal_data ?(eps = 1e-9) a b =
  cardinality a = cardinality b
  && fold
       (fun k v ok ->
         ok
         && match find b k with Some w -> values_close eps v w | None -> false)
       a true

let diff_data ?(eps = 1e-9) a b =
  let out = ref [] and count = ref 0 in
  let report msg =
    incr count;
    if !count <= 20 then out := msg :: !out
  in
  iter
    (fun k v ->
      match find b k with
      | None ->
          report (Printf.sprintf "missing in %s: %s" (name b) (Tuple.to_string k))
      | Some w when not (values_close eps v w) ->
          report
            (Printf.sprintf "at %s: %s=%s vs %s=%s" (Tuple.to_string k)
               (name a) (Value.to_string v) (name b) (Value.to_string w))
      | Some _ -> ())
    a;
  iter
    (fun k _ ->
      if not (mem a k) then
        report (Printf.sprintf "extra in %s: %s" (name b) (Tuple.to_string k)))
    b;
  let msgs = List.rev !out in
  if !count > 20 then
    msgs @ [ Printf.sprintf "... and %d more" (!count - 20) ]
  else msgs

let pp ppf c =
  Format.fprintf ppf "@[<v2>%s [%d tuples]" (Schema.to_string c.schema)
    (cardinality c);
  List.iter
    (fun (k, v) ->
      Format.fprintf ppf "@,%s -> %s" (Tuple.to_string k) (Value.to_string v))
    (to_alist c);
  Format.fprintf ppf "@]"

let to_string c = Format.asprintf "%a" pp c
