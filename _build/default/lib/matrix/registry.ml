type kind = Elementary | Derived

let kind_to_string = function
  | Elementary -> "elementary"
  | Derived -> "derived"

type entry = { kind : kind; cube : Cube.t }
type t = (string, entry) Hashtbl.t

let create () = Hashtbl.create 32
let add t kind cube = Hashtbl.replace t (Cube.name cube) { kind; cube }
let declare t kind schema = add t kind (Cube.create schema)
let find t name = Option.map (fun e -> e.cube) (Hashtbl.find_opt t name)

let find_exn t name =
  match find t name with
  | Some c -> c
  | None -> invalid_arg (Printf.sprintf "Registry.find_exn: no cube %S" name)

let kind_of t name = Option.map (fun e -> e.kind) (Hashtbl.find_opt t name)
let mem t name = Hashtbl.mem t name
let remove t name = Hashtbl.remove t name

let names t =
  Hashtbl.fold (fun k _ acc -> k :: acc) t [] |> List.sort String.compare

let names_of_kind t kind =
  Hashtbl.fold (fun k e acc -> if e.kind = kind then k :: acc else acc) t []
  |> List.sort String.compare

let elementary_names t = names_of_kind t Elementary
let derived_names t = names_of_kind t Derived
let schemas t = List.map (fun n -> Cube.schema (find_exn t n)) (names t)

let copy t =
  let out = create () in
  Hashtbl.iter
    (fun k e -> Hashtbl.replace out k { e with cube = Cube.copy e.cube })
    t;
  out

let restrict_elementary t =
  let out = create () in
  Hashtbl.iter
    (fun k e ->
      if e.kind = Elementary then
        Hashtbl.replace out k { e with cube = Cube.copy e.cube })
    t;
  out

let equal_data ?eps a b =
  names a = names b
  && List.for_all
       (fun n -> Cube.equal_data ?eps (find_exn a n) (find_exn b n))
       (names a)

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun n ->
      let e = Hashtbl.find t n in
      Format.fprintf ppf "%s %s [%d tuples]@," (kind_to_string e.kind)
        (Schema.to_string (Cube.schema e.cube))
        (Cube.cardinality e.cube))
    (names t);
  Format.fprintf ppf "@]"
