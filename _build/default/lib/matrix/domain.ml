type t =
  | Bool
  | Int
  | Float
  | String
  | Date
  | Period of Calendar.frequency option
  | Any

let equal a b =
  match (a, b) with
  | Bool, Bool | Int, Int | Float, Float | String, String | Date, Date | Any, Any
    ->
      true
  | Period x, Period y -> x = y
  | (Bool | Int | Float | String | Date | Period _ | Any), _ -> false

let member v d =
  match (v, d) with
  | Value.Null, _ -> true
  | _, Any -> true
  | Value.Bool _, Bool -> true
  | Value.Int _, Int -> true
  | Value.Int _, Float -> true
  | Value.Float _, Float -> true
  | Value.String _, String -> true
  | Value.Date _, Date -> true
  | Value.Period _, Period None -> true
  | Value.Period p, Period (Some f) -> Calendar.Period.freq p = f
  | ( Value.(Bool _ | Int _ | Float _ | String _ | Date _ | Period _),
      (Bool | Int | Float | String | Date | Period _) ) ->
      false

let is_numeric = function
  | Int | Float -> true
  | Bool | String | Date | Period _ | Any -> false

let is_temporal = function
  | Date | Period _ -> true
  | Bool | Int | Float | String | Any -> false

let union a b =
  match (a, b) with
  | x, y when equal x y -> Some x
  | Int, Float | Float, Int -> Some Float
  | Period _, Period _ -> Some (Period None)
  | Any, x | x, Any -> Some x
  | _ -> None

let to_string = function
  | Bool -> "bool"
  | Int -> "int"
  | Float -> "float"
  | String -> "string"
  | Date -> "date"
  | Period None -> "period"
  | Period (Some f) -> Calendar.frequency_to_string f
  | Any -> "any"

let of_string s =
  match String.lowercase_ascii s with
  | "bool" -> Some Bool
  | "int" -> Some Int
  | "float" | "number" | "numeric" -> Some Float
  | "string" -> Some String
  | "date" -> Some Date
  | "period" -> Some (Period None)
  | "any" -> Some Any
  | other -> (
      match Calendar.frequency_of_string other with
      | Some Calendar.Day -> Some Date
      | Some f -> Some (Period (Some f))
      | None -> None)

let pp ppf d = Format.pp_print_string ppf (to_string d)
