type frequency = Year | Semester | Quarter | Month | Week | Day

let frequency_to_string = function
  | Year -> "year"
  | Semester -> "semester"
  | Quarter -> "quarter"
  | Month -> "month"
  | Week -> "week"
  | Day -> "day"

let frequency_of_string s =
  match String.lowercase_ascii s with
  | "year" | "a" | "y" -> Some Year
  | "semester" | "s" -> Some Semester
  | "quarter" | "q" -> Some Quarter
  | "month" | "m" -> Some Month
  | "week" | "w" -> Some Week
  | "day" | "d" -> Some Day
  | _ -> None

let periods_per_year = function
  | Year -> Some 1
  | Semester -> Some 2
  | Quarter -> Some 4
  | Month -> Some 12
  | Week | Day -> None

let frequency_rank = function
  | Year -> 0
  | Semester -> 1
  | Quarter -> 2
  | Month -> 3
  | Week -> 4
  | Day -> 5

let compare_frequency a b = Int.compare (frequency_rank a) (frequency_rank b)

(* Integer division rounding towards negative infinity: period indices are
   negative before the epoch and truncation would break shifts there. *)
let floor_div a b =
  let q = a / b and r = a mod b in
  if r <> 0 && (r < 0) <> (b < 0) then q - 1 else q

let floor_mod a b =
  let r = a mod b in
  if r <> 0 && (r < 0) <> (b < 0) then r + b else r

module Date = struct
  type t = { year : int; month : int; day : int }

  let is_leap_year y = (y mod 4 = 0 && y mod 100 <> 0) || y mod 400 = 0

  let days_in_month ~year ~month =
    match month with
    | 1 | 3 | 5 | 7 | 8 | 10 | 12 -> 31
    | 4 | 6 | 9 | 11 -> 30
    | 2 -> if is_leap_year year then 29 else 28
    | _ -> invalid_arg "Calendar.Date.days_in_month: month out of range"

  let make_opt ~year ~month ~day =
    if month < 1 || month > 12 then None
    else if day < 1 || day > days_in_month ~year ~month then None
    else Some { year; month; day }

  let make ~year ~month ~day =
    match make_opt ~year ~month ~day with
    | Some d -> d
    | None ->
        invalid_arg
          (Printf.sprintf "Calendar.Date.make: invalid date %d-%d-%d" year
             month day)

  let compare a b =
    match Int.compare a.year b.year with
    | 0 -> (
        match Int.compare a.month b.month with
        | 0 -> Int.compare a.day b.day
        | c -> c)
    | c -> c

  let equal a b = compare a b = 0

  (* Days since 0000-03-01, proleptic Gregorian (Hinnant's algorithm). *)
  let to_rata_die { year; month; day } =
    let y = if month <= 2 then year - 1 else year in
    let era = floor_div y 400 in
    let yoe = y - (era * 400) in
    let mp = (month + 9) mod 12 in
    let doy = (((153 * mp) + 2) / 5) + day - 1 in
    let doe = (yoe * 365) + (yoe / 4) - (yoe / 100) + doy in
    (era * 146097) + doe

  let of_rata_die z =
    let era = floor_div z 146097 in
    let doe = z - (era * 146097) in
    let yoe = (doe - (doe / 1460) + (doe / 36524) - (doe / 146096)) / 365 in
    let y = yoe + (era * 400) in
    let doy = doe - ((365 * yoe) + (yoe / 4) - (yoe / 100)) in
    let mp = ((5 * doy) + 2) / 153 in
    let day = doy - (((153 * mp) + 2) / 5) + 1 in
    let month = if mp < 10 then mp + 3 else mp - 9 in
    let year = if month <= 2 then y + 1 else y in
    { year; month; day }

  let add_days d n = of_rata_die (to_rata_die d + n)
  let day_of_week d = floor_mod (to_rata_die d + 2) 7
  let to_string d = Printf.sprintf "%04d-%02d-%02d" d.year d.month d.day

  let of_string s =
    match String.split_on_char '-' s with
    | [ y; m; d ] -> (
        match (int_of_string_opt y, int_of_string_opt m, int_of_string_opt d)
        with
        | Some year, Some month, Some day -> make_opt ~year ~month ~day
        | _ -> None)
    | _ -> None

  let pp ppf d = Format.pp_print_string ppf (to_string d)
end

module Period = struct
  type t = { freq : frequency; index : int }

  let make freq index = { freq; index }
  let freq p = p.freq
  let index p = p.index
  let year y = { freq = Year; index = y }

  let check_sub name lo hi s =
    if s < lo || s > hi then
      invalid_arg (Printf.sprintf "Calendar.Period.%s: ordinal %d not in %d..%d" name s lo hi)

  let semester y s =
    check_sub "semester" 1 2 s;
    { freq = Semester; index = (y * 2) + s - 1 }

  let quarter y q =
    check_sub "quarter" 1 4 q;
    { freq = Quarter; index = (y * 4) + q - 1 }

  let month y m =
    check_sub "month" 1 12 m;
    { freq = Month; index = (y * 12) + m - 1 }

  let day d = { freq = Day; index = Date.to_rata_die d }

  (* Weeks start on Monday; the week index is the floor of (rata die + 2)/7
     so that Mondays open a new index. *)
  let week_index_of_date d = floor_div (Date.to_rata_die d + 2) 7
  let week_start_rd w = (7 * w) - 2

  let of_date freq (d : Date.t) =
    match freq with
    | Year -> { freq; index = d.Date.year }
    | Semester -> { freq; index = (d.Date.year * 2) + ((d.Date.month - 1) / 6) }
    | Quarter -> { freq; index = (d.Date.year * 4) + ((d.Date.month - 1) / 3) }
    | Month -> { freq; index = (d.Date.year * 12) + (d.Date.month - 1) }
    | Week -> { freq; index = week_index_of_date d }
    | Day -> { freq; index = Date.to_rata_die d }

  let week y w =
    (* ISO rule: week 1 of year [y] is the week containing January 4th. *)
    let jan4 = Date.make ~year:y ~month:1 ~day:4 in
    { freq = Week; index = week_index_of_date jan4 + w - 1 }

  let start_date p =
    match p.freq with
    | Year -> Date.make ~year:p.index ~month:1 ~day:1
    | Semester ->
        Date.make ~year:(floor_div p.index 2)
          ~month:((floor_mod p.index 2 * 6) + 1)
          ~day:1
    | Quarter ->
        Date.make ~year:(floor_div p.index 4)
          ~month:((floor_mod p.index 4 * 3) + 1)
          ~day:1
    | Month ->
        Date.make ~year:(floor_div p.index 12)
          ~month:(floor_mod p.index 12 + 1)
          ~day:1
    | Week -> Date.of_rata_die (week_start_rd p.index)
    | Day -> Date.of_rata_die p.index

  let shift p s = { p with index = p.index + s }

  let diff a b =
    if a.freq <> b.freq then
      invalid_arg "Calendar.Period.diff: frequency mismatch";
    a.index - b.index

  let end_date p =
    Date.add_days (start_date (shift p 1)) (-1)

  let year_of p =
    match p.freq with
    | Year -> p.index
    | Semester -> floor_div p.index 2
    | Quarter -> floor_div p.index 4
    | Month -> floor_div p.index 12
    | Week ->
        (* ISO year: the year of the week's Thursday. *)
        (Date.of_rata_die (week_start_rd p.index + 3)).Date.year
    | Day -> (start_date p).Date.year

  let sub_of p =
    match p.freq with
    | Year -> 1
    | Semester -> floor_mod p.index 2 + 1
    | Quarter -> floor_mod p.index 4 + 1
    | Month -> floor_mod p.index 12 + 1
    | Week ->
        let thursday = Date.of_rata_die (week_start_rd p.index + 3) in
        let iso_year = thursday.Date.year in
        p.index - (week iso_year 1).index + 1
    | Day ->
        let d = start_date p in
        Date.to_rata_die d
        - Date.to_rata_die (Date.make ~year:d.Date.year ~month:1 ~day:1)
        + 1

  let compare a b =
    match compare_frequency a.freq b.freq with
    | 0 -> Int.compare a.index b.index
    | c -> c

  let equal a b = compare a b = 0
  let hash p = (frequency_rank p.freq * 1000003) lxor p.index

  let convert target p =
    if compare_frequency target p.freq > 0 then
      invalid_arg "Calendar.Period.convert: cannot convert to finer frequency"
    else of_date target (start_date p)

  let range a b =
    if a.freq <> b.freq then
      invalid_arg "Calendar.Period.range: frequency mismatch";
    let rec loop i acc =
      if i < a.index then acc else loop (i - 1) ({ a with index = i } :: acc)
    in
    loop b.index []

  let to_string p =
    match p.freq with
    | Year -> Printf.sprintf "%04d" p.index
    | Semester -> Printf.sprintf "%04dS%d" (year_of p) (sub_of p)
    | Quarter -> Printf.sprintf "%04dQ%d" (year_of p) (sub_of p)
    | Month -> Printf.sprintf "%04dM%02d" (year_of p) (sub_of p)
    | Week -> Printf.sprintf "%04dW%02d" (year_of p) (sub_of p)
    | Day -> Date.to_string (start_date p)

  let of_string s =
    let int_at i j = int_of_string_opt (String.sub s i (j - i)) in
    let n = String.length s in
    let tagged tag mk =
      match String.index_opt s tag with
      | Some i when i > 0 && i < n - 1 -> (
          match (int_at 0 i, int_at (i + 1) n) with
          | Some y, Some sub -> ( try Some (mk y sub) with Invalid_argument _ -> None)
          | _ -> None)
      | _ -> None
    in
    if String.contains s '-' then
      Option.map day (Date.of_string s)
    else
      match tagged 'S' semester with
      | Some _ as r -> r
      | None -> (
          match tagged 'Q' quarter with
          | Some _ as r -> r
          | None -> (
              match tagged 'M' month with
              | Some _ as r -> r
              | None -> (
                  match tagged 'W' week with
                  | Some _ as r -> r
                  | None -> Option.map year (int_of_string_opt s))))

  let pp ppf p = Format.pp_print_string ppf (to_string p)
end
