(** Cubes: sparse partial functions from dimension tuples to a measure.

    A cube is the paper's central object (Section 3): a statistical
    function [F : X1 x ... x Xn -> Y], stored sparsely.  The functional
    nature — at most one measure per dimension tuple — is the invariant
    the paper's egds enforce; here it is structural (the store is keyed
    by dimension tuple), and [add_strict] reports would-be violations the
    way a failing chase would. *)

type t

exception Functionality_violation of { cube : string; key : Tuple.t }
(** Raised by [add_strict] when a key is already present with a
    different measure — the counterpart of an egd failure. *)

val create : Schema.t -> t
(** A fresh empty cube. *)

val schema : t -> Schema.t
val name : t -> string
val cardinality : t -> int
val is_empty : t -> bool

val set : t -> Tuple.t -> Value.t -> unit
(** Insert or replace. [Null] measures are dropped (the function is
    undefined there). *)

val add_strict : t -> Tuple.t -> Value.t -> unit
(** Like [set] but @raise Functionality_violation when the key is bound
    to a different measure (within [Value.equal]). *)

val validate_tuple : t -> Tuple.t -> unit
(** @raise Invalid_argument when the tuple does not fit the schema. *)

val find : t -> Tuple.t -> Value.t option
val find_exn : t -> Tuple.t -> Value.t
val mem : t -> Tuple.t -> bool
val remove : t -> Tuple.t -> unit
val iter : (Tuple.t -> Value.t -> unit) -> t -> unit
val fold : (Tuple.t -> Value.t -> 'a -> 'a) -> t -> 'a -> 'a
val keys : t -> Tuple.t list

val to_alist : t -> (Tuple.t * Value.t) list
(** Sorted by key — deterministic across runs. *)

val of_alist : Schema.t -> (Tuple.t * Value.t) list -> t
val of_rows : Schema.t -> Value.t list list -> t
(** Each row is [dims @ [measure]]. *)

val copy : t -> t
val with_schema : Schema.t -> t -> t
(** Same data under another schema (arity must match). *)

val map_measure : (Value.t -> Value.t) -> t -> t
(** Pointwise transform; [Null] results are dropped (partiality). *)

val mapi : (Tuple.t -> Value.t -> (Tuple.t * Value.t) option) -> Schema.t -> t -> t
(** General tuple-level rewrite into a cube with the given schema;
    [None] drops the tuple. @raise Functionality_violation if two source
    tuples collide on the same target key with different measures. *)

val filter : (Tuple.t -> Value.t -> bool) -> t -> t

val merge_join :
  (Value.t -> Value.t -> Value.t) -> Schema.t -> t -> t -> t
(** Natural join on identical dimension tuples, combining the measures —
    the paper's vectorial-operator semantics (result defined only where
    both operands are). *)

val merge_outer :
  (Value.t option -> Value.t option -> Value.t) -> Schema.t -> t -> t -> t
(** Full-outer variant: the combiner runs on the union of the key sets,
    receiving [None] for the missing side — the paper's default-value
    version of vectorial operators. *)

val equal_data : ?eps:float -> t -> t -> bool
(** Same key set and measures equal up to [eps] (default 1e-9) for
    numeric measures, [Value.equal] otherwise.  Schema names are ignored:
    this is the instance-equality used to verify chase vs interpreter vs
    target engines. *)

val diff_data : ?eps:float -> t -> t -> string list
(** Human-readable discrepancies (missing / extra / differing keys),
    capped at 20 entries; empty iff [equal_data]. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
