(** Named cube store with the elementary/derived partition.

    The paper partitions cube identifiers into {e elementary} (base data
    fed to the system) and {e derived} (defined by statements) — the
    base-table/view split.  A registry is the "storage system" cubes are
    read from and written back to by every target engine. *)

type kind = Elementary | Derived

val kind_to_string : kind -> string

type t

val create : unit -> t
val add : t -> kind -> Cube.t -> unit
(** Registers (or replaces) a cube under its schema name. *)

val declare : t -> kind -> Schema.t -> unit
(** Registers an empty cube for the schema. *)

val find : t -> string -> Cube.t option
val find_exn : t -> string -> Cube.t
val kind_of : t -> string -> kind option
val mem : t -> string -> bool
val remove : t -> string -> unit
val names : t -> string list  (** Sorted. *)

val elementary_names : t -> string list
val derived_names : t -> string list
val schemas : t -> Schema.t list
val copy : t -> t
(** Deep copy: cubes are copied too. *)

val restrict_elementary : t -> t
(** A copy containing only the elementary cubes — the source instance
    [I] of the data exchange problem. *)

val equal_data : ?eps:float -> t -> t -> bool
(** Same cube names, kinds ignored, with [Cube.equal_data] contents. *)

val pp : Format.formatter -> t -> unit
