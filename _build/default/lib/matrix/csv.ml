let escape_field s =
  let needs_quote =
    String.exists (fun c -> c = ',' || c = '"' || c = '\n' || c = '\r') s
  in
  if not needs_quote then s
  else
    let buf = Buffer.create (String.length s + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buf "\"\"" else Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"';
    Buffer.contents buf

let cube_to_buffer buf c =
  let schema = Cube.schema c in
  let header =
    Schema.dim_names schema @ [ schema.Schema.measure_name ]
  in
  Buffer.add_string buf (String.concat "," (List.map escape_field header));
  Buffer.add_char buf '\n';
  List.iter
    (fun (k, v) ->
      let cells = List.map Value.to_string (Tuple.to_list k @ [ v ]) in
      Buffer.add_string buf (String.concat "," (List.map escape_field cells));
      Buffer.add_char buf '\n')
    (Cube.to_alist c)

let cube_to_string c =
  let buf = Buffer.create 1024 in
  cube_to_buffer buf c;
  Buffer.contents buf

let cube_to_channel oc c = output_string oc (cube_to_string c)

(* A small state-machine parser handling RFC 4180 quoting. *)
let parse_rows s =
  let rows = ref [] and row = ref [] and field = Buffer.create 32 in
  let flush_field () =
    row := Buffer.contents field :: !row;
    Buffer.clear field
  in
  let flush_row () =
    flush_field ();
    (match List.rev !row with
    | [ "" ] -> () (* skip blank lines *)
    | r -> rows := r :: !rows);
    row := []
  in
  let n = String.length s in
  let rec plain i =
    if i >= n then (if Buffer.length field > 0 || !row <> [] then flush_row ())
    else
      match s.[i] with
      | ',' ->
          flush_field ();
          plain (i + 1)
      | '\n' ->
          flush_row ();
          plain (i + 1)
      | '\r' -> plain (i + 1)
      | '"' when Buffer.length field = 0 -> quoted (i + 1)
      | c ->
          Buffer.add_char field c;
          plain (i + 1)
  and quoted i =
    if i >= n then flush_row ()
    else
      match s.[i] with
      | '"' when i + 1 < n && s.[i + 1] = '"' ->
          Buffer.add_char field '"';
          quoted (i + 2)
      | '"' -> plain (i + 1)
      | c ->
          Buffer.add_char field c;
          quoted (i + 1)
  in
  plain 0;
  List.rev !rows

let cube_of_string schema s =
  match parse_rows s with
  | [] -> Error "empty CSV"
  | header :: rows ->
      let expected =
        Schema.dim_names schema @ [ schema.Schema.measure_name ]
      in
      if header <> expected then
        Error
          (Printf.sprintf "header mismatch: expected %s, got %s"
             (String.concat "," expected)
             (String.concat "," header))
      else
        let c = Cube.create schema in
        let err = ref None in
        List.iteri
          (fun lineno cells ->
            if !err = None then
              let vals = List.map Value.of_string_guess cells in
              if List.length vals <> Schema.arity schema + 1 then
                err :=
                  Some (Printf.sprintf "line %d: wrong arity" (lineno + 2))
              else
                let arr = Array.of_list vals in
                let key = Tuple.of_array (Array.sub arr 0 (Schema.arity schema)) in
                if not (Schema.compatible_tuple schema key) then
                  err :=
                    Some
                      (Printf.sprintf "line %d: tuple %s out of domain"
                         (lineno + 2) (Tuple.to_string key))
                else Cube.set c key arr.(Schema.arity schema))
          rows;
        (match !err with Some e -> Error e | None -> Ok c)
