let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '&' -> Buffer.add_string buf "&amp;"
      | '"' -> Buffer.add_string buf "&quot;"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let time_period p =
  let y = Calendar.Period.year_of p and sub = Calendar.Period.sub_of p in
  match Calendar.Period.freq p with
  | Calendar.Year -> Printf.sprintf "%04d" y
  | Calendar.Semester -> Printf.sprintf "%04d-S%d" y sub
  | Calendar.Quarter -> Printf.sprintf "%04d-Q%d" y sub
  | Calendar.Month -> Printf.sprintf "%04d-%02d" y sub
  | Calendar.Week -> Printf.sprintf "%04d-W%02d" y sub
  | Calendar.Day -> Calendar.Date.to_string (Calendar.Period.start_date p)

let header kind =
  Printf.sprintf
    "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n<message:%s>\n" kind

let footer kind = Printf.sprintf "</message:%s>\n" kind

let split_dims schema =
  Array.to_list schema.Schema.dims
  |> List.partition (fun d -> not (Domain.is_temporal d.Schema.dim_domain))

let dsd_of_schema ?(agency = "EXLENGINE") schema =
  let categorical, temporal = split_dims schema in
  let buf = Buffer.create 512 in
  Buffer.add_string buf (header "Structure");
  Buffer.add_string buf
    (Printf.sprintf
       "  <structure:DataStructure id=\"DSD_%s\" agencyID=\"%s\" version=\"1.0\">\n"
       (escape schema.Schema.name) (escape agency));
  Buffer.add_string buf "    <structure:DimensionList>\n";
  List.iteri
    (fun i d ->
      Buffer.add_string buf
        (Printf.sprintf
           "      <structure:Dimension id=\"%s\" position=\"%d\" type=\"%s\"/>\n"
           (escape (String.uppercase_ascii d.Schema.dim_name))
           (i + 1)
           (escape (Domain.to_string d.Schema.dim_domain))))
    categorical;
  List.iter
    (fun d ->
      Buffer.add_string buf
        (Printf.sprintf
           "      <structure:TimeDimension id=\"%s\" position=\"%d\"/>\n"
           (escape (String.uppercase_ascii d.Schema.dim_name))
           (List.length categorical + 1)))
    temporal;
  Buffer.add_string buf "    </structure:DimensionList>\n";
  Buffer.add_string buf "    <structure:MeasureList>\n";
  Buffer.add_string buf
    (Printf.sprintf
       "      <structure:PrimaryMeasure id=\"%s\" type=\"%s\"/>\n"
       (escape (String.uppercase_ascii schema.Schema.measure_name))
       (escape (Domain.to_string schema.Schema.measure_domain)));
  Buffer.add_string buf "    </structure:MeasureList>\n";
  Buffer.add_string buf "  </structure:DataStructure>\n";
  Buffer.add_string buf (footer "Structure");
  Buffer.contents buf

let obs_time = function
  | Value.Period p -> time_period p
  | Value.Date d -> Calendar.Date.to_string d
  | v -> Value.to_string v

let generic_data_of_cube ?(agency = "EXLENGINE") cube =
  let schema = Cube.schema cube in
  let n = Schema.arity schema in
  let temporal_idx =
    let rec find i =
      if i >= n then None
      else if Domain.is_temporal schema.Schema.dims.(i).Schema.dim_domain then
        Some i
      else find (i + 1)
    in
    find 0
  in
  let key_idxs =
    List.filter (fun i -> Some i <> temporal_idx) (List.init n Fun.id)
  in
  (* Group tuples into series by the non-temporal key. *)
  let series : (Tuple.t * Value.t) list Tuple.Table.t = Tuple.Table.create 32 in
  Cube.iter
    (fun k v ->
      let skey = Tuple.project k (Array.of_list key_idxs) in
      let prev = Option.value ~default:[] (Tuple.Table.find_opt series skey) in
      Tuple.Table.replace series skey ((k, v) :: prev))
    cube;
  let sorted_series =
    Tuple.Table.fold (fun k v acc -> (k, v) :: acc) series []
    |> List.sort (fun (a, _) (b, _) -> Tuple.compare a b)
  in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (header "GenericData");
  Buffer.add_string buf
    (Printf.sprintf
       "  <message:Header><message:ID>%s</message:ID><message:Sender id=\"%s\"/></message:Header>\n"
       (escape schema.Schema.name) (escape agency));
  Buffer.add_string buf
    (Printf.sprintf "  <message:DataSet structureRef=\"DSD_%s\">\n"
       (escape schema.Schema.name));
  List.iter
    (fun (skey, points) ->
      Buffer.add_string buf "    <generic:Series>\n";
      if key_idxs <> [] then begin
        Buffer.add_string buf "      <generic:SeriesKey>\n";
        List.iteri
          (fun pos idx ->
            Buffer.add_string buf
              (Printf.sprintf
                 "        <generic:Value id=\"%s\" value=\"%s\"/>\n"
                 (escape
                    (String.uppercase_ascii
                       schema.Schema.dims.(idx).Schema.dim_name))
                 (escape (Value.to_string (Tuple.get skey pos)))))
          key_idxs;
        Buffer.add_string buf "      </generic:SeriesKey>\n"
      end;
      let sorted_points =
        List.sort (fun (a, _) (b, _) -> Tuple.compare a b) points
      in
      List.iter
        (fun (k, v) ->
          match temporal_idx with
          | Some t ->
              Buffer.add_string buf
                (Printf.sprintf
                   "      <generic:Obs><generic:ObsDimension value=\"%s\"/><generic:ObsValue value=\"%s\"/></generic:Obs>\n"
                   (escape (obs_time (Tuple.get k t)))
                   (escape (Value.to_string v)))
          | None ->
              Buffer.add_string buf
                (Printf.sprintf
                   "      <generic:Obs><generic:ObsValue value=\"%s\"/></generic:Obs>\n"
                   (escape (Value.to_string v))))
        sorted_points;
      Buffer.add_string buf "    </generic:Series>\n")
    sorted_series;
  Buffer.add_string buf "  </message:DataSet>\n";
  Buffer.add_string buf (footer "GenericData");
  Buffer.contents buf

let dataflow_of_registry ?(agency = "EXLENGINE") registry =
  let buf = Buffer.create 512 in
  Buffer.add_string buf (header "Structure");
  List.iter
    (fun name ->
      let kind =
        match Registry.kind_of registry name with
        | Some k -> Registry.kind_to_string k
        | None -> "unknown"
      in
      Buffer.add_string buf
        (Printf.sprintf
           "  <structure:Dataflow id=\"%s\" agencyID=\"%s\" class=\"%s\" structureRef=\"DSD_%s\"/>\n"
           (escape name) (escape agency) (escape kind) (escape name)))
    (Registry.names registry);
  Buffer.add_string buf (footer "Structure");
  Buffer.contents buf
