(** Atomic values carried by cube dimensions and measures.

    Measures in the paper are "all numeric"; dimension values additionally
    range over strings (classification codes), dates and periods.  [Null]
    represents a missing value: cubes are partial functions, and some
    operators (e.g. division by zero) leave holes in the result. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | Date of Calendar.Date.t
  | Period of Calendar.Period.t

val compare : t -> t -> int
(** Total order across constructors (constructor rank first). Numeric
    values compare cross-type by magnitude so that [Int 2 = Float 2.]. *)

val equal : t -> t -> bool
val hash : t -> int
val is_null : t -> bool

val to_float : t -> float option
(** Numeric coercion: [Int], [Float] and [Bool] (0/1) convert; other
    constructors yield [None]. *)

val to_float_exn : t -> float
(** @raise Invalid_argument when not numeric. *)

val of_float : float -> t
(** [Float f], except NaN which becomes [Null] (missing result). *)

val to_int : t -> int option
val to_string : t -> string
val of_string_guess : string -> t
(** Best-effort parse used by CSV loading: int, float, period, date,
    bool, else string; [""] is [Null]. *)

val pp : Format.formatter -> t -> unit

val type_name : t -> string
(** Constructor name for error messages: ["int"], ["float"], ... *)
