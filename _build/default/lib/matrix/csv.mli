(** Minimal CSV import/export for cubes.

    Collection in the paper's statistical production flow feeds raw data
    "in a number of formats"; CSV is the lowest common denominator used
    by the examples. Header row carries dimension names then the measure
    name. Quoting follows RFC 4180 (double quotes, doubled to escape). *)

val cube_to_string : Cube.t -> string
val cube_to_channel : out_channel -> Cube.t -> unit

val cube_of_string : Schema.t -> string -> (Cube.t, string) result
(** Parses rows against the schema: each cell through
    [Value.of_string_guess], then checked for domain membership.
    The header row is validated against the schema's names. *)

val parse_rows : string -> string list list
(** Raw CSV parsing (exposed for tests). *)

val escape_field : string -> string
