lib/matrix/sdmx.mli: Calendar Cube Registry Schema
