lib/matrix/domain.mli: Calendar Format Value
