lib/matrix/series.ml: Array Calendar Cube Domain Format List Printf Schema Tuple Value
