lib/matrix/schema.mli: Domain Format Tuple
