lib/matrix/store.ml: Array Csv Cube Domain Filename Fun List Option Printf Registry Schema String Sys
