lib/matrix/calendar.mli: Format
