lib/matrix/registry.ml: Cube Format Hashtbl List Option Printf Schema String
