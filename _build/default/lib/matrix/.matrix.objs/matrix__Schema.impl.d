lib/matrix/schema.ml: Array Domain Format Fun Hashtbl List Option Printf String Tuple
