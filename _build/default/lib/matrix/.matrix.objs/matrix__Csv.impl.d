lib/matrix/csv.ml: Array Buffer Cube List Printf Schema String Tuple Value
