lib/matrix/store.mli: Registry Schema
