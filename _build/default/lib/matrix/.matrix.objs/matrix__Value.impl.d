lib/matrix/value.ml: Bool Calendar Float Format Hashtbl Int Printf String
