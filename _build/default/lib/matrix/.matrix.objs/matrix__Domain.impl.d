lib/matrix/domain.ml: Calendar Format String Value
