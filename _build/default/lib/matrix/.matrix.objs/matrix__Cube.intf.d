lib/matrix/cube.mli: Format Schema Tuple Value
