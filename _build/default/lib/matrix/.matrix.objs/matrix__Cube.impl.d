lib/matrix/cube.ml: Array Float Format List Printf Schema Tuple Value
