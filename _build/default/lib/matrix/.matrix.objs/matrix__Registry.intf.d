lib/matrix/registry.mli: Cube Format Schema
