lib/matrix/calendar.ml: Format Int Option Printf String
