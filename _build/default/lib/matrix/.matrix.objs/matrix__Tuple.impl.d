lib/matrix/tuple.ml: Array Format Hashtbl Int List Map Set String Value
