lib/matrix/value.mli: Calendar Format
