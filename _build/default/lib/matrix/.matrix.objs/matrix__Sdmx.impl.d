lib/matrix/sdmx.ml: Array Buffer Calendar Cube Domain Fun List Option Printf Registry Schema String Tuple Value
