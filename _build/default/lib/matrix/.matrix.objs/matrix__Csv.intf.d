lib/matrix/csv.mli: Cube Schema
