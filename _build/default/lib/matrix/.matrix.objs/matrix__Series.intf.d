lib/matrix/series.mli: Calendar Cube Format Schema
