lib/matrix/tuple.mli: Format Hashtbl Map Set Value
