(** Cube schemas: a name, named typed dimensions, and one numeric measure.

    Corresponds to the paper's cube declaration
    [F(D1, ..., Dn) : X1 x ... x Xn -> Y].  Dimension names are
    significant: vectorial operators require operands with the same
    dimensions (same names and compatible domains). *)

type dimension = { dim_name : string; dim_domain : Domain.t }

type t = private {
  name : string;
  dims : dimension array;
  measure_name : string;
  measure_domain : Domain.t;
}

val make :
  ?measure_name:string ->
  ?measure_domain:Domain.t ->
  name:string ->
  dims:(string * Domain.t) list ->
  unit ->
  t
(** Default measure is ["value"] of domain [Float].
    @raise Invalid_argument on duplicate dimension names or a measure
    name clashing with a dimension. *)

val arity : t -> int
val dim_names : t -> string list
val dim_index : t -> string -> int option
val dim_index_exn : t -> string -> int
val dim_domain : t -> string -> Domain.t option
val has_dim : t -> string -> bool

val time_dims : t -> string list
(** Dimensions with a temporal domain, in declaration order. *)

val is_time_series : t -> bool
(** Exactly one dimension, and it is temporal (paper's definition). *)

val rename : t -> string -> t
val with_dims : t -> (string * Domain.t) list -> t

val same_dims : t -> t -> bool
(** Same dimension names with unifiable domains, in the same order
    (order is a normalization choice; EXL programs reference dimensions
    by name). *)

val compatible_tuple : t -> Tuple.t -> bool
(** Arity matches and each component is in its dimension's domain. *)

val equal : t -> t -> bool
val to_string : t -> string
val pp : Format.formatter -> t -> unit
