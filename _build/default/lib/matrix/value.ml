type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | Date of Calendar.Date.t
  | Period of Calendar.Period.t

let rank = function
  | Null -> 0
  | Bool _ -> 1
  | Int _ -> 2
  | Float _ -> 2 (* ints and floats live in the same numeric order *)
  | String _ -> 3
  | Date _ -> 4
  | Period _ -> 5

let compare a b =
  match (a, b) with
  | Null, Null -> 0
  | Bool x, Bool y -> Bool.compare x y
  | Int x, Int y -> Int.compare x y
  | Float x, Float y -> Float.compare x y
  | Int x, Float y -> Float.compare (float_of_int x) y
  | Float x, Int y -> Float.compare x (float_of_int y)
  | String x, String y -> String.compare x y
  | Date x, Date y -> Calendar.Date.compare x y
  | Period x, Period y -> Calendar.Period.compare x y
  | ( (Null | Bool _ | Int _ | Float _ | String _ | Date _ | Period _),
      (Null | Bool _ | Int _ | Float _ | String _ | Date _ | Period _) ) ->
      Int.compare (rank a) (rank b)

let equal a b = compare a b = 0

let hash = function
  | Null -> 17
  | Bool b -> if b then 31 else 37
  | Int i -> Hashtbl.hash (float_of_int i)
  | Float f -> Hashtbl.hash f
  | String s -> Hashtbl.hash s
  | Date d -> Hashtbl.hash (0xDA7E, Calendar.Date.to_rata_die d)
  | Period p -> 0x9E12 lxor Calendar.Period.hash p

let is_null = function Null -> true | _ -> false

let to_float = function
  | Int i -> Some (float_of_int i)
  | Float f -> Some f
  | Bool b -> Some (if b then 1. else 0.)
  | Null | String _ | Date _ | Period _ -> None

let type_name = function
  | Null -> "null"
  | Bool _ -> "bool"
  | Int _ -> "int"
  | Float _ -> "float"
  | String _ -> "string"
  | Date _ -> "date"
  | Period _ -> "period"

let to_float_exn v =
  match to_float v with
  | Some f -> f
  | None ->
      invalid_arg ("Value.to_float_exn: non-numeric value of type " ^ type_name v)

let of_float f = if Float.is_nan f then Null else Float f

let to_int = function
  | Int i -> Some i
  | Float f when Float.is_integer f -> Some (int_of_float f)
  | Bool b -> Some (if b then 1 else 0)
  | Null | Float _ | String _ | Date _ | Period _ -> None

let to_string = function
  | Null -> ""
  | Bool b -> string_of_bool b
  | Int i -> string_of_int i
  | Float f ->
      if Float.is_integer f && Float.abs f < 1e15 then
        Printf.sprintf "%.0f" f
      else
        (* shortest representation that round-trips exactly *)
        let s = Printf.sprintf "%.15g" f in
        if float_of_string s = f then s else Printf.sprintf "%.17g" f
  | String s -> s
  | Date d -> Calendar.Date.to_string d
  | Period p -> Calendar.Period.to_string p

let of_string_guess s =
  if s = "" then Null
  else
    match int_of_string_opt s with
    | Some i -> Int i
    | None -> (
        match float_of_string_opt s with
        | Some f -> Float f
        | None -> (
            match Calendar.Date.of_string s with
            | Some d -> Date d
            | None -> (
                match bool_of_string_opt s with
                | Some b -> Bool b
                | None -> (
                    (* Periods like 2023Q1 but not plain years: a bare
                       integer already parsed as Int above. *)
                    match Calendar.Period.of_string s with
                    | Some p when Calendar.Period.freq p <> Calendar.Year ->
                        Period p
                    | _ -> String s))))

let pp ppf v = Format.pp_print_string ppf (to_string v)
