(** Dimension and measure domains (types).

    EXL is typed at the level of cube schemas: each dimension has a
    domain and the single measure is numeric (paper, Section 3).  Time
    dimensions may be constrained to a sampling frequency, which is what
    makes frequency-changing aggregations (statement (1) of the overview)
    type-checkable. *)

type t =
  | Bool
  | Int
  | Float
  | String
  | Date
  | Period of Calendar.frequency option
      (** [Period None] accepts any frequency. *)
  | Any

val equal : t -> t -> bool

val member : Value.t -> t -> bool
(** Domain membership; [Null] belongs to every domain (partiality),
    [Int] values belong to [Float] (numeric widening). *)

val is_numeric : t -> bool
val is_temporal : t -> bool
(** [Date] or [Period _]: the domains on which shift and frequency
    conversion are defined. *)

val union : t -> t -> t option
(** Least common domain of two, when comparable ([Int]/[Float] widen to
    [Float]; [Period Some f] and [Period None] join to [Period None]). *)

val to_string : t -> string
val of_string : string -> t option
(** Parses the surface syntax used in EXL cube declarations:
    ["int"], ["float"], ["string"], ["bool"], ["date"], ["period"],
    ["quarter"], ["month"], ["year"], ["week"], ["day"], ["semester"]. *)

val pp : Format.formatter -> t -> unit
