type dimension = { dim_name : string; dim_domain : Domain.t }

type t = {
  name : string;
  dims : dimension array;
  measure_name : string;
  measure_domain : Domain.t;
}

let make ?(measure_name = "value") ?(measure_domain = Domain.Float) ~name ~dims
    () =
  let seen = Hashtbl.create 8 in
  List.iter
    (fun (d, _) ->
      if Hashtbl.mem seen d then
        invalid_arg (Printf.sprintf "Schema.make: duplicate dimension %S in cube %s" d name);
      Hashtbl.add seen d ())
    dims;
  if Hashtbl.mem seen measure_name then
    invalid_arg
      (Printf.sprintf "Schema.make: measure %S clashes with a dimension of %s"
         measure_name name);
  {
    name;
    dims =
      Array.of_list
        (List.map (fun (dim_name, dim_domain) -> { dim_name; dim_domain }) dims);
    measure_name;
    measure_domain;
  }

let arity s = Array.length s.dims
let dim_names s = Array.to_list (Array.map (fun d -> d.dim_name) s.dims)

let dim_index s name =
  let rec loop i =
    if i >= Array.length s.dims then None
    else if s.dims.(i).dim_name = name then Some i
    else loop (i + 1)
  in
  loop 0

let dim_index_exn s name =
  match dim_index s name with
  | Some i -> i
  | None ->
      invalid_arg
        (Printf.sprintf "Schema.dim_index_exn: no dimension %S in cube %s" name
           s.name)

let dim_domain s name =
  Option.map (fun i -> s.dims.(i).dim_domain) (dim_index s name)

let has_dim s name = Option.is_some (dim_index s name)

let time_dims s =
  Array.to_list s.dims
  |> List.filter (fun d -> Domain.is_temporal d.dim_domain)
  |> List.map (fun d -> d.dim_name)

let is_time_series s =
  arity s = 1 && Domain.is_temporal s.dims.(0).dim_domain

let rename s name = { s with name }

let with_dims s dims =
  make ~measure_name:s.measure_name ~measure_domain:s.measure_domain
    ~name:s.name ~dims ()

let same_dims a b =
  Array.length a.dims = Array.length b.dims
  && Array.for_all2
       (fun da db ->
         da.dim_name = db.dim_name
         && Option.is_some (Domain.union da.dim_domain db.dim_domain))
       a.dims b.dims

let compatible_tuple s t =
  Tuple.arity t = arity s
  && Array.for_all
       (fun i -> Domain.member (Tuple.get t i) s.dims.(i).dim_domain)
       (Array.init (arity s) Fun.id)

let equal a b =
  a.name = b.name
  && Array.length a.dims = Array.length b.dims
  && Array.for_all2
       (fun da db ->
         da.dim_name = db.dim_name && Domain.equal da.dim_domain db.dim_domain)
       a.dims b.dims
  && a.measure_name = b.measure_name
  && Domain.equal a.measure_domain b.measure_domain

let to_string s =
  Printf.sprintf "%s(%s): %s" s.name
    (String.concat ", "
       (Array.to_list
          (Array.map
             (fun d ->
               Printf.sprintf "%s: %s" d.dim_name (Domain.to_string d.dim_domain))
             s.dims)))
    (Domain.to_string s.measure_domain)

let pp ppf s = Format.pp_print_string ppf (to_string s)
