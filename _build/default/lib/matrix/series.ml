type t = {
  schema : Schema.t;
  points : (Calendar.Period.t * float) array;
}

let period_of_value v =
  match v with
  | Value.Period p -> Some p
  | Value.Date d -> Some (Calendar.Period.day d)
  | Value.(Null | Bool _ | Int _ | Float _ | String _) -> None

let of_cube c =
  let schema = Cube.schema c in
  if Schema.arity schema <> 1 then
    invalid_arg
      (Printf.sprintf "Series.of_cube: %s has %d dimensions, expected 1"
         (Cube.name c) (Schema.arity schema));
  let points =
    Cube.fold
      (fun k v acc ->
        match (period_of_value (Tuple.get k 0), Value.to_float v) with
        | Some p, Some f -> (p, f) :: acc
        | None, _ ->
            invalid_arg
              (Printf.sprintf "Series.of_cube: %s has non-temporal key %s"
                 (Cube.name c) (Tuple.to_string k))
        | _, None ->
            invalid_arg
              (Printf.sprintf "Series.of_cube: %s has non-numeric measure at %s"
                 (Cube.name c) (Tuple.to_string k)))
      c []
    |> List.sort (fun (a, _) (b, _) -> Calendar.Period.compare a b)
    |> Array.of_list
  in
  { schema; points }

let to_cube s =
  let out = Cube.create s.schema in
  let temporal_value p =
    (* Preserve Date-typed dimensions: day periods map back to dates. *)
    match Schema.dim_domain s.schema (List.hd (Schema.dim_names s.schema)) with
    | Some Domain.Date -> Value.Date (Calendar.Period.start_date p)
    | _ -> Value.Period p
  in
  Array.iter
    (fun (p, f) ->
      Cube.set out (Tuple.of_list [ temporal_value p ]) (Value.of_float f))
    s.points;
  out

let length s = Array.length s.points
let periods s = Array.map fst s.points
let values s = Array.map snd s.points

let frequency s =
  if length s = 0 then None else Some (Calendar.Period.freq (fst s.points.(0)))

let is_contiguous s =
  let n = length s in
  let rec loop i =
    i >= n
    || Calendar.Period.equal
         (Calendar.Period.shift (fst s.points.(i - 1)) 1)
         (fst s.points.(i))
       && loop (i + 1)
  in
  n <= 1 || loop 1

let with_values s vals =
  if Array.length vals <> length s then
    invalid_arg "Series.with_values: length mismatch";
  { s with points = Array.mapi (fun i (p, _) -> (p, vals.(i))) s.points }

let map_values f s = with_values s (f (values s))

let make schema pts =
  let points =
    List.sort (fun (a, _) (b, _) -> Calendar.Period.compare a b) pts
    |> Array.of_list
  in
  { schema; points }

let pp ppf s =
  Format.fprintf ppf "@[<v2>series %s [%d points]" s.schema.Schema.name
    (length s);
  Array.iter
    (fun (p, v) ->
      Format.fprintf ppf "@,%s: %g" (Calendar.Period.to_string p) v)
    s.points;
  Format.fprintf ppf "@]"
