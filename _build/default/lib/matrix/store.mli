(** Directory-based persistence for cube registries.

    The paper's engines "share the data they act on" through a storage
    system; this is the simplest durable form of it: one CSV per cube
    plus a manifest recording schemas and the elementary/derived split,
    so a registry round-trips losslessly. *)

val save : dir:string -> Registry.t -> (unit, string) result
(** Creates [dir] if needed; writes [manifest] and one [<CUBE>.csv]
    per cube, replacing existing files. *)

val load : dir:string -> (Registry.t, string) result

val manifest_of_registry : Registry.t -> string
(** The manifest text (one line per cube:
    [name|kind|dim:domain,...|measure:domain]). *)

val registry_schemas_of_manifest :
  string -> ((Schema.t * Registry.kind) list, string) result
