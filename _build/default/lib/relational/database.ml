open Matrix

type t = (string, Table.t) Hashtbl.t

let create () = Hashtbl.create 32

let create_table t ~name ~columns =
  let table = Table.create ~name ~columns in
  Hashtbl.replace t name table;
  table

let add_table t table = Hashtbl.replace t (Table.name table) table
let find t name = Hashtbl.find_opt t name

let find_exn t name =
  match find t name with
  | Some table -> table
  | None -> invalid_arg ("Database.find_exn: no table " ^ name)

let mem t name = Hashtbl.mem t name

let names t =
  Hashtbl.fold (fun k _ acc -> k :: acc) t [] |> List.sort String.compare

let load_cube t cube = add_table t (Table.of_cube cube)

let of_registry reg =
  let t = create () in
  List.iter (fun n -> load_cube t (Registry.find_exn reg n)) (Registry.names reg);
  t

let to_registry t ~schemas ~elementary =
  let reg = Registry.create () in
  List.iter
    (fun schema ->
      let name = schema.Schema.name in
      let kind =
        if List.mem name elementary then Registry.Elementary
        else Registry.Derived
      in
      let cube =
        match find t name with
        | Some table -> Table.to_cube schema table
        | None -> Cube.create schema
      in
      Registry.add reg kind cube)
    schemas;
  reg

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun n ->
      let table = Hashtbl.find t n in
      Format.fprintf ppf "%s(%s): %d rows@," n
        (String.concat ", " (Table.columns table))
        (Table.row_count table))
    (names t);
  Format.fprintf ppf "@]"
