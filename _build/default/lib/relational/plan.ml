type t =
  | One_row
  | Scan of { table : string; alias : string }
  | Hash_join of {
      build : t;
      probe : t;
      build_keys : Sql_ast.expr list;
      probe_keys : Sql_ast.expr list;
    }
  | Full_outer_hash_join of {
      build : t;
      probe : t;
      build_keys : Sql_ast.expr list;
      probe_keys : Sql_ast.expr list;
    }
  | Filter of { input : t; equalities : (Sql_ast.expr * Sql_ast.expr) list }
  | Project of { input : t; exprs : (Sql_ast.expr * string) list }
  | Aggregate of {
      input : t;
      keys : (Sql_ast.expr * string) list;
      aggr : Stats.Aggregate.t;
      measure : Sql_ast.expr;
      measure_name : string;
    }
  | Table_fn_scan of { fn : string; params : float list; table : string }

let explain plan =
  let buf = Buffer.create 256 in
  let line depth s =
    Buffer.add_string buf (String.make (2 * depth) ' ');
    Buffer.add_string buf s;
    Buffer.add_char buf '\n'
  in
  let exprs es = String.concat ", " (List.map Sql_print.expr_to_string es) in
  let rec go depth = function
    | One_row -> line depth "ONE ROW"
    | Scan { table; alias } ->
        line depth
          (if table = alias then Printf.sprintf "SCAN %s" table
           else Printf.sprintf "SCAN %s AS %s" table alias)
    | Hash_join { build; probe; build_keys; probe_keys } ->
        line depth
          (Printf.sprintf "HASH JOIN [%s] = [%s]" (exprs build_keys)
             (exprs probe_keys));
        go (depth + 1) build;
        go (depth + 1) probe
    | Full_outer_hash_join { build; probe; build_keys; probe_keys } ->
        line depth
          (Printf.sprintf "FULL OUTER HASH JOIN [%s] = [%s]" (exprs build_keys)
             (exprs probe_keys));
        go (depth + 1) build;
        go (depth + 1) probe
    | Filter { input; equalities } ->
        line depth
          (Printf.sprintf "FILTER %s"
             (String.concat " AND "
                (List.map
                   (fun (a, b) ->
                     Printf.sprintf "%s = %s" (Sql_print.expr_to_string a)
                       (Sql_print.expr_to_string b))
                   equalities)));
        go (depth + 1) input
    | Project { input; exprs = ps } ->
        line depth
          (Printf.sprintf "PROJECT %s"
             (String.concat ", "
                (List.map
                   (fun (e, n) ->
                     Printf.sprintf "%s AS %s" (Sql_print.expr_to_string e) n)
                   ps)));
        go (depth + 1) input
    | Aggregate { input; keys; aggr; measure; measure_name } ->
        line depth
          (Printf.sprintf "AGGREGATE %s(%s) AS %s GROUP BY %s"
             (Stats.Aggregate.to_string aggr)
             (Sql_print.expr_to_string measure)
             measure_name
             (exprs (List.map fst keys)));
        go (depth + 1) input
    | Table_fn_scan { fn; params; table } ->
        line depth
          (Printf.sprintf "TABLE FUNCTION %s(%s%s)" fn table
             (if params = [] then ""
              else
                "; " ^ String.concat ", " (List.map (Printf.sprintf "%g") params)))
  in
  go 0 plan;
  Buffer.contents buf
