open Matrix

(** Execution of generated SQL against the in-memory database.

    The substitution for the paper's external DBMS target: the SQL our
    generator emits is not just text — the same AST is compiled to a
    physical {!Plan} and executed, so tgd → SQL translation is testable
    end to end. *)

type schema_lookup = string -> Schema.t option
(** Resolves a table name to its cube schema (needed for temporal
    domain information by tabular functions); usually
    [Mappings.Mapping.target_schema m]. *)

val plan_of_select :
  schema_lookup -> Sql_ast.select -> (Plan.t, string) result

val rows_of_select :
  Database.t -> schema_lookup -> Sql_ast.select -> (Value.t array list, string) result

val run_insert :
  Database.t -> schema_lookup -> Sql_ast.insert -> (int, string) result
(** Creates the target table when missing; returns the number of rows
    inserted. *)

val run_script :
  Database.t -> schema_lookup -> Sql_ast.insert list -> (int, string) result
(** Runs the INSERTs in order (the tgd total order); total row count. *)

val run_statements :
  Database.t -> schema_lookup -> Sql_ast.statement list -> (int, string) result
(** Runs a mixed script: CREATE VIEW registers a lazily evaluated
    select (scans of the view re-run it); INSERT materializes. *)

val run_mapping :
  ?views:[ `None | `Temporaries ] ->
  Database.t ->
  Mappings.Mapping.t ->
  (int, string) result
(** Generate the SQL script from the mapping and execute it; with
    [`Temporaries], auxiliary cubes become views and are never
    materialized. *)
