open Matrix

type expr =
  | Col of { alias : string; column : string }
  | Lit of Value.t
  | Binop of Ops.Binop.t * expr * expr
  | Neg of expr
  | Scalar_call of string * float list * expr
  | Dim_call of string * expr
  | Period_add of expr * int
  | Agg_call of Stats.Aggregate.t * expr
  | Coalesce of expr * expr

type from_clause =
  | Tables of (string * string) list
  | From_table_fn of { fn : string; params : float list; table : string }
  | Full_outer_join of {
      left : string * string;
      right : string * string;
      keys : string list;
    }

type select = {
  projections : (expr * string) list;
  from : from_clause;
  where : (expr * expr) list;
  group_by : expr list;
}

type insert = { table : string; columns : string list; select : select }

type statement =
  | Insert of insert
  | Create_view of { name : string; columns : string list; select : select }

let expr_aliases e =
  let seen = Hashtbl.create 4 in
  let out = ref [] in
  let rec go = function
    | Col { alias; _ } ->
        if not (Hashtbl.mem seen alias) then begin
          Hashtbl.add seen alias ();
          out := alias :: !out
        end
    | Lit _ -> ()
    | Binop (_, a, b) | Coalesce (a, b) ->
        go a;
        go b
    | Neg a | Scalar_call (_, _, a) | Dim_call (_, a) | Period_add (a, _)
    | Agg_call (_, a) ->
        go a
  in
  go e;
  List.rev !out

let rec expr_is_aggregate = function
  | Agg_call _ -> true
  | Col _ | Lit _ -> false
  | Binop (_, a, b) | Coalesce (a, b) ->
      expr_is_aggregate a || expr_is_aggregate b
  | Neg a | Scalar_call (_, _, a) | Dim_call (_, a) | Period_add (a, _) ->
      expr_is_aggregate a
