open Matrix

(** In-memory relational tables (bag semantics).

    Unlike {!Matrix.Cube}, a table does not enforce functionality — the
    DBMS substrate stores whatever the generated SQL inserts, and cube
    conversion applies the egd check at the boundary, like a production
    system would with a unique constraint. *)

type t

val create : name:string -> columns:string list -> t
val name : t -> string
val columns : t -> string list
val width : t -> int
val row_count : t -> int
val insert : t -> Value.t array -> unit
(** @raise Invalid_argument on width mismatch. *)

val rows : t -> Value.t array list
(** In insertion order. *)

val clear : t -> unit
val of_cube : Cube.t -> t
(** Columns are the dimension names followed by the measure name;
    rows in sorted key order. *)

val to_cube : Schema.t -> t -> Cube.t
(** @raise Cube.Functionality_violation when rows conflict. *)

val pp : Format.formatter -> t -> unit
