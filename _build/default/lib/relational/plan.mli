(** Physical query plans for the in-memory SQL engine.

    The executor compiles each generated INSERT ... SELECT into a tree
    of these operators: scans, hash joins on computed keys (covering
    joins like [G1.Q = G2.Q - 1] from fused tgds), residual filters,
    projections, sort-based grouping, and tabular-function scans. *)

type t =
  | One_row  (** a single zero-width row: FROM-less SELECT *)
  | Scan of { table : string; alias : string }
  | Hash_join of {
      build : t;
      probe : t;
      build_keys : Sql_ast.expr list;
      probe_keys : Sql_ast.expr list;
    }
      (** Output rows are build-row ++ probe-row; rows whose key
          evaluates to NULL never match (SQL join semantics, and the
          chase's undefined-term semantics). *)
  | Full_outer_hash_join of {
      build : t;
      probe : t;
      build_keys : Sql_ast.expr list;
      probe_keys : Sql_ast.expr list;
    }
      (** Like {!Hash_join} plus the unmatched rows of both sides, the
          missing side padded with NULLs. *)
  | Filter of { input : t; equalities : (Sql_ast.expr * Sql_ast.expr) list }
  | Project of { input : t; exprs : (Sql_ast.expr * string) list }
  | Aggregate of {
      input : t;
      keys : (Sql_ast.expr * string) list;
      aggr : Stats.Aggregate.t;
      measure : Sql_ast.expr;
      measure_name : string;
    }
      (** Input rows are sorted before bagging so order-sensitive
          aggregates (first/last) are deterministic and agree with the
          reference interpreter. *)
  | Table_fn_scan of { fn : string; params : float list; table : string }

val explain : t -> string
(** Indented operator tree, e.g. for documentation and plan tests. *)
