open Matrix

(** A named collection of tables — the DBMS target's storage. *)

type t

val create : unit -> t
val create_table : t -> name:string -> columns:string list -> Table.t
(** Creates (or replaces) an empty table. *)

val add_table : t -> Table.t -> unit
val find : t -> string -> Table.t option
val find_exn : t -> string -> Table.t
val mem : t -> string -> bool
val names : t -> string list  (** Sorted. *)

val of_registry : Registry.t -> t
(** Loads every cube of the registry as a table. *)

val load_cube : t -> Cube.t -> unit
val to_registry : t -> schemas:Schema.t list -> elementary:string list -> Registry.t
(** Reads the tables named by [schemas] back into cubes (applying the
    functionality check). *)

val pp : Format.formatter -> t -> unit
