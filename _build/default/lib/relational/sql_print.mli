(** SQL text rendering, in the paper's style:

    {v
    INSERT INTO RGDP(Q, R, P)
    SELECT C2.Q AS Q, C2.R AS R, C1.P * C2.G AS P
    FROM PQR C1, RGDPPC C2
    WHERE C1.Q = C2.Q AND C1.R = C2.R
    v} *)

val expr_to_string : Sql_ast.expr -> string
val select_to_string : Sql_ast.select -> string
val insert_to_string : Sql_ast.insert -> string
val statement_to_string : Sql_ast.statement -> string
val script_to_string : Sql_ast.insert list -> string
(** Statements separated by [;] — a full runnable script per program. *)

val statements_to_string : Sql_ast.statement list -> string
