lib/relational/database.ml: Cube Format Hashtbl List Matrix Registry Schema String Table
