lib/relational/plan.ml: Buffer List Printf Sql_ast Sql_print Stats String
