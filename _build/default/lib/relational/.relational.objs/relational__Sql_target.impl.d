lib/relational/sql_target.ml: Cube Database Executor Exl List Mappings Matrix Registry Result Schema Sql_gen Sql_print
