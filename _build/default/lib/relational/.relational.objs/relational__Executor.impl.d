lib/relational/executor.ml: Array Calendar Cube Database Hashtbl List Mappings Matrix Ops Option Plan Printf Schema Sql_ast Sql_gen Stats String Table Tuple Value
