lib/relational/sql_ast.mli: Matrix Ops Stats Value
