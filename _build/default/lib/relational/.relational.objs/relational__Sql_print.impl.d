lib/relational/sql_print.ml: Buffer Calendar List Matrix Ops Printf Sql_ast Stats String Value
