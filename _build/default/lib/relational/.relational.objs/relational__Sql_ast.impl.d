lib/relational/sql_ast.ml: Hashtbl List Matrix Ops Stats Value
