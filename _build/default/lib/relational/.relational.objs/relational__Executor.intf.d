lib/relational/executor.mli: Database Mappings Matrix Plan Schema Sql_ast Value
