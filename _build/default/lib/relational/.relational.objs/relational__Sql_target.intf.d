lib/relational/sql_target.mli: Exl Matrix Registry
