lib/relational/sql_parser.ml: Array Calendar List Matrix Ops Option Printf Sql_ast Stats String Value
