lib/relational/plan.mli: Sql_ast Stats
