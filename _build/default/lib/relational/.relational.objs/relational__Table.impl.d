lib/relational/table.ml: Array Cube Format List Matrix Printf Schema String Tuple Value
