lib/relational/table.mli: Cube Format Matrix Schema Value
