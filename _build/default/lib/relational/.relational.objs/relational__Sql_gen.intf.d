lib/relational/sql_gen.mli: Mappings Sql_ast
