lib/relational/database.mli: Cube Format Matrix Registry Schema Table
