lib/relational/sql_gen.ml: Array Domain Exl List Mappings Matrix Printf Schema Sql_ast String Value
