lib/relational/sql_print.mli: Sql_ast
