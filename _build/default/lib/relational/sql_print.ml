open Matrix

let ident s = String.uppercase_ascii s

let lit_to_string = function
  | Value.String s -> "'" ^ s ^ "'"
  | Value.Date d -> "DATE '" ^ Calendar.Date.to_string d ^ "'"
  | Value.Period p -> "PERIOD '" ^ Calendar.Period.to_string p ^ "'"
  | Value.Null -> "NULL"
  | (Value.Bool _ | Value.Int _ | Value.Float _) as v -> Value.to_string v

let prec = function
  | Sql_ast.Binop (op, _, _) -> Ops.Binop.precedence op
  | Sql_ast.Neg _ -> 4
  | Sql_ast.Period_add _ -> 1
  | Sql_ast.Col _ | Sql_ast.Lit _ | Sql_ast.Scalar_call _ | Sql_ast.Dim_call _
  | Sql_ast.Agg_call _ | Sql_ast.Coalesce _ ->
      10

let rec to_str ctx e =
  let s =
    match e with
    | Sql_ast.Col { alias; column } ->
        if alias = "" then ident column
        else Printf.sprintf "%s.%s" alias (ident column)
    | Sql_ast.Lit v -> lit_to_string v
    | Sql_ast.Binop (op, a, b) ->
        let p = Ops.Binop.precedence op in
        let lc, rc =
          if Ops.Binop.is_right_assoc op then (p + 1, p) else (p, p + 1)
        in
        Printf.sprintf "%s %s %s" (to_str lc a) (Ops.Binop.to_string op)
          (to_str rc b)
    | Sql_ast.Neg a -> "-" ^ to_str 4 a
    | Sql_ast.Scalar_call (fn, [], a) ->
        Printf.sprintf "%s(%s)" (ident fn) (to_str 0 a)
    | Sql_ast.Scalar_call (fn, params, a) ->
        Printf.sprintf "%s(%s, %s)" (ident fn)
          (String.concat ", " (List.map (Printf.sprintf "%g") params))
          (to_str 0 a)
    | Sql_ast.Dim_call (fn, a) -> Printf.sprintf "%s(%s)" (ident fn) (to_str 0 a)
    | Sql_ast.Period_add (a, k) ->
        if k >= 0 then Printf.sprintf "%s + %d" (to_str 2 a) k
        else Printf.sprintf "%s - %d" (to_str 2 a) (-k)
    | Sql_ast.Agg_call (aggr, a) ->
        Printf.sprintf "%s(%s)"
          (ident (Stats.Aggregate.to_string aggr))
          (to_str 0 a)
    | Sql_ast.Coalesce (a, b) ->
        Printf.sprintf "COALESCE(%s, %s)" (to_str 0 a) (to_str 0 b)
  in
  if prec e < ctx then "(" ^ s ^ ")" else s

let expr_to_string e = to_str 0 e

let select_to_string (s : Sql_ast.select) =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "SELECT ";
  Buffer.add_string buf
    (String.concat ", "
       (List.map
          (fun (e, name) ->
            let rendered = expr_to_string e in
            if rendered = ident name then rendered
            else Printf.sprintf "%s AS %s" rendered (ident name))
          s.Sql_ast.projections));
  (match s.Sql_ast.from with
  | Sql_ast.Tables [] -> ()
  | Sql_ast.Tables tables ->
      Buffer.add_string buf "\nFROM ";
      Buffer.add_string buf
        (String.concat ", "
           (List.map
              (fun (t, a) ->
                if t = a then ident t else Printf.sprintf "%s %s" (ident t) a)
              tables))
  | Sql_ast.Full_outer_join { left = lt, la; right = rt, ra; keys } ->
      Buffer.add_string buf "\nFROM ";
      Buffer.add_string buf
        (Printf.sprintf "%s %s FULL OUTER JOIN %s %s ON %s" (ident lt) la
           (ident rt) ra
           (String.concat " AND "
              (List.map
                 (fun k ->
                   Printf.sprintf "%s.%s = %s.%s" la (ident k) ra (ident k))
                 keys)))
  | Sql_ast.From_table_fn { fn; params; table } ->
      Buffer.add_string buf "\nFROM ";
      if params = [] then
        Buffer.add_string buf (Printf.sprintf "%s(%s)" (ident fn) (ident table))
      else
        Buffer.add_string buf
          (Printf.sprintf "%s(%s, %s)" (ident fn) (ident table)
             (String.concat ", " (List.map (Printf.sprintf "%g") params))));
  if s.Sql_ast.where <> [] then begin
    Buffer.add_string buf "\nWHERE ";
    Buffer.add_string buf
      (String.concat " AND "
         (List.map
            (fun (a, b) ->
              Printf.sprintf "%s = %s" (expr_to_string a) (expr_to_string b))
            s.Sql_ast.where))
  end;
  if s.Sql_ast.group_by <> [] then begin
    Buffer.add_string buf "\nGROUP BY ";
    Buffer.add_string buf
      (String.concat ", " (List.map expr_to_string s.Sql_ast.group_by))
  end;
  Buffer.contents buf

let insert_to_string (i : Sql_ast.insert) =
  Printf.sprintf "INSERT INTO %s(%s)\n%s" (ident i.Sql_ast.table)
    (String.concat ", " (List.map ident i.Sql_ast.columns))
    (select_to_string i.Sql_ast.select)

let script_to_string inserts =
  String.concat ";\n\n" (List.map insert_to_string inserts) ^ ";\n"

let statement_to_string = function
  | Sql_ast.Insert i -> insert_to_string i
  | Sql_ast.Create_view { name; columns; select } ->
      Printf.sprintf "CREATE VIEW %s(%s) AS\n%s" (ident name)
        (String.concat ", " (List.map ident columns))
        (select_to_string select)

let statements_to_string statements =
  String.concat ";\n\n" (List.map statement_to_string statements) ^ ";\n"
