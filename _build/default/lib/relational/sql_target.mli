open Matrix

(** The DBMS target system, end to end: EXL program → mapping → SQL →
    executed against the in-memory engine → cubes. *)

val run_program :
  ?fused:bool ->
  ?views:[ `None | `Temporaries ] ->
  Exl.Typecheck.checked ->
  Registry.t ->
  (Registry.t, Exl.Errors.t) result
(** Translate and execute the program on the SQL engine, loading the
    elementary cubes from [registry].  With [fused] (default [false])
    the mapping is fusion-simplified first, so no intermediate tables
    are materialized for normalizer temporaries; with
    [views:`Temporaries] they become CREATE VIEW instead (the paper's
    Section 6 reformulation). *)

val script_of_program :
  ?fused:bool ->
  ?views:[ `None | `Temporaries ] ->
  Exl.Typecheck.checked ->
  (string, Exl.Errors.t) result
(** The SQL text that [run_program] executes (what EXLEngine would ship
    to an external DBMS). *)
