(** Tgd → SQL translation (paper, Section 5.1).

    Tuple-level tgds become INSERT ... SELECT with joins ("the
    conjunction of atoms in the lhs is turned into a join of the
    corresponding relations, with the equality conditions generated out
    of the repeated variables"); aggregation tgds get GROUP BY; table
    function tgds select from the tabular UDF. *)

val insert_of_tgd :
  Mappings.Mapping.t -> Mappings.Tgd.t -> (Sql_ast.insert, string) result

val script_of_mapping :
  Mappings.Mapping.t -> (Sql_ast.insert list, string) result
(** One INSERT per statement tgd, in stratification order. *)

val statements_of_mapping :
  ?views:[ `None | `Temporaries ] ->
  Mappings.Mapping.t ->
  (Sql_ast.statement list, string) result
(** Like [script_of_mapping], but with [`Temporaries] the normalizer's
    auxiliary cubes become CREATE VIEW instead of materialized INSERTs —
    the paper's Section 6 observation that "it is not necessary that all
    the intermediate steps are stored back into the system". *)

val ddl_of_mapping : Mappings.Mapping.t -> string
(** CREATE TABLE statements for all target relations (documentation /
    external-DBMS deployment). *)
