(** Parser for the generated SQL dialect.

    Covers exactly what {!Sql_print} emits — INSERT ... SELECT with
    comma joins and WHERE equalities, GROUP BY, tabular functions,
    FULL OUTER JOIN, COALESCE, CREATE VIEW — so every generated script
    round-trips ([parse (print s) = s], property-tested).  This is what
    lets EXLEngine treat SQL artifacts as data: scripts can be stored in
    the metadata catalog as text and reloaded for execution. *)

val parse_script : string -> (Sql_ast.statement list, string) result
(** Parses a [;]-separated script. *)

val parse_statement : string -> (Sql_ast.statement, string) result
val parse_expr : string -> (Sql_ast.expr, string) result
