open Matrix

let mapping_of ?(fused = false) checked =
  Result.map
    (fun (g : Mappings.Generate.generated) ->
      let m = g.Mappings.Generate.mapping in
      if fused then Mappings.Fuse.mapping m else m)
    (Mappings.Generate.of_checked checked)

let run_program ?fused ?views checked registry =
  Result.bind (mapping_of ?fused checked) (fun mapping ->
      let db = Database.create () in
      List.iter
        (fun schema ->
          let cube =
            match Registry.find registry schema.Schema.name with
            | Some c -> Cube.with_schema schema c
            | None -> Cube.create schema
          in
          Database.load_cube db cube)
        mapping.Mappings.Mapping.source;
      match Executor.run_mapping ?views db mapping with
      | Error msg -> Error (Exl.Errors.make ("SQL target: " ^ msg))
      | Ok _rows ->
          Exl.Errors.protect (fun () ->
              let elementary =
                List.map
                  (fun s -> s.Schema.name)
                  mapping.Mappings.Mapping.source
              in
              Database.to_registry db ~schemas:mapping.Mappings.Mapping.target
                ~elementary))

let script_of_program ?fused ?(views = `None) checked =
  Result.bind (mapping_of ?fused checked) (fun mapping ->
      match Sql_gen.statements_of_mapping ~views mapping with
      | Error msg -> Error (Exl.Errors.make ("SQL generation: " ^ msg))
      | Ok statements -> Ok (Sql_print.statements_to_string statements))
