open Matrix
module Tgd = Mappings.Tgd
module Term = Mappings.Term

exception Gen_error of string

let fail fmt = Printf.ksprintf (fun m -> raise (Gen_error m)) fmt

let columns_of_schema schema =
  Schema.dim_names schema @ [ schema.Schema.measure_name ]

(* Translate a term under a variable -> column-expression binding. *)
let rec expr_of_term binding t =
  match t with
  | Term.Var v -> (
      match List.assoc_opt v binding with
      | Some e -> e
      | None -> fail "variable %s is not bound by any atom" v)
  | Term.Const c -> Sql_ast.Lit c
  | Term.Shifted (t, k) -> Sql_ast.Period_add (expr_of_term binding t, k)
  | Term.Dim_fn (fn, t) -> Sql_ast.Dim_call (fn, expr_of_term binding t)
  | Term.Scalar_fn (fn, params, t) ->
      Sql_ast.Scalar_call (fn, params, expr_of_term binding t)
  | Term.Binapp (op, a, b) ->
      Sql_ast.Binop (op, expr_of_term binding a, expr_of_term binding b)
  | Term.Neg t -> Sql_ast.Neg (expr_of_term binding t)
  | Term.Coalesce (a, b) ->
      Sql_ast.Coalesce (expr_of_term binding a, expr_of_term binding b)

let tuple_level_insert mapping lhs (rhs : Tgd.atom) =
  let target_schema = Mappings.Mapping.target_schema_exn mapping rhs.Tgd.rel in
  let aliased =
    List.mapi (fun i atom -> (Printf.sprintf "C%d" (i + 1), atom)) lhs
  in
  (* Pass 1: bind each variable to the first column where it occurs as a
     plain variable. *)
  let binding = ref [] in
  List.iter
    (fun (alias, (atom : Tgd.atom)) ->
      let schema = Mappings.Mapping.target_schema_exn mapping atom.Tgd.rel in
      List.iteri
        (fun i term ->
          match term with
          | Term.Var v when not (List.mem_assoc v !binding) ->
              let column = List.nth (columns_of_schema schema) i in
              binding := (v, Sql_ast.Col { alias; column }) :: !binding
          | _ -> ())
        atom.Tgd.args)
    aliased;
  (* Pass 2: every other occurrence becomes a WHERE equality. *)
  let where = ref [] in
  List.iter
    (fun (alias, (atom : Tgd.atom)) ->
      let schema = Mappings.Mapping.target_schema_exn mapping atom.Tgd.rel in
      List.iteri
        (fun i term ->
          let column = List.nth (columns_of_schema schema) i in
          let here = Sql_ast.Col { alias; column } in
          match term with
          | Term.Var v ->
              let bound = List.assoc v !binding in
              if bound <> here then where := (here, bound) :: !where
          | _ -> where := (here, expr_of_term !binding term) :: !where)
        atom.Tgd.args)
    aliased;
  let columns = columns_of_schema target_schema in
  let projections =
    List.map2
      (fun term column -> (expr_of_term !binding term, column))
      rhs.Tgd.args columns
  in
  {
    Sql_ast.table = rhs.Tgd.rel;
    columns;
    select =
      {
        Sql_ast.projections;
        from = Sql_ast.Tables (List.map (fun (a, atom) -> (atom.Tgd.rel, a)) aliased);
        where = List.rev !where;
        group_by = [];
      };
  }

let aggregation_insert mapping (source : Tgd.atom) group_by aggr measure target =
  let source_schema = Mappings.Mapping.target_schema_exn mapping source.Tgd.rel in
  let target_schema = Mappings.Mapping.target_schema_exn mapping target in
  (* The source atom uses plain variables (generated form), so variables
     bind to bare columns; the paper omits the alias (FROM RGDP). *)
  let binding =
    List.map2
      (fun term column ->
        match term with
        | Term.Var v -> (v, Sql_ast.Col { alias = ""; column })
        | _ -> fail "aggregation source atom must use plain variables")
      source.Tgd.args
      (columns_of_schema source_schema)
  in
  let key_exprs = List.map (expr_of_term binding) group_by in
  let columns = columns_of_schema target_schema in
  let dim_columns = Schema.dim_names target_schema in
  let projections =
    List.map2 (fun e c -> (e, c)) key_exprs dim_columns
    @ [
        ( Sql_ast.Agg_call (aggr, List.assoc measure binding),
          target_schema.Schema.measure_name );
      ]
  in
  {
    Sql_ast.table = target;
    columns;
    select =
      {
        Sql_ast.projections;
        from = Sql_ast.Tables [ (source.Tgd.rel, source.Tgd.rel) ];
        where = [];
        group_by = key_exprs;
      };
  }

let table_fn_insert mapping fn params source target =
  let target_schema = Mappings.Mapping.target_schema_exn mapping target in
  let columns = columns_of_schema target_schema in
  {
    Sql_ast.table = target;
    columns;
    select =
      {
        Sql_ast.projections =
          List.map
            (fun c -> (Sql_ast.Col { alias = ""; column = c }, c))
            columns;
        from = Sql_ast.From_table_fn { fn; params; table = source };
        where = [];
        group_by = [];
      };
  }

(* vadd(A, B): FULL OUTER JOIN with COALESCE on dimensions (at least
   one side is non-NULL) and on the measures (defaults). *)
let outer_combine_insert mapping (left : Tgd.atom) (right : Tgd.atom) op default
    target =
  let target_schema = Mappings.Mapping.target_schema_exn mapping target in
  let columns = columns_of_schema target_schema in
  let keys = Schema.dim_names target_schema in
  let la = "C1" and ra = "C2" in
  let dim_projections =
    List.map
      (fun k ->
        ( Sql_ast.Coalesce
            (Sql_ast.Col { alias = la; column = k },
             Sql_ast.Col { alias = ra; column = k }),
          k ))
      keys
  in
  let measure_of alias schema =
    Sql_ast.Coalesce
      ( Sql_ast.Col { alias; column = schema.Schema.measure_name },
        Sql_ast.Lit (Value.Float default) )
  in
  let left_schema = Mappings.Mapping.target_schema_exn mapping left.Tgd.rel in
  let right_schema = Mappings.Mapping.target_schema_exn mapping right.Tgd.rel in
  let measure =
    Sql_ast.Binop (op, measure_of la left_schema, measure_of ra right_schema)
  in
  {
    Sql_ast.table = target;
    columns;
    select =
      {
        Sql_ast.projections =
          dim_projections @ [ (measure, target_schema.Schema.measure_name) ];
        from =
          Sql_ast.Full_outer_join
            { left = (left.Tgd.rel, la); right = (right.Tgd.rel, ra); keys };
        where = [];
        group_by = [];
      };
  }

let insert_of_tgd mapping tgd =
  try
    Ok
      (match tgd with
      | Tgd.Tuple_level { lhs; rhs } -> tuple_level_insert mapping lhs rhs
      | Tgd.Aggregation { source; group_by; aggr; measure; target } ->
          aggregation_insert mapping source group_by aggr measure target
      | Tgd.Table_fn { fn; params; source; target } ->
          table_fn_insert mapping fn params source target
      | Tgd.Outer_combine { left; right; op; default; target } ->
          outer_combine_insert mapping left right op default target)
  with Gen_error msg -> Error msg

let script_of_mapping mapping =
  let rec loop acc = function
    | [] -> Ok (List.rev acc)
    | tgd :: rest -> (
        match insert_of_tgd mapping tgd with
        | Ok i -> loop (i :: acc) rest
        | Error msg ->
            Error (Printf.sprintf "on tgd [%s]: %s" (Tgd.to_string tgd) msg))
  in
  loop [] mapping.Mappings.Mapping.t_tgds

let statements_of_mapping ?(views = `None) mapping =
  match script_of_mapping mapping with
  | Error _ as e -> e
  | Ok inserts ->
      Ok
        (List.map
           (fun (i : Sql_ast.insert) ->
             let is_temp = Exl.Normalize.is_temp i.Sql_ast.table in
             match views with
             | `Temporaries when is_temp ->
                 Sql_ast.Create_view
                   {
                     name = i.Sql_ast.table;
                     columns = i.Sql_ast.columns;
                     select = i.Sql_ast.select;
                   }
             | _ -> Sql_ast.Insert i)
           inserts)

let sql_type = function
  | Domain.Bool -> "BOOLEAN"
  | Domain.Int -> "INTEGER"
  | Domain.Float -> "DOUBLE PRECISION"
  | Domain.String -> "VARCHAR(255)"
  | Domain.Date -> "DATE"
  | Domain.Period _ -> "PERIOD"
  | Domain.Any -> "VARCHAR(255)"

let ddl_of_mapping mapping =
  let create schema =
    let dims =
      Array.to_list schema.Schema.dims
      |> List.map (fun d ->
             Printf.sprintf "  %s %s NOT NULL"
               (String.uppercase_ascii d.Schema.dim_name)
               (sql_type d.Schema.dim_domain))
    in
    let measure =
      Printf.sprintf "  %s %s"
        (String.uppercase_ascii schema.Schema.measure_name)
        (sql_type schema.Schema.measure_domain)
    in
    let pk =
      if Schema.arity schema = 0 then []
      else
        [
          Printf.sprintf "  PRIMARY KEY (%s)"
            (String.concat ", "
               (List.map String.uppercase_ascii (Schema.dim_names schema)));
        ]
    in
    Printf.sprintf "CREATE TABLE %s (\n%s\n);"
      (String.uppercase_ascii schema.Schema.name)
      (String.concat ",\n" (dims @ [ measure ] @ pk))
  in
  String.concat "\n\n" (List.map create mapping.Mappings.Mapping.target) ^ "\n"
