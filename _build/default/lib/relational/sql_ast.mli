open Matrix

(** Abstract syntax of the generated SQL (paper, Section 5.1).

    A small dialect: INSERT INTO ... SELECT with equi-joins expressed in
    the WHERE clause (the paper's style), GROUP BY with an aggregate
    projection, and tabular functions in the FROM clause
    ([FROM STL_T(GDP)]) for black-box operators. *)

type expr =
  | Col of { alias : string; column : string }
  | Lit of Value.t
  | Binop of Ops.Binop.t * expr * expr
  | Neg of expr
  | Scalar_call of string * float list * expr  (** scalar UDF: [LOG(2, x)] *)
  | Dim_call of string * expr  (** dimension UDF: [QUARTER(d)] *)
  | Period_add of expr * int  (** period/date arithmetic: [q + 1] *)
  | Agg_call of Stats.Aggregate.t * expr  (** only in aggregate queries *)
  | Coalesce of expr * expr  (** first non-NULL value *)

type from_clause =
  | Tables of (string * string) list  (** (table, alias); [] = one empty row *)
  | From_table_fn of { fn : string; params : float list; table : string }
  | Full_outer_join of {
      left : string * string;  (** (table, alias) *)
      right : string * string;
      keys : string list;  (** equally named join columns *)
    }

type select = {
  projections : (expr * string) list;  (** expression AS name *)
  from : from_clause;
  where : (expr * expr) list;  (** conjunction of equalities *)
  group_by : expr list;
}

type insert = { table : string; columns : string list; select : select }

type statement =
  | Insert of insert
  | Create_view of { name : string; columns : string list; select : select }
      (** The Section 6 reformulation: intermediate cubes need not be
          stored back — they can be views evaluated on demand. *)

val expr_aliases : expr -> string list
(** Table aliases referenced by the expression, without duplicates. *)

val expr_is_aggregate : expr -> bool
