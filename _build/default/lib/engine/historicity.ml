open Matrix

type t = (string, (Calendar.Date.t * Cube.t) list ref) Hashtbl.t
(* Versions kept sorted by date, oldest first. *)

let create () = Hashtbl.create 32

let store t ~valid_from cube =
  let name = Cube.name cube in
  let versions =
    match Hashtbl.find_opt t name with
    | Some v -> v
    | None ->
        let v = ref [] in
        Hashtbl.replace t name v;
        v
  in
  let without =
    List.filter (fun (d, _) -> not (Calendar.Date.equal d valid_from)) !versions
  in
  versions :=
    List.sort
      (fun (a, _) (b, _) -> Calendar.Date.compare a b)
      ((valid_from, Cube.copy cube) :: without)

let versions t name =
  match Hashtbl.find_opt t name with Some v -> !v | None -> []

let as_of t date name =
  let applicable =
    List.filter (fun (d, _) -> Calendar.Date.compare d date <= 0) (versions t name)
  in
  match List.rev applicable with
  | (_, cube) :: _ -> Some cube
  | [] -> None

let latest t name =
  match List.rev (versions t name) with
  | (_, cube) :: _ -> Some cube
  | [] -> None

let names t =
  Hashtbl.fold (fun k _ acc -> k :: acc) t [] |> List.sort String.compare

let version_count t name = List.length (versions t name)
