open Matrix

(** The determination engine (paper, Section 6).

    Maintains the global DAG of dependencies among all stored cubes
    across every registered program; when elementary cubes change, it
    computes the topologically sorted set of derived cubes to
    recalculate and dynamically builds the EXL program to run. *)

type t

val create : unit -> t

val register_program :
  ?synthetic:string list ->
  t ->
  name:string ->
  Exl.Typecheck.checked ->
  (unit, string) result
(** Programs share elementary cubes (schemas must agree) but no derived
    cube may be defined twice across programs.  [synthetic] names
    declarations that only satisfied the standalone type check and must
    not join the graph (used by [register_source]). *)

val register_source : t -> name:string -> string -> (unit, string) result
(** Parse, check and register EXL source text.  References to cubes
    already in the global graph — including derived cubes of other
    programs — are resolved automatically. *)

val cubes : t -> string list
(** All cubes in the global graph, sorted. *)

val schema : t -> string -> Schema.t option
val kind : t -> string -> Registry.kind option
val sources_of : t -> string -> string list
(** Direct dependencies (edges into the cube). *)

val dependents_of : t -> string -> string list
val derived_order : t -> string list
(** All derived cubes in global definition order (a topological
    order). *)

val affected : t -> changed:string list -> string list
(** Derived cubes that (transitively) depend on any changed cube, in
    topological order — the recomputation set. *)

val build_program :
  t -> cubes:string list -> (Exl.Typecheck.checked, string) result
(** Dynamically build the EXL program computing exactly [cubes] (in
    their global order): inputs that are not recomputed become
    declarations. *)

val partition : assign:(string -> string) -> string list -> (string * string list) list
(** Group a topologically ordered cube list into maximal consecutive
    runs with the same assigned target — the per-target subgraphs the
    dispatcher delegates. *)

val dot : t -> string
(** Graphviz rendering of the dependency DAG (documentation aid). *)
