type entry = (Target.artifact * Mappings.Mapping.t, string) result

type t = {
  cache : (string * string list, entry) Hashtbl.t;
  mutable hits : int;
  mutable misses : int;
}

let create () = { cache = Hashtbl.create 32; hits = 0; misses = 0 }

let submapping determination ~cubes =
  Result.bind (Determination.build_program determination ~cubes)
    (fun checked ->
      match Mappings.Generate.of_checked checked with
      | Ok g -> Ok g.Mappings.Generate.mapping
      | Error e -> Error (Exl.Errors.to_string e))

let translate t determination ~(target : Target.t) ~cubes =
  let key = (target.Target.name, cubes) in
  match Hashtbl.find_opt t.cache key with
  | Some entry ->
      t.hits <- t.hits + 1;
      entry
  | None ->
      t.misses <- t.misses + 1;
      let entry =
        Result.bind (submapping determination ~cubes) (fun mapping ->
            Result.map
              (fun artifact -> (artifact, mapping))
              (target.Target.translate mapping))
      in
      Hashtbl.replace t.cache key entry;
      entry

let cache_hits t = t.hits
let cache_misses t = t.misses
