(** The translation engine (paper, Section 6): subgraph → schema
    mapping → target artifact, cached.

    "All the activities described so far can be efficiently performed
    off line or at the startup of the system" — the cache is what makes
    translation cost independent of the data, which experiment X3
    quantifies. *)

type t

val create : unit -> t

val submapping :
  Determination.t -> cubes:string list -> (Mappings.Mapping.t, string) result
(** The schema mapping computing exactly [cubes], treating earlier
    derived cubes as sources. *)

val translate :
  t ->
  Determination.t ->
  target:Target.t ->
  cubes:string list ->
  (Target.artifact * Mappings.Mapping.t, string) result
(** Cached by (target name, cube list). *)

val cache_hits : t -> int
val cache_misses : t -> int
