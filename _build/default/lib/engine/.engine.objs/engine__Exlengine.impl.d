lib/engine/exlengine.ml: Calendar Cube Determination Dispatcher Historicity List Matrix Printf Registry Schema Store String Target Translation
