lib/engine/historicity.mli: Calendar Cube Matrix
