lib/engine/translation.ml: Determination Exl Hashtbl Mappings Result Target
