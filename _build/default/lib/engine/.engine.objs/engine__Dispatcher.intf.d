lib/engine/dispatcher.mli: Determination Matrix Registry Target Translation
