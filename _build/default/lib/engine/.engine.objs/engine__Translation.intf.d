lib/engine/translation.mli: Determination Mappings Target
