lib/engine/dispatcher.ml: Cube Determination List Mappings Matrix Printf Registry Result Stdlib String Sys Target Translation
