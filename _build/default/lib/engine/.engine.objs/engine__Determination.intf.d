lib/engine/determination.mli: Exl Matrix Registry Schema
