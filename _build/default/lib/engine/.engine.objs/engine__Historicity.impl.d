lib/engine/historicity.ml: Calendar Cube Hashtbl List Matrix String
