lib/engine/exlengine.mli: Calendar Cube Determination Dispatcher Historicity Matrix Registry Target Translation
