lib/engine/determination.ml: Array Buffer Domain Exl Hashtbl List Matrix Option Printf Registry Schema String
