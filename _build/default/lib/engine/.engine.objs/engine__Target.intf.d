lib/engine/target.mli: Mappings Matrix Registry
