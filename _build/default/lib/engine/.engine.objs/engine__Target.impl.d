lib/engine/target.ml: Cube Etl List Mappings Matrix Printf Registry Relational Result Schema String Tuple Vector
