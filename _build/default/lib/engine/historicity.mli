open Matrix

(** Historicity: the time-dependence of cubes (paper, Section 6).

    Every (re)computation stores a new version of each cube with its
    validity start date; reads can be "as of" any date, which is how a
    statistical production system answers "what did GDP look like before
    last month's revision?". *)

type t

val create : unit -> t

val store : t -> valid_from:Calendar.Date.t -> Cube.t -> unit
(** Storing twice with the same date replaces that version. *)

val as_of : t -> Calendar.Date.t -> string -> Cube.t option
(** The version whose validity start is the latest one <= the date. *)

val latest : t -> string -> Cube.t option
val versions : t -> string -> (Calendar.Date.t * Cube.t) list
(** Oldest first. *)

val names : t -> string list
val version_count : t -> string -> int
