(** Tgd → script IR translation (paper, Section 5.2).

    The vector targets consume {e unfused} mappings (the paper notes
    translations into matrix languages are "often direct", one small
    block per tgd); tuple-level tgds with more than two atoms are
    rejected. *)

val stmts_of_tgd :
  Mappings.Mapping.t -> Mappings.Tgd.t -> (Script.stmt list, string) result

val script_of_mapping :
  Mappings.Mapping.t -> (Script.t, string) result
