lib/vector/script_interp.ml: Array Frame Frame_ops Hashtbl List Matrix Printf Script Value
