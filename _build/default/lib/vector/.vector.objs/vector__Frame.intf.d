lib/vector/frame.mli: Cube Format Matrix Schema Value
