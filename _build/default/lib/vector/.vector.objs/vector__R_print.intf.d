lib/vector/r_print.mli: Script
