lib/vector/script_gen.mli: Mappings Script
