lib/vector/script_interp.mli: Frame Matrix Schema Script
