lib/vector/vector_target.mli: Exl Matrix Registry
