lib/vector/script.ml: Frame_ops Hashtbl List Matrix Stats Value
