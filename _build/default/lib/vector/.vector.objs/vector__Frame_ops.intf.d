lib/vector/frame_ops.mli: Frame Matrix Ops Schema Stats Value
