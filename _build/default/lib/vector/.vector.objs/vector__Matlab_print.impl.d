lib/vector/matlab_print.ml: Calendar Frame_ops Hashtbl List Matrix Ops Printf Schema Script Stats String Value
