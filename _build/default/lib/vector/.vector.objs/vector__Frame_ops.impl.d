lib/vector/frame_ops.ml: Array Calendar Cube Frame List Matrix Ops Option Printf Stats Tuple Value
