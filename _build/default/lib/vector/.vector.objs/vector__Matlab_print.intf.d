lib/vector/matlab_print.mli: Matrix Schema Script
