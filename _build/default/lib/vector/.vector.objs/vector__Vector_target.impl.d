lib/vector/vector_target.ml: Cube Exl Frame List Mappings Matlab_print Matrix Printf R_print Registry Result Schema Script_gen Script_interp String
