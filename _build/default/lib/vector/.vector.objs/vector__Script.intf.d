lib/vector/script.mli: Frame_ops Matrix Stats Value
