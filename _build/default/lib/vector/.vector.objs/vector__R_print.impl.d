lib/vector/r_print.ml: Calendar Frame_ops List Matrix Ops Printf Script Stats String Value
