lib/vector/script_gen.ml: Frame_ops List Mappings Matrix Option Printf Schema Script Value
