lib/vector/frame.ml: Array Cube Format Hashtbl List Matrix Printf Schema String Tuple Value
