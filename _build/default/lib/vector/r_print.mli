(** R surface syntax for script IR (paper, Section 5.2). *)

val stmt_to_string : Script.stmt -> string list
(** One IR statement can render to several R lines (e.g. the stl
    fragment of the paper). *)

val script_to_string : Script.t -> string
