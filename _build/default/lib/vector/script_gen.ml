open Matrix
module Tgd = Mappings.Tgd
module Term = Mappings.Term

exception Gen_error of string

let fail fmt = Printf.ksprintf (fun m -> raise (Gen_error m)) fmt

let columns_of_schema schema =
  Schema.dim_names schema @ [ schema.Schema.measure_name ]

let rec col_expr_of_term binding t =
  match t with
  | Term.Var v -> (
      match List.assoc_opt v binding with
      | Some c -> Frame_ops.Col c
      | None -> fail "variable %s is not bound" v)
  | Term.Const c -> Frame_ops.Lit c
  | Term.Shifted (t, k) -> Frame_ops.Shift_val (col_expr_of_term binding t, k)
  | Term.Dim_fn (fn, t) -> Frame_ops.Dim (fn, col_expr_of_term binding t)
  | Term.Scalar_fn (fn, params, t) ->
      Frame_ops.Scalar (fn, params, col_expr_of_term binding t)
  | Term.Binapp (op, a, b) ->
      Frame_ops.Bin (op, col_expr_of_term binding a, col_expr_of_term binding b)
  | Term.Neg t -> Frame_ops.Neg (col_expr_of_term binding t)
  | Term.Coalesce (a, b) ->
      Frame_ops.Coalesce_col (col_expr_of_term binding a, col_expr_of_term binding b)

(* Variables appearing as plain args in an atom, with their column. *)
let plain_vars mapping (atom : Tgd.atom) =
  let schema = Mappings.Mapping.target_schema_exn mapping atom.Tgd.rel in
  List.mapi (fun i term -> (i, term)) atom.Tgd.args
  |> List.filter_map (fun (i, term) ->
         match term with
         | Term.Var v -> Some (v, List.nth (columns_of_schema schema) i)
         | _ -> None)

(* Constant args in an atom become row-selection conditions. *)
let const_conditions mapping (atom : Tgd.atom) =
  let schema = Mappings.Mapping.target_schema_exn mapping atom.Tgd.rel in
  List.mapi (fun i term -> (i, term)) atom.Tgd.args
  |> List.filter_map (fun (i, term) ->
         match term with
         | Term.Const v -> Some (List.nth (columns_of_schema schema) i, v)
         | _ -> None)

(* A source step for an atom: a plain frame reference when there are no
   conditions, else a filtered copy named [hint]. *)
let source_frame mapping atom ~hint =
  match const_conditions mapping atom with
  | [] -> (atom.Tgd.rel, [])
  | conditions ->
      ( hint,
        [ Script.Filter_rows { dst = hint; src = atom.Tgd.rel; conditions } ] )

let tuple_level mapping lhs (rhs : Tgd.atom) =
  let target = rhs.Tgd.rel in
  let target_schema = Mappings.Mapping.target_schema_exn mapping target in
  let target_cols = columns_of_schema target_schema in
  let tmp = "t_" ^ target in
  match lhs with
  | [] ->
      let row = List.map (Term.eval (fun _ -> None)) rhs.Tgd.args in
      let rows =
        if List.for_all Option.is_some row then [ List.map Option.get row ]
        else []
      in
      [ Script.Const_frame { dst = target; cols = target_cols; rows } ]
  | [ atom ] ->
      let binding = plain_vars mapping atom in
      let src_name, filter_steps = source_frame mapping atom ~hint:(tmp ^ "_f") in
      let prelude =
        filter_steps @ [ Script.Copy { dst = tmp; src = src_name } ]
      in
      let assigns = ref [] in
      let cols =
        List.map2
          (fun term target_col ->
            match term with
            | Term.Var v -> (List.assoc v binding, target_col)
            | _ ->
                let c = "c_" ^ target_col in
                assigns :=
                  Script.Assign_col
                    { frame = tmp; col = c; expr = col_expr_of_term binding term }
                  :: !assigns;
                (c, target_col))
          rhs.Tgd.args target_cols
      in
      prelude @ List.rev !assigns
      @ [ Script.Select_cols { dst = target; src = tmp; cols } ]
  | [ left; right ] ->
      let left_schema = Mappings.Mapping.target_schema_exn mapping left.Tgd.rel in
      let right_schema =
        Mappings.Mapping.target_schema_exn mapping right.Tgd.rel
      in
      let left_plain = plain_vars mapping left in
      let right_plain = plain_vars mapping right in
      (* Join keys: variables plain on both sides (same column names by
         generation: dimension names are the variables). *)
      let by =
        List.filter_map
          (fun (v, c) ->
            match List.assoc_opt v right_plain with
            | Some c' when c = c' -> Some c
            | _ -> None)
          left_plain
      in
      if List.exists (fun (v, _) -> List.assoc_opt v right_plain <> None
                                    && not (List.mem (List.assoc v left_plain) by))
           left_plain
      then fail "join variables must live in equally named columns";
      let left_cols = columns_of_schema left_schema in
      let right_cols = columns_of_schema right_schema in
      let clash c =
        (not (List.mem c by)) && List.mem c left_cols && List.mem c right_cols
      in
      let binding =
        List.map
          (fun (v, c) -> (v, if clash c then c ^ "_x" else c))
          left_plain
        @ List.filter_map
            (fun (v, c) ->
              if List.mem_assoc v left_plain then None
              else Some (v, if clash c then c ^ "_y" else c))
            right_plain
      in
      let assigns = ref [] in
      let cols =
        List.map2
          (fun term target_col ->
            match term with
            | Term.Var v -> (List.assoc v binding, target_col)
            | _ ->
                let c = "c_" ^ target_col in
                assigns :=
                  Script.Assign_col
                    { frame = tmp; col = c; expr = col_expr_of_term binding term }
                  :: !assigns;
                (c, target_col))
          rhs.Tgd.args target_cols
      in
      let left_name, left_filters =
        source_frame mapping left ~hint:(tmp ^ "_fl")
      in
      let right_name, right_filters =
        source_frame mapping right ~hint:(tmp ^ "_fr")
      in
      left_filters @ right_filters
      @ [ Script.Merge { dst = tmp; left = left_name; right = right_name; by } ]
      @ List.rev !assigns
      @ [ Script.Select_cols { dst = target; src = tmp; cols } ]
  | _ ->
      fail
        "vector target supports at most two atoms per tgd; run on the unfused mapping"

let aggregation mapping (source : Tgd.atom) group_by aggr measure target =
  let target_schema = Mappings.Mapping.target_schema_exn mapping target in
  let binding = plain_vars mapping source in
  let measure_col =
    match List.assoc_opt measure binding with
    | Some c -> c
    | None -> fail "aggregation measure %s is not a plain variable" measure
  in
  let by =
    List.map2
      (fun term dim_name -> (dim_name, col_expr_of_term binding term))
      group_by
      (Schema.dim_names target_schema)
  in
  let tmp = "t_" ^ target in
  [
    Script.Group_agg
      { dst = tmp; src = source.Tgd.rel; by; aggr; measure = Frame_ops.Col measure_col };
    Script.Select_cols
      {
        dst = target;
        src = tmp;
        cols =
          List.map (fun d -> (d, d)) (Schema.dim_names target_schema)
          @ [ ("value", target_schema.Schema.measure_name) ];
      };
  ]

(* vadd(A, B): outer merge, coalesced measures, combined. *)
let outer_combine mapping (left : Tgd.atom) (right : Tgd.atom) op default target =
  let target_schema = Mappings.Mapping.target_schema_exn mapping target in
  let dims = Schema.dim_names target_schema in
  let left_schema = Mappings.Mapping.target_schema_exn mapping left.Tgd.rel in
  let right_schema = Mappings.Mapping.target_schema_exn mapping right.Tgd.rel in
  let lm = left_schema.Schema.measure_name in
  let rm = right_schema.Schema.measure_name in
  let lm_out, rm_out = if lm = rm then (lm ^ "_x", rm ^ "_y") else (lm, rm) in
  let tmp = "t_" ^ target in
  let coalesced col =
    Frame_ops.Coalesce_col (Frame_ops.Col col, Frame_ops.Lit (Value.Float default))
  in
  [
    Script.Merge_outer { dst = tmp; left = left.Tgd.rel; right = right.Tgd.rel; by = dims };
    Script.Assign_col
      {
        frame = tmp;
        col = "c_value";
        expr = Frame_ops.Bin (op, coalesced lm_out, coalesced rm_out);
      };
    Script.Select_cols
      {
        dst = target;
        src = tmp;
        cols =
          List.map (fun d -> (d, d)) dims
          @ [ ("c_value", target_schema.Schema.measure_name) ];
      };
  ]

let stmts_of_tgd mapping tgd =
  try
    Ok
      (match tgd with
      | Tgd.Tuple_level { lhs; rhs } -> tuple_level mapping lhs rhs
      | Tgd.Aggregation { source; group_by; aggr; measure; target } ->
          aggregation mapping source group_by aggr measure target
      | Tgd.Table_fn { fn; params; source; target } ->
          [ Script.Apply_fn { dst = target; src = source; fn; params } ]
      | Tgd.Outer_combine { left; right; op; default; target } ->
          outer_combine mapping left right op default target)
  with Gen_error msg -> Error msg

let script_of_mapping mapping =
  let rec loop acc = function
    | [] -> Ok (List.concat (List.rev acc))
    | tgd :: rest -> (
        match stmts_of_tgd mapping tgd with
        | Ok stmts -> loop (stmts :: acc) rest
        | Error msg ->
            Error (Printf.sprintf "on tgd [%s]: %s" (Tgd.to_string tgd) msg))
  in
  loop [] mapping.Mappings.Mapping.t_tgds
