open Matrix

let lit = function
  | Value.String s -> Printf.sprintf "\"%s\"" s
  | Value.Date d -> Printf.sprintf "as.Date(\"%s\")" (Calendar.Date.to_string d)
  | Value.Period p -> Printf.sprintf "\"%s\"" (Calendar.Period.to_string p)
  | Value.Null -> "NA"
  | (Value.Bool _ | Value.Int _ | Value.Float _) as v -> Value.to_string v

let prec = function
  | Frame_ops.Bin (op, _, _) -> Ops.Binop.precedence op
  | Frame_ops.Neg _ -> 4
  | Frame_ops.Shift_val _ -> 1
  | Frame_ops.Col _ | Frame_ops.Lit _ | Frame_ops.Scalar _ | Frame_ops.Dim _
  | Frame_ops.Coalesce_col _ ->
      10

let rec expr_str frame ctx e =
  let s =
    match e with
    | Frame_ops.Col c -> Printf.sprintf "%s[\"%s\"]" frame c
    | Frame_ops.Lit v -> lit v
    | Frame_ops.Bin (op, a, b) ->
        let p = Ops.Binop.precedence op in
        Printf.sprintf "%s %s %s" (expr_str frame p a) (Ops.Binop.to_string op)
          (expr_str frame (p + 1) b)
    | Frame_ops.Neg a -> "-" ^ expr_str frame 4 a
    | Frame_ops.Scalar (fn, [], a) ->
        Printf.sprintf "%s(%s)" fn (expr_str frame 0 a)
    | Frame_ops.Scalar (fn, params, a) ->
        Printf.sprintf "%s(%s, %s)" fn (expr_str frame 0 a)
          (String.concat ", " (List.map (Printf.sprintf "%g") params))
    | Frame_ops.Dim (fn, a) -> Printf.sprintf "%s(%s)" fn (expr_str frame 0 a)
    | Frame_ops.Shift_val (a, k) ->
        if k >= 0 then Printf.sprintf "%s + %d" (expr_str frame 2 a) k
        else Printf.sprintf "%s - %d" (expr_str frame 2 a) (-k)
    | Frame_ops.Coalesce_col (a, b) ->
        Printf.sprintf "dplyr::coalesce(%s, %s)" (expr_str frame 0 a)
          (expr_str frame 0 b)
  in
  if prec e < ctx then "(" ^ s ^ ")" else s

let quoted_list xs =
  "c(" ^ String.concat ", " (List.map (Printf.sprintf "\"%s\"") xs) ^ ")"

let stmt_to_string = function
  | Script.Copy { dst; src } -> [ Printf.sprintf "%s <- %s" dst src ]
  | Script.Filter_rows { dst; src; conditions } ->
      [
        Printf.sprintf "%s <- %s[%s, ]" dst src
          (String.concat " & "
             (List.map
                (fun (col, v) -> Printf.sprintf "%s$%s == %s" src col (lit v))
                conditions));
      ]
  | Script.Merge { dst; left; right; by } ->
      [ Printf.sprintf "%s <- merge(%s, %s, by=%s)" dst left right (quoted_list by) ]
  | Script.Merge_outer { dst; left; right; by } ->
      [
        Printf.sprintf "%s <- merge(%s, %s, by=%s, all=TRUE)" dst left right
          (quoted_list by);
      ]
  | Script.Assign_col { frame; col; expr } ->
      [ Printf.sprintf "%s$%s <- %s" frame col (expr_str frame 0 expr) ]
  | Script.Select_cols { dst; src; cols } ->
      [
        Printf.sprintf "%s <- setNames(%s[%s], %s)" dst src
          (quoted_list (List.map fst cols))
          (quoted_list (List.map snd cols));
      ]
  | Script.Group_agg { dst; src; by; aggr; measure } ->
      [
        Printf.sprintf "%s <- aggregate(x = %s, by = list(%s), FUN = %s)" dst
          (expr_str src 0 measure)
          (String.concat ", "
             (List.map
                (fun (name, e) -> Printf.sprintf "%s = %s" name (expr_str src 0 e))
                by))
          (match aggr with
          | Stats.Aggregate.Avg -> "mean"
          | Stats.Aggregate.Stddev -> "sd"
          | other -> Stats.Aggregate.to_string other);
      ]
  | Script.Apply_fn { dst; src; fn; params } -> (
      match String.lowercase_ascii fn with
      | "stl_t" ->
          (* The paper's R fragment for seasonal decomposition. *)
          [
            Printf.sprintf "%sC <- stl(%s, \"periodic\")" dst src;
            Printf.sprintf "%s <- %sC$time.series[ , \"trend\"]" dst dst;
          ]
      | "stl_s" ->
          [
            Printf.sprintf "%sC <- stl(%s, \"periodic\")" dst src;
            Printf.sprintf "%s <- %sC$time.series[ , \"seasonal\"]" dst dst;
          ]
      | "stl_r" ->
          [
            Printf.sprintf "%sC <- stl(%s, \"periodic\")" dst src;
            Printf.sprintf "%s <- %sC$time.series[ , \"remainder\"]" dst dst;
          ]
      | _ ->
          [
            Printf.sprintf "%s <- %s(%s%s)" dst fn src
              (String.concat ""
                 (List.map (Printf.sprintf ", %g") params));
          ])
  | Script.Const_frame { dst; cols; rows } ->
      [
        Printf.sprintf "%s <- data.frame(%s)" dst
          (String.concat ", "
             (List.mapi
                (fun ci name ->
                  Printf.sprintf "%s = c(%s)" name
                    (String.concat ", "
                       (List.map (fun row -> lit (List.nth row ci)) rows)))
                cols));
      ]

let script_to_string script =
  String.concat "\n" (List.concat_map stmt_to_string script) ^ "\n"
