open Matrix

let merge ~by left right =
  List.iter
    (fun k ->
      if not (Frame.has_column left k) then
        invalid_arg ("Frame_ops.merge: left side lacks key " ^ k);
      if not (Frame.has_column right k) then
        invalid_arg ("Frame_ops.merge: right side lacks key " ^ k))
    by;
  let clash c =
    (not (List.mem c by))
    && Frame.has_column left c
    && Frame.has_column right c
  in
  let left_out =
    List.map (fun c -> (c, (if clash c then c ^ "_x" else c))) (Frame.columns left)
  in
  let right_out =
    List.filter_map
      (fun c ->
        if List.mem c by then None
        else Some (c, if clash c then c ^ "_y" else c))
      (Frame.columns right)
  in
  let key_of frame cols i =
    let vals = List.map (fun c -> (Frame.column frame c).(i)) cols in
    if List.exists Value.is_null vals then None else Some (Tuple.of_list vals)
  in
  (* Hash the left side, probe with the right, accumulate row index
     pairs in left-major sorted-ish order (left build preserves order). *)
  let index : int list Tuple.Table.t = Tuple.Table.create 256 in
  for i = Frame.length left - 1 downto 0 do
    match key_of left by i with
    | None -> ()
    | Some k ->
        let prev = Option.value ~default:[] (Tuple.Table.find_opt index k) in
        Tuple.Table.replace index k (i :: prev)
  done;
  let pairs = ref [] in
  for j = Frame.length right - 1 downto 0 do
    match key_of right by j with
    | None -> ()
    | Some k ->
        List.iter
          (fun i -> pairs := (i, j) :: !pairs)
          (List.rev (Option.value ~default:[] (Tuple.Table.find_opt index k)))
  done;
  let pairs = Array.of_list !pairs in
  let n = Array.length pairs in
  let out_cols =
    List.map
      (fun (src, dst) ->
        let col = Frame.column left src in
        (dst, Array.init n (fun p -> col.(fst pairs.(p)))))
      left_out
    @ List.map
        (fun (src, dst) ->
          let col = Frame.column right src in
          (dst, Array.init n (fun p -> col.(snd pairs.(p)))))
        right_out
  in
  Frame.create out_cols

(* Full outer merge: like [merge] plus unmatched rows from both sides.
   Key columns take the defined side's values. *)
let merge_outer ~by left right =
  List.iter
    (fun k ->
      if not (Frame.has_column left k) then
        invalid_arg ("Frame_ops.merge_outer: left side lacks key " ^ k);
      if not (Frame.has_column right k) then
        invalid_arg ("Frame_ops.merge_outer: right side lacks key " ^ k))
    by;
  let clash c =
    (not (List.mem c by)) && Frame.has_column left c && Frame.has_column right c
  in
  let left_nonkey =
    List.filter_map
      (fun c ->
        if List.mem c by then None
        else Some (c, if clash c then c ^ "_x" else c))
      (Frame.columns left)
  in
  let right_nonkey =
    List.filter_map
      (fun c ->
        if List.mem c by then None
        else Some (c, if clash c then c ^ "_y" else c))
      (Frame.columns right)
  in
  let key_of frame i =
    let vals = List.map (fun c -> (Frame.column frame c).(i)) by in
    if List.exists Value.is_null vals then None else Some (Tuple.of_list vals)
  in
  let index : int list Tuple.Table.t = Tuple.Table.create 256 in
  for i = Frame.length left - 1 downto 0 do
    match key_of left i with
    | None -> ()
    | Some k ->
        let prev = Option.value ~default:[] (Tuple.Table.find_opt index k) in
        Tuple.Table.replace index k (i :: prev)
  done;
  let matched_left : unit Tuple.Table.t = Tuple.Table.create 256 in
  (* (left row index option, right row index option) *)
  let pairs = ref [] in
  for j = Frame.length right - 1 downto 0 do
    match key_of right j with
    | None -> pairs := (None, Some j) :: !pairs
    | Some k -> (
        match Tuple.Table.find_opt index k with
        | Some matches ->
            Tuple.Table.replace matched_left k ();
            List.iter (fun i -> pairs := (Some i, Some j) :: !pairs) (List.rev matches)
        | None -> pairs := (None, Some j) :: !pairs)
  done;
  for i = Frame.length left - 1 downto 0 do
    (match key_of left i with
    | Some k when Tuple.Table.mem matched_left k -> ()
    | _ -> pairs := (Some i, None) :: !pairs)
  done;
  let pairs = Array.of_list !pairs in
  let n = Array.length pairs in
  let key_cols =
    List.map
      (fun k ->
        let lcol = Frame.column left k and rcol = Frame.column right k in
        ( k,
          Array.init n (fun p ->
              match pairs.(p) with
              | Some i, _ -> lcol.(i)
              | None, Some j -> rcol.(j)
              | None, None -> Value.Null) ))
      by
  in
  let side cols frame proj =
    List.map
      (fun (src, dst) ->
        let col = Frame.column frame src in
        ( dst,
          Array.init n (fun p ->
              match proj pairs.(p) with Some i -> col.(i) | None -> Value.Null) ))
      cols
  in
  Frame.create
    (key_cols
    @ side left_nonkey left (fun (i, _) -> i)
    @ side right_nonkey right (fun (_, j) -> j))

type col_expr =
  | Col of string
  | Lit of Value.t
  | Bin of Ops.Binop.t * col_expr * col_expr
  | Neg of col_expr
  | Scalar of string * float list * col_expr
  | Dim of string * col_expr
  | Shift_val of col_expr * int
  | Coalesce_col of col_expr * col_expr

let shift_value amount = function
  | Value.Period p -> Value.Period (Calendar.Period.shift p amount)
  | Value.Date d -> Value.Date (Calendar.Date.add_days d amount)
  | Value.(Null | Bool _ | Int _ | Float _ | String _) -> Value.Null

let rec eval_col frame expr : Value.t array =
  let n = Frame.length frame in
  match expr with
  | Col c -> Frame.column frame c
  | Lit v -> Array.make n v
  | Bin (op, a, b) ->
      let va = eval_col frame a and vb = eval_col frame b in
      Array.init n (fun i -> Ops.Binop.eval_value op va.(i) vb.(i))
  | Neg a ->
      let va = eval_col frame a in
      Array.map
        (fun v ->
          match Value.to_float v with
          | Some f -> Value.of_float (-.f)
          | None -> Value.Null)
        va
  | Scalar (fn, params, a) ->
      let f = Ops.Scalar_fn.find_exn fn in
      Array.map (Ops.Scalar_fn.apply_value f ~params) (eval_col frame a)
  | Dim (fn, a) ->
      let f = Ops.Dim_fn.find_exn fn in
      Array.map
        (fun v -> Option.value ~default:Value.Null (Ops.Dim_fn.apply f v))
        (eval_col frame a)
  | Shift_val (a, k) -> Array.map (shift_value k) (eval_col frame a)
  | Coalesce_col (a, b) ->
      let va = eval_col frame a and vb = eval_col frame b in
      Array.init n (fun i -> if Value.is_null va.(i) then vb.(i) else va.(i))

let group_aggregate ~by ~aggr ~measure frame =
  let sorted = Frame.sort_rows frame in
  let keys = List.map (fun (_, e) -> eval_col sorted e) by in
  let measures = eval_col sorted measure in
  let groups : float list ref Tuple.Table.t = Tuple.Table.create 64 in
  let order = ref [] in
  for i = 0 to Frame.length sorted - 1 do
    let key_vals = List.map (fun col -> col.(i)) keys in
    if not (List.exists Value.is_null key_vals) then
      let key = Tuple.of_list key_vals in
      match Value.to_float measures.(i) with
      | None -> ()
      | Some m -> (
          match Tuple.Table.find_opt groups key with
          | Some bag -> bag := m :: !bag
          | None ->
              Tuple.Table.replace groups key (ref [ m ]);
              order := key :: !order)
  done;
  let result_keys = Array.of_list (List.rev !order) in
  let n = Array.length result_keys in
  let key_cols =
    List.mapi
      (fun ci (name, _) ->
        (name, Array.init n (fun i -> Tuple.get result_keys.(i) ci)))
      by
  in
  let agg_col =
    Array.init n (fun i ->
        let bag = List.rev !(Tuple.Table.find groups result_keys.(i)) in
        Value.of_float (Stats.Aggregate.apply aggr bag))
  in
  Frame.create (key_cols @ [ ("value", agg_col) ])

let apply_blackbox ~schema ~fn ~params frame =
  match Ops.Blackbox.find fn with
  | None -> Error ("unknown black-box operator " ^ fn)
  | Some op -> (
      match Ops.Blackbox.apply_cube op ~params (Frame.to_cube schema frame) with
      | Error _ as e -> e
      | Ok cube -> Ok (Frame.of_cube cube)
      | exception Cube.Functionality_violation { cube; key } ->
          Error
            (Printf.sprintf "functionality violation in %s at %s" cube
               (Tuple.to_string key)))
