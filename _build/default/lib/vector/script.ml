open Matrix

type stmt =
  | Copy of { dst : string; src : string }
  | Filter_rows of { dst : string; src : string; conditions : (string * Value.t) list }
  | Merge of { dst : string; left : string; right : string; by : string list }
  | Merge_outer of { dst : string; left : string; right : string; by : string list }
  | Assign_col of { frame : string; col : string; expr : Frame_ops.col_expr }
  | Select_cols of { dst : string; src : string; cols : (string * string) list }
  | Group_agg of {
      dst : string;
      src : string;
      by : (string * Frame_ops.col_expr) list;
      aggr : Stats.Aggregate.t;
      measure : Frame_ops.col_expr;
    }
  | Apply_fn of { dst : string; src : string; fn : string; params : float list }
  | Const_frame of { dst : string; cols : string list; rows : Value.t list list }

type t = stmt list

let dst_of = function
  | Copy { dst; _ }
  | Filter_rows { dst; _ }
  | Merge { dst; _ }
  | Merge_outer { dst; _ }
  | Select_cols { dst; _ }
  | Group_agg { dst; _ }
  | Apply_fn { dst; _ }
  | Const_frame { dst; _ } ->
      Some dst
  | Assign_col _ -> None

let defined_frames t =
  let seen = Hashtbl.create 16 in
  List.filter_map
    (fun stmt ->
      match dst_of stmt with
      | Some d when not (Hashtbl.mem seen d) ->
          Hashtbl.add seen d ();
          Some d
      | _ -> None)
    t
