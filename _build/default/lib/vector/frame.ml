open Matrix

type t = { names : string list; cols : (string, Value.t array) Hashtbl.t; len : int }

let create pairs =
  let seen = Hashtbl.create 8 in
  let len =
    match pairs with [] -> 0 | (_, c) :: _ -> Array.length c
  in
  let cols = Hashtbl.create 8 in
  List.iter
    (fun (name, col) ->
      if Hashtbl.mem seen name then
        invalid_arg ("Frame.create: duplicate column " ^ name);
      Hashtbl.add seen name ();
      if Array.length col <> len then
        invalid_arg ("Frame.create: ragged column " ^ name);
      Hashtbl.replace cols name col)
    pairs;
  { names = List.map fst pairs; cols; len }

let empty names = create (List.map (fun n -> (n, [||])) names)
let columns t = t.names
let length t = t.len

let column t name =
  match Hashtbl.find_opt t.cols name with
  | Some c -> c
  | None ->
      invalid_arg
        (Printf.sprintf "Frame.column: no column %s (have %s)" name
           (String.concat ", " t.names))

let has_column t name = Hashtbl.mem t.cols name

let row t i = Array.of_list (List.map (fun n -> (column t n).(i)) t.names)

let of_cube cube =
  let schema = Cube.schema cube in
  let alist = Cube.to_alist cube in
  let n = List.length alist in
  let dims = Schema.dim_names schema in
  let cols =
    List.mapi
      (fun di name ->
        let col = Array.make n Value.Null in
        List.iteri (fun ri (k, _) -> col.(ri) <- Tuple.get k di) alist;
        (name, col))
      dims
  in
  let measure = Array.make n Value.Null in
  List.iteri (fun ri (_, v) -> measure.(ri) <- v) alist;
  create (cols @ [ (schema.Schema.measure_name, measure) ])

let to_cube schema t =
  let cube = Cube.create schema in
  let dim_cols = List.map (column t) (Schema.dim_names schema) in
  let measure_col = column t schema.Schema.measure_name in
  for i = 0 to t.len - 1 do
    let key = Tuple.of_list (List.map (fun c -> c.(i)) dim_cols) in
    if not (Value.is_null measure_col.(i)) then
      Cube.add_strict cube key measure_col.(i)
  done;
  cube

let select t pairs =
  create (List.map (fun (src, dst) -> (dst, Array.copy (column t src))) pairs)

let add_column t name col =
  if Array.length col <> t.len then
    invalid_arg ("Frame.add_column: ragged column " ^ name);
  let names = if has_column t name then t.names else t.names @ [ name ] in
  let cols = Hashtbl.copy t.cols in
  Hashtbl.replace cols name col;
  { names; cols; len = t.len }

let filter_rows t keep =
  let idx = ref [] in
  for i = t.len - 1 downto 0 do
    if keep i then idx := i :: !idx
  done;
  let idx = Array.of_list !idx in
  create
    (List.map
       (fun n ->
         let src = column t n in
         (n, Array.map (fun i -> src.(i)) idx))
       t.names)

let sort_rows t =
  let rows = Array.init t.len (row t) in
  Array.sort (fun a b -> Tuple.compare (Tuple.of_array a) (Tuple.of_array b)) rows;
  create
    (List.mapi
       (fun ci n -> (n, Array.map (fun r -> r.(ci)) rows))
       t.names)

let append_rows a b =
  if a.names <> b.names then invalid_arg "Frame.append_rows: column mismatch";
  create
    (List.map (fun n -> (n, Array.append (column a n) (column b n))) a.names)

let pp ppf t =
  Format.fprintf ppf "@[<v2>frame(%s) [%d rows]"
    (String.concat ", " t.names)
    t.len;
  for i = 0 to min (t.len - 1) 19 do
    Format.fprintf ppf "@,%s"
      (String.concat " | "
         (List.map Value.to_string (Array.to_list (row t i))))
  done;
  if t.len > 20 then Format.fprintf ppf "@,...";
  Format.fprintf ppf "@]"
