open Matrix

(** Script IR execution against the frame engine. *)

type env
(** Mutable frame environment (what the R workspace would hold). *)

val create_env : unit -> env
val bind : env -> string -> Frame.t -> unit
val frame : env -> string -> Frame.t option
val frame_exn : env -> string -> Frame.t

val run :
  schema_lookup:(string -> Schema.t option) ->
  env ->
  Script.t ->
  (unit, string) result
(** Executes statements in order; [schema_lookup] resolves temporal
    domains for black-box applications and cube conversion. *)
