open Matrix

exception Print_error of string

let fail fmt = Printf.ksprintf (fun m -> raise (Print_error m)) fmt

let columns_of_schema schema =
  Schema.dim_names schema @ [ schema.Schema.measure_name ]

let lit = function
  | Value.String s -> Printf.sprintf "\"%s\"" s
  | Value.Date d -> Printf.sprintf "datetime(\"%s\")" (Calendar.Date.to_string d)
  | Value.Period p -> Printf.sprintf "\"%s\"" (Calendar.Period.to_string p)
  | Value.Null -> "NaN"
  | (Value.Bool _ | Value.Int _ | Value.Float _) as v -> Value.to_string v

let matlab_binop = function
  | Ops.Binop.Add -> "+"
  | Ops.Binop.Sub -> "-"
  | Ops.Binop.Mul -> ".*"
  | Ops.Binop.Div -> "./"
  | Ops.Binop.Pow -> ".^"

let positions cols wanted =
  List.map
    (fun c ->
      match List.find_index (fun x -> x = c) cols with
      | Some i -> i + 1
      | None -> fail "column %s not in layout [%s]" c (String.concat "; " cols))
    wanted

let range_str ps =
  "[" ^ String.concat " " (List.map string_of_int ps) ^ "]"

let script_to_string ~schemas script =
  let layouts : (string, string list) Hashtbl.t = Hashtbl.create 16 in
  let layout name =
    match Hashtbl.find_opt layouts name with
    | Some l -> l
    | None -> (
        match schemas name with
        | Some s -> columns_of_schema s
        | None -> fail "unknown frame %s" name)
  in
  let rec expr_str frame ctx e =
    let cols = layout frame in
    let prec = function
      | Frame_ops.Bin (op, _, _) -> Ops.Binop.precedence op
      | Frame_ops.Neg _ -> 4
      | Frame_ops.Shift_val _ -> 1
      | Frame_ops.Col _ | Frame_ops.Lit _ | Frame_ops.Scalar _ | Frame_ops.Dim _
      | Frame_ops.Coalesce_col _ ->
          10
    in
    let s =
      match e with
      | Frame_ops.Col c ->
          Printf.sprintf "%s(:,%d)" frame (List.hd (positions cols [ c ]))
      | Frame_ops.Lit v -> lit v
      | Frame_ops.Bin (op, a, b) ->
          let p = Ops.Binop.precedence op in
          Printf.sprintf "%s %s %s" (expr_str frame p a) (matlab_binop op)
            (expr_str frame (p + 1) b)
      | Frame_ops.Neg a -> "-" ^ expr_str frame 4 a
      | Frame_ops.Scalar (fn, [], a) ->
          Printf.sprintf "%s(%s)" fn (expr_str frame 0 a)
      | Frame_ops.Scalar (fn, params, a) ->
          Printf.sprintf "%s(%s, %s)" fn (expr_str frame 0 a)
            (String.concat ", " (List.map (Printf.sprintf "%g") params))
      | Frame_ops.Dim (fn, a) -> Printf.sprintf "%s(%s)" fn (expr_str frame 0 a)
      | Frame_ops.Shift_val (a, k) ->
          if k >= 0 then Printf.sprintf "%s + %d" (expr_str frame 2 a) k
          else Printf.sprintf "%s - %d" (expr_str frame 2 a) (-k)
      | Frame_ops.Coalesce_col (a, b) ->
          Printf.sprintf "fillmissing2(%s, %s)" (expr_str frame 0 a)
            (expr_str frame 0 b)
    in
    if prec e < ctx then "(" ^ s ^ ")" else s
  in
  let merge_layout left right by =
    let lcols = layout left and rcols = layout right in
    let clash c = (not (List.mem c by)) && List.mem c lcols && List.mem c rcols in
    List.map (fun c -> if clash c then c ^ "_x" else c) lcols
    @ List.filter_map
        (fun c ->
          if List.mem c by then None
          else Some (if clash c then c ^ "_y" else c))
        rcols
  in
  let line stmt =
    match stmt with
    | Script.Copy { dst; src } ->
        Hashtbl.replace layouts dst (layout src);
        [ Printf.sprintf "%s = %s;" dst src ]
    | Script.Filter_rows { dst; src; conditions } ->
        let cols = layout src in
        Hashtbl.replace layouts dst cols;
        [
          Printf.sprintf "%s = %s(%s, :);" dst src
            (String.concat " & "
               (List.map
                  (fun (col, v) ->
                    Printf.sprintf "%s(:,%d) == %s" src
                      (List.hd (positions cols [ col ]))
                      (lit v))
                  conditions));
        ]
    | Script.Merge { dst; left; right; by } ->
        let lpos = positions (layout left) by in
        let rpos = positions (layout right) by in
        Hashtbl.replace layouts dst (merge_layout left right by);
        [
          Printf.sprintf "%s = join(%s, %s, %s, %s);" dst left (range_str lpos)
            right (range_str rpos);
        ]
    | Script.Merge_outer { dst; left; right; by } ->
        let lpos = positions (layout left) by in
        let rpos = positions (layout right) by in
        (* outer merge keeps a single (coalesced) copy of the keys *)
        let keys_first =
          by
          @ List.filter (fun c -> not (List.mem c by)) (merge_layout left right by)
        in
        Hashtbl.replace layouts dst keys_first;
        [
          Printf.sprintf "%s = outerjoin(%s, %s, %s, %s, \"MergeKeys\", true);"
            dst left (range_str lpos) right (range_str rpos);
        ]
    | Script.Assign_col { frame; col; expr } ->
        let cols = layout frame in
        let rendered = expr_str frame 0 expr in
        let pos, cols' =
          match List.find_index (fun x -> x = col) cols with
          | Some i -> (i + 1, cols)
          | None -> (List.length cols + 1, cols @ [ col ])
        in
        Hashtbl.replace layouts frame cols';
        [ Printf.sprintf "%s(:,%d) = %s;" frame pos rendered ]
    | Script.Select_cols { dst; src; cols } ->
        let ps = positions (layout src) (List.map fst cols) in
        Hashtbl.replace layouts dst (List.map snd cols);
        [ Printf.sprintf "%s = %s(:, %s);" dst src (range_str ps) ]
    | Script.Group_agg { dst; src; by; aggr; measure } ->
        (* Pre-assign non-column keys, then groupsummary. *)
        let pre = ref [] in
        let key_names =
          List.map
            (fun (name, e) ->
              match e with
              | Frame_ops.Col c -> c
              | _ ->
                  let cols = layout src in
                  let rendered = expr_str src 0 e in
                  Hashtbl.replace layouts src (cols @ [ name ]);
                  pre :=
                    Printf.sprintf "%s(:,%d) = %s;" src
                      (List.length cols + 1)
                      rendered
                    :: !pre;
                  name)
            by
        in
        let measure_name =
          match measure with
          | Frame_ops.Col c -> c
          | _ -> fail "groupsummary measure must be a column"
        in
        Hashtbl.replace layouts dst (List.map fst by @ [ "value" ]);
        List.rev !pre
        @ [
            Printf.sprintf "%s = groupsummary(%s, [%s], \"%s\", \"%s\");" dst src
              (String.concat " "
                 (List.map (Printf.sprintf "\"%s\"") key_names))
              (Stats.Aggregate.to_string aggr)
              measure_name;
          ]
    | Script.Apply_fn { dst; src; fn; params } ->
        Hashtbl.replace layouts dst (layout src);
        let call =
          match String.lowercase_ascii fn with
          | "stl_t" ->
              (* The paper's Matlab fragment assumes a trend-isolating
                 library acting on vectors. *)
              Printf.sprintf "%s = isolateTrend(%s);" dst src
          | _ ->
              Printf.sprintf "%s = %s(%s%s);" dst fn src
                (String.concat "" (List.map (Printf.sprintf ", %g") params))
        in
        [ call ]
    | Script.Const_frame { dst; cols; rows } ->
        Hashtbl.replace layouts dst cols;
        [
          Printf.sprintf "%s = [%s];" dst
            (String.concat "; "
               (List.map
                  (fun row -> String.concat " " (List.map lit row))
                  rows));
        ]
  in
  try Ok (String.concat "\n" (List.concat_map line script) ^ "\n")
  with Print_error msg -> Error msg
