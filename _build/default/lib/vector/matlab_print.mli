open Matrix

(** Matlab surface syntax for script IR (paper, Section 5.2):
    position-oriented matrix code with [join] and element-wise
    operators, like the paper's fragment

    {v
    tmp=join(PQR, 1:2, RGDPPC, 1:2)
    tmp(:,5)=tmp(:,3) .* tmp(:,4)
    TGDP=[tmp(:,1) tmp(:,2) tmp(:,5)]
    v}

    Column positions are recovered by simulating the frame layouts,
    which needs the source cube schemas. *)

val script_to_string :
  schemas:(string -> Schema.t option) -> Script.t -> (string, string) result
