open Matrix

(** Target-language-independent script IR for the R/Matlab targets.

    The paper shows that the R and Matlab translations of a tgd differ
    "essentially on syntax": we make that precise by generating one IR,
    executing it on the {!Frame} engine, and printing it in either
    surface syntax ({!R_print}, {!Matlab_print}). *)

type stmt =
  | Copy of { dst : string; src : string }
  | Filter_rows of { dst : string; src : string; conditions : (string * Value.t) list }
      (** Row selection on column = constant conditions (the EXL
          [filter] operator). *)
  | Merge of { dst : string; left : string; right : string; by : string list }
  | Merge_outer of { dst : string; left : string; right : string; by : string list }
      (** R's [merge(..., all = TRUE)], for the default-value variant of
          vectorial operators. *)
  | Assign_col of { frame : string; col : string; expr : Frame_ops.col_expr }
  | Select_cols of { dst : string; src : string; cols : (string * string) list }
      (** [(source column, destination column)] pairs, in order. *)
  | Group_agg of {
      dst : string;
      src : string;
      by : (string * Frame_ops.col_expr) list;
      aggr : Stats.Aggregate.t;
      measure : Frame_ops.col_expr;
    }
      (** Output columns: the [by] names plus ["value"]. *)
  | Apply_fn of { dst : string; src : string; fn : string; params : float list }
  | Const_frame of { dst : string; cols : string list; rows : Value.t list list }

type t = stmt list

val defined_frames : t -> string list
(** Frames assigned by the script, in order, without duplicates. *)
