open Matrix

(** Whole-frame operations mirroring the R/Matlab operators the paper's
    translations rely on: [merge] (join), element-wise column
    arithmetic, [aggregate], and series-level black boxes. *)

val merge : by:string list -> Frame.t -> Frame.t -> Frame.t
(** Inner join on the [by] columns (the R [merge] operator).  Non-key
    columns that exist on both sides are suffixed [_x] / [_y], as R
    does.  Rows with a [Null] key never match. *)

val merge_outer : by:string list -> Frame.t -> Frame.t -> Frame.t
(** Full outer variant (R's [merge(..., all = TRUE)]): unmatched rows of
    either side appear with [Null] in the other side's non-key columns;
    key columns are coalesced. *)

type col_expr =
  | Col of string
  | Lit of Value.t
  | Bin of Ops.Binop.t * col_expr * col_expr
  | Neg of col_expr
  | Scalar of string * float list * col_expr
  | Dim of string * col_expr
  | Shift_val of col_expr * int
      (** shift of the {e values} of a temporal column (q + 1). *)
  | Coalesce_col of col_expr * col_expr  (** first non-null *)

val eval_col : Frame.t -> col_expr -> Value.t array
(** Element-wise evaluation; undefined entries are [Null]. *)

val group_aggregate :
  by:(string * col_expr) list ->
  aggr:Stats.Aggregate.t ->
  measure:col_expr ->
  Frame.t ->
  Frame.t
(** The R [aggregate] operator: group rows by the evaluated key
    expressions, apply [aggr] to the bag of measures.  Rows are sorted
    first so first/last agree with the reference interpreter; rows with
    a [Null] key or measure are skipped; empty output keeps the key
    columns plus ["value"]. *)

val apply_blackbox :
  schema:Schema.t ->
  fn:string ->
  params:float list ->
  Frame.t ->
  (Frame.t, string) result
(** Series-level operator via the shared {!Ops.Blackbox} catalogue
    (frame → cube → operator → frame). *)
