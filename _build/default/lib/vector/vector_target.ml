open Matrix

let prepared checked =
  Result.bind (Mappings.Generate.of_checked checked)
    (fun (g : Mappings.Generate.generated) ->
      let mapping = g.Mappings.Generate.mapping in
      match Script_gen.script_of_mapping mapping with
      | Error msg -> Error (Exl.Errors.make ("vector target: " ^ msg))
      | Ok script -> Ok (mapping, script))

let run_program checked registry =
  Result.bind (prepared checked) (fun (mapping, script) ->
      let env = Script_interp.create_env () in
      List.iter
        (fun schema ->
          let cube =
            match Registry.find registry schema.Schema.name with
            | Some c -> Cube.with_schema schema c
            | None -> Cube.create schema
          in
          Script_interp.bind env schema.Schema.name (Frame.of_cube cube))
        mapping.Mappings.Mapping.source;
      let schema_lookup = Mappings.Mapping.target_schema mapping in
      match Script_interp.run ~schema_lookup env script with
      | Error msg -> Error (Exl.Errors.make ("vector target: " ^ msg))
      | Ok () ->
          Exl.Errors.protect (fun () ->
              let reg = Registry.create () in
              let elementary =
                List.map (fun s -> s.Schema.name) mapping.Mappings.Mapping.source
              in
              List.iter
                (fun schema ->
                  let name = schema.Schema.name in
                  let kind =
                    if List.mem name elementary then Registry.Elementary
                    else Registry.Derived
                  in
                  let cube =
                    match Script_interp.frame env name with
                    | Some f -> Frame.to_cube schema f
                    | None -> Cube.create schema
                  in
                  Registry.add reg kind cube)
                mapping.Mappings.Mapping.target;
              reg))

let r_script_of_program ?(io = false) checked =
  Result.map
    (fun (mapping, script) ->
      let body = R_print.script_to_string script in
      if not io then body
      else
        let sources =
          List.map
            (fun s ->
              Printf.sprintf "%s <- read.csv(\"%s.csv\")" s.Schema.name
                s.Schema.name)
            mapping.Mappings.Mapping.source
        in
        let finals =
          List.filter_map
            (fun s ->
              let name = s.Schema.name in
              if
                List.exists
                  (fun src -> src.Schema.name = name)
                  mapping.Mappings.Mapping.source
                || Exl.Normalize.is_temp name
              then None
              else
                Some
                  (Printf.sprintf "write.csv(%s, \"%s.csv\", row.names=FALSE)"
                     name name))
            mapping.Mappings.Mapping.target
        in
        String.concat "\n" sources ^ "\n" ^ body ^ String.concat "\n" finals
        ^ "\n")
    (prepared checked)

let matlab_script_of_program checked =
  Result.bind (prepared checked) (fun (mapping, script) ->
      match
        Matlab_print.script_to_string
          ~schemas:(Mappings.Mapping.target_schema mapping)
          script
      with
      | Ok s -> Ok s
      | Error msg -> Error (Exl.Errors.make ("matlab printer: " ^ msg)))
