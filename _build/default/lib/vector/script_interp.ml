open Matrix

type env = (string, Frame.t) Hashtbl.t

let create_env () = Hashtbl.create 32
let bind env name frame = Hashtbl.replace env name frame
let frame env name = Hashtbl.find_opt env name

let frame_exn env name =
  match frame env name with
  | Some f -> f
  | None -> invalid_arg ("Script_interp: no frame " ^ name)

exception Interp_error of string

let fail fmt = Printf.ksprintf (fun m -> raise (Interp_error m)) fmt

let get env name =
  match frame env name with
  | Some f -> f
  | None -> fail "no frame %s" name

let run_stmt ~schema_lookup env stmt =
  match stmt with
  | Script.Copy { dst; src } -> bind env dst (get env src)
  | Script.Filter_rows { dst; src; conditions } ->
      let f = get env src in
      let checks =
        List.map (fun (col, v) -> (Frame.column f col, v)) conditions
      in
      bind env dst
        (Frame.filter_rows f (fun i ->
             List.for_all (fun (col, v) -> Value.equal col.(i) v) checks))
  | Script.Merge { dst; left; right; by } ->
      bind env dst (Frame_ops.merge ~by (get env left) (get env right))
  | Script.Merge_outer { dst; left; right; by } ->
      bind env dst (Frame_ops.merge_outer ~by (get env left) (get env right))
  | Script.Assign_col { frame = name; col; expr } ->
      let f = get env name in
      bind env name (Frame.add_column f col (Frame_ops.eval_col f expr))
  | Script.Select_cols { dst; src; cols } ->
      bind env dst (Frame.select (get env src) cols)
  | Script.Group_agg { dst; src; by; aggr; measure } ->
      bind env dst (Frame_ops.group_aggregate ~by ~aggr ~measure (get env src))
  | Script.Apply_fn { dst; src; fn; params } -> (
      let schema =
        match schema_lookup src with
        | Some s -> s
        | None -> fail "no schema for frame %s" src
      in
      match Frame_ops.apply_blackbox ~schema ~fn ~params (get env src) with
      | Ok result -> bind env dst result
      | Error msg -> fail "%s" msg)
  | Script.Const_frame { dst; cols; rows } ->
      let n = List.length rows in
      let columns =
        List.mapi
          (fun ci name ->
            let col = Array.make n Value.Null in
            List.iteri (fun ri row -> col.(ri) <- List.nth row ci) rows;
            (name, col))
          cols
      in
      bind env dst (Frame.create columns)

let run ~schema_lookup env script =
  try
    List.iter (run_stmt ~schema_lookup env) script;
    Ok ()
  with
  | Interp_error msg -> Error msg
  | Invalid_argument msg -> Error msg
