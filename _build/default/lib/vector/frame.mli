open Matrix

(** Data frames: the matrix-oriented structure of the R/Matlab targets
    (paper, Section 5.2).  Column-oriented, equal-length named columns. *)

type t

val create : (string * Value.t array) list -> t
(** @raise Invalid_argument on duplicate names or ragged columns. *)

val empty : string list -> t
val columns : t -> string list
val length : t -> int  (** number of rows *)

val column : t -> string -> Value.t array
(** @raise Invalid_argument on unknown column. *)

val has_column : t -> string -> bool
val row : t -> int -> Value.t array
(** Values in column order. *)

val of_cube : Cube.t -> t
(** Dimension columns then the measure column, rows in sorted key
    order. *)

val to_cube : Schema.t -> t -> Cube.t
(** Columns are matched to the schema by name.
    @raise Invalid_argument on missing columns;
    @raise Cube.Functionality_violation on conflicting rows.
    Rows with a [Null] measure are dropped. *)

val select : t -> (string * string) list -> t
(** [select f [(src, dst); ...]] keeps columns [src] (in the given
    order) renamed to [dst]. *)

val add_column : t -> string -> Value.t array -> t
(** Functional update; replaces an existing column of the same name. *)

val filter_rows : t -> (int -> bool) -> t
val sort_rows : t -> t
(** Lexicographic by row (column order); deterministic basis for
    order-sensitive aggregates. *)

val append_rows : t -> t -> t
(** Same columns required. *)

val pp : Format.formatter -> t -> unit
