lib/ops/blackbox.ml: Array Calendar Cube Domain Float Fun Hashtbl List Matrix Option Printf Schema Stats String Tuple Value
