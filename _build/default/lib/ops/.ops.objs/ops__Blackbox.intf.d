lib/ops/blackbox.mli: Calendar Cube Matrix
