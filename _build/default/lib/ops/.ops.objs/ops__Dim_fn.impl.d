lib/ops/dim_fn.ml: Calendar Domain List Matrix Option Value
