lib/ops/scalar_fn.ml: Float Hashtbl List Matrix String Value
