lib/ops/binop.mli: Format Matrix Value
