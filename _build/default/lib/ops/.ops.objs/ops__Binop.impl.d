lib/ops/binop.ml: Float Format Matrix Value
