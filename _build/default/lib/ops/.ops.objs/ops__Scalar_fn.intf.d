lib/ops/scalar_fn.mli: Matrix Value
