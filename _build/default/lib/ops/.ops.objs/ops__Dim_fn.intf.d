lib/ops/dim_fn.mli: Calendar Domain Matrix Value
