open Matrix

(** Scalar functions on dimension values.

    "Structural elements ... for example, the application of the
    [quarter] function to a date dimension" (paper, Section 3): these
    re-map a temporal dimension to a coarser frequency inside a
    [group by] clause, as in statement (1) of the overview. *)

type t = private { name : string; target : Calendar.frequency }

val find : string -> t option
val find_exn : string -> t
val exists : string -> bool
val names : unit -> string list

val apply : t -> Value.t -> Value.t option
(** [Date] and [Period] inputs convert to the target frequency's period
    containing them; [None] when the input is not temporal or is a
    period strictly coarser than the target. *)

val result_domain : t -> Domain.t

val applicable : t -> Domain.t -> bool
(** Whether the function accepts values of the given dimension domain. *)
