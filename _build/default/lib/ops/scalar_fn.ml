open Matrix

type t = {
  name : string;
  min_params : int;
  max_params : int;
  param_first : bool;
  eval : float list -> float -> float;
}

let catalogue : (string, t) Hashtbl.t = Hashtbl.create 32

let register ~name ?(min_params = 0) ?(max_params = 0) ?(param_first = false)
    eval =
  if Hashtbl.mem catalogue name then
    invalid_arg ("Scalar_fn.register: duplicate function " ^ name);
  Hashtbl.replace catalogue name { name; min_params; max_params; param_first; eval }

let builtin name ?min_params ?max_params ?param_first eval =
  register ~name ?min_params ?max_params ?param_first eval

let () =
  builtin "ln" (fun _ x -> log x);
  builtin "log" ~max_params:1 ~param_first:true (fun ps x ->
      match ps with [ base ] -> log x /. log base | _ -> log x);
  builtin "exp" (fun _ x -> exp x);
  builtin "sqrt" (fun _ x -> sqrt x);
  builtin "abs" (fun _ x -> Float.abs x);
  builtin "round" (fun _ x -> Float.round x);
  builtin "floor" (fun _ x -> Float.floor x);
  builtin "ceil" (fun _ x -> Float.ceil x);
  builtin "sin" (fun _ x -> sin x);
  builtin "cos" (fun _ x -> cos x);
  builtin "tan" (fun _ x -> tan x);
  builtin "sign" (fun _ x -> if x > 0. then 1. else if x < 0. then -1. else 0.);
  builtin "incr" (fun _ x -> x +. 1.);
  builtin "recip" (fun _ x -> 1. /. x)

let find name = Hashtbl.find_opt catalogue name

let find_exn name =
  match find name with
  | Some f -> f
  | None -> invalid_arg ("Scalar_fn.find_exn: unknown function " ^ name)

let exists name = Hashtbl.mem catalogue name

let names () =
  Hashtbl.fold (fun k _ acc -> k :: acc) catalogue []
  |> List.sort String.compare

let apply t ~params x =
  let n = List.length params in
  if n < t.min_params || n > t.max_params then None
  else
    let r = t.eval params x in
    if Float.is_nan r || Float.abs r = Float.infinity then None else Some r

let apply_value t ~params v =
  match Value.to_float v with
  | None -> Value.Null
  | Some x -> (
      match apply t ~params x with
      | Some r -> Value.of_float r
      | None -> Value.Null)
