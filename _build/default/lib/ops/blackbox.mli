open Matrix

(** Black-box multi-tuple operator catalogue.

    The paper's second operator class: operators that "receive one cube
    in input and transform it by producing another cube", where each
    output tuple may depend on {e all} input tuples — seasonal
    decomposition [stl_T] being the flagship (tgd (4) of the overview
    has no variables for this reason).

    Operators act on the chronologically sorted measure vector of a
    time series.  As an extension (the paper's cubes-with-more-dims
    footnote), cubes with extra non-temporal dimensions are processed
    {e per slice}: the operator runs independently on each combination
    of the non-temporal dimension values. *)

type t = private {
  name : string;
  min_params : int;
  max_params : int;
  needs_period : bool;
      (** Requires a seasonal period: taken from the first parameter or
          inferred from the series frequency via [default_period]. *)
  eval : params:float list -> period:int option -> float array -> float array;
}

val find : string -> t option
(** Case-insensitive: the paper writes [stl_T], we store [stl_t]. *)

val find_exn : string -> t
val exists : string -> bool
val names : unit -> string list

val default_period : Calendar.frequency -> int option
(** Quarter -> 4, Month -> 12, Semester -> 2, Week -> 52, Day -> 7,
    Year -> None (annual data has no sub-year seasonality). *)

val apply_vector :
  t -> params:float list -> freq:Calendar.frequency option -> float array ->
  (float array, string) result
(** Runs the operator on a raw vector. NaNs in the output are preserved
    here; cube-level application drops them (partial functions). *)

val apply_cube : t -> params:float list -> Cube.t -> (Cube.t, string) result
(** Slice-wise application: requires exactly one temporal dimension;
    result has the same schema. Output tuples with NaN measures are
    dropped. *)

val register :
  name:string ->
  ?min_params:int ->
  ?max_params:int ->
  ?needs_period:bool ->
  (params:float list -> period:int option -> float array -> float array) ->
  unit
(** User-defined black boxes (the paper's user-defined stored functions
    / user-defined ETL steps). @raise Invalid_argument on duplicates. *)
