open Matrix

(** Scalar (tuple-level, measure) function catalogue.

    The paper's scalar operators: "sum, subtraction, product, division
    with a constant, increment, logarithm, exponential, trigonometric
    function" — one cube operand plus scalar parameters, applied to each
    measure independently.  The catalogue is shared by the EXL type
    checker, the reference interpreter, the chase, and every target
    engine, so a function admitted here is executable everywhere. *)

type t = private {
  name : string;
  min_params : int;
  max_params : int;
  param_first : bool;
      (** Whether parameters syntactically precede the operand, as in
          the paper's [log(2, e)]. *)
  eval : float list -> float -> float;
}

val find : string -> t option
val find_exn : string -> t
val exists : string -> bool
val names : unit -> string list

val apply : t -> params:float list -> float -> float option
(** Checks the parameter count and filters non-finite results
    (e.g. [log] of a non-positive measure leaves a hole). *)

val apply_value : t -> params:float list -> Value.t -> Value.t
(** Lifted to values; non-numeric input or undefined result is [Null]. *)

val register :
  name:string ->
  ?min_params:int ->
  ?max_params:int ->
  ?param_first:bool ->
  (float list -> float -> float) ->
  unit
(** Extension point: statisticians' user-defined scalar functions
    (the paper's "any system (or user) defined stored function").
    @raise Invalid_argument when the name is already taken. *)
