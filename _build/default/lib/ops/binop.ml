open Matrix

type t = Add | Sub | Mul | Div | Pow

let all = [ Add; Sub; Mul; Div; Pow ]

let to_string = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Pow -> "^"

let of_string = function
  | "+" -> Some Add
  | "-" -> Some Sub
  | "*" -> Some Mul
  | "/" -> Some Div
  | "^" -> Some Pow
  | _ -> None

let eval t x y =
  let r =
    match t with
    | Add -> x +. y
    | Sub -> x -. y
    | Mul -> x *. y
    | Div -> if y = 0. then Float.nan else x /. y
    | Pow -> x ** y
  in
  if Float.is_nan r then None else Some r

let eval_value t a b =
  match (Value.to_float a, Value.to_float b) with
  | Some x, Some y -> (
      match eval t x y with Some r -> Value.of_float r | None -> Value.Null)
  | _ -> Value.Null

let precedence = function Add | Sub -> 1 | Mul | Div -> 2 | Pow -> 3
let is_right_assoc = function Pow -> true | Add | Sub | Mul | Div -> false
let pp ppf t = Format.pp_print_string ppf (to_string t)
