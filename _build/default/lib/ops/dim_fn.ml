open Matrix

type t = { name : string; target : Calendar.frequency }

let all =
  [
    { name = "year"; target = Calendar.Year };
    { name = "semester"; target = Calendar.Semester };
    { name = "quarter"; target = Calendar.Quarter };
    { name = "month"; target = Calendar.Month };
    { name = "week"; target = Calendar.Week };
    { name = "day"; target = Calendar.Day };
  ]

let find name = List.find_opt (fun t -> t.name = name) all

let find_exn name =
  match find name with
  | Some t -> t
  | None -> invalid_arg ("Dim_fn.find_exn: unknown dimension function " ^ name)

let exists name = Option.is_some (find name)
let names () = List.map (fun t -> t.name) all

let apply t v =
  match v with
  | Value.Date d -> Some (Value.Period (Calendar.Period.of_date t.target d))
  | Value.Period p ->
      if Calendar.compare_frequency (Calendar.Period.freq p) t.target >= 0 then
        Some (Value.Period (Calendar.Period.convert t.target p))
      else None
  | Value.(Null | Bool _ | Int _ | Float _ | String _) -> None

let result_domain t =
  match t.target with
  | Calendar.Day -> Domain.Period (Some Calendar.Day)
  | f -> Domain.Period (Some f)

let applicable t = function
  | Domain.Date -> true
  | Domain.Period None -> true
  | Domain.Period (Some f) -> Calendar.compare_frequency f t.target >= 0
  | Domain.(Bool | Int | Float | String | Any) -> false
