open Matrix

(** Binary algebraic operators on measures.

    The paper's tuple-level vectorial/scalar operators with special
    syntax: result defined only where both operands are defined and the
    operation is meaningful (division by zero leaves a hole). *)

type t = Add | Sub | Mul | Div | Pow

val all : t list
val to_string : t -> string  (** "+", "-", "*", "/", "^" *)

val of_string : string -> t option

val eval : t -> float -> float -> float option
(** [None] where undefined: x/0, 0^negative, NaN results. *)

val eval_value : t -> Value.t -> Value.t -> Value.t
(** Lifted to values: non-numeric operands or undefined results give
    [Value.Null]. *)

val precedence : t -> int
(** 1 for +/-, 2 for * and /, 3 for ^. *)

val is_right_assoc : t -> bool  (** Only [Pow]. *)

val pp : Format.formatter -> t -> unit
