open Matrix

(** A schema mapping [M = (S, T, Σst, Σt)] (paper, Section 4.1).

    [S] holds a relation per cube of the EXL program; [T] is a renamed
    copy.  [Σst] copies source relations to the target; [Σt] holds one
    extended tgd per (normalized) statement, in statement order — which
    is also the stratification order the chase follows — plus the
    functionality egds. *)

type t = {
  source : Schema.t list;  (** elementary cube relations *)
  target : Schema.t list;  (** all cube relations (elementary + derived) *)
  st_tgds : Tgd.t list;  (** copy tgds for the elementary relations *)
  t_tgds : Tgd.t list;  (** statement tgds, in stratification order *)
  egds : Egd.t list;
}

val target_schema : t -> string -> Schema.t option
val target_schema_exn : t -> string -> Schema.t
val derived_order : t -> string list
(** Target relations in the order their defining tgds appear. *)

val tgd_for : t -> string -> Tgd.t option
(** The (unique) statement tgd defining the given relation. *)

val to_string : t -> string
(** The full mapping in logic notation — what the paper prints as
    tgds (1)-(5). *)

val pp : Format.formatter -> t -> unit
