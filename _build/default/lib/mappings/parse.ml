open Matrix

exception Parse_error of string

let fail fmt = Printf.ksprintf (fun m -> raise (Parse_error m)) fmt

(* ----- lexer ----- *)

type token =
  | IDENT of string
  | NUMBER of float
  | STRING of string
  | LPAREN
  | RPAREN
  | COMMA
  | SEMI
  | AND
  | OR
  | ARROW
  | EQUALS
  | OP of Ops.Binop.t
  | EOF

let token_name = function
  | IDENT s -> s
  | NUMBER f -> Printf.sprintf "%g" f
  | STRING s -> Printf.sprintf "%S" s
  | LPAREN -> "("
  | RPAREN -> ")"
  | COMMA -> ","
  | SEMI -> ";"
  | AND -> "∧"
  | OR -> "∨"
  | ARROW -> "→"
  | EQUALS -> "="
  | OP op -> Ops.Binop.to_string op
  | EOF -> "<eof>"

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let tokenize src =
  let n = String.length src in
  let out = ref [] in
  let i = ref 0 in
  let emit t = out := t :: !out in
  let starts_with prefix =
    !i + String.length prefix <= n
    && String.sub src !i (String.length prefix) = prefix
  in
  while !i < n do
    if starts_with "\xe2\x88\xa7" (* ∧ *) then begin
      emit AND;
      i := !i + 3
    end
    else if starts_with "\xe2\x88\xa8" (* ∨ *) then begin
      emit OR;
      i := !i + 3
    end
    else if starts_with "\xe2\x86\x92" (* → *) then begin
      emit ARROW;
      i := !i + 3
    end
    else if starts_with "->" then begin
      emit ARROW;
      i := !i + 2
    end
    else
      match src.[!i] with
      | ' ' | '\t' | '\n' | '\r' -> incr i
      | '&' ->
          emit AND;
          incr i
      | '|' ->
          emit OR;
          incr i
      | '(' ->
          emit LPAREN;
          incr i
      | ')' ->
          emit RPAREN;
          incr i
      | ',' ->
          emit COMMA;
          incr i
      | ';' ->
          emit SEMI;
          incr i
      | '=' ->
          emit EQUALS;
          incr i
      | '+' ->
          emit (OP Ops.Binop.Add);
          incr i
      | '*' ->
          emit (OP Ops.Binop.Mul);
          incr i
      | '/' ->
          emit (OP Ops.Binop.Div);
          incr i
      | '^' ->
          emit (OP Ops.Binop.Pow);
          incr i
      | '-' ->
          emit (OP Ops.Binop.Sub);
          incr i
      | '"' ->
          let buf = Buffer.create 16 in
          incr i;
          let rec loop () =
            if !i >= n then fail "unterminated string literal"
            else
              match src.[!i] with
              | '"' -> incr i
              | '\\' when !i + 1 < n ->
                  Buffer.add_char buf src.[!i + 1];
                  i := !i + 2;
                  loop ()
              | c ->
                  Buffer.add_char buf c;
                  incr i;
                  loop ()
          in
          loop ();
          emit (STRING (Buffer.contents buf))
      | c when is_digit c ->
          let start = !i in
          while
            !i < n
            && (is_digit src.[!i] || src.[!i] = '.'
               || src.[!i] = 'e' || src.[!i] = 'E'
               || (src.[!i] = '-' && !i > start && (src.[!i - 1] = 'e' || src.[!i - 1] = 'E')))
          do
            incr i
          done;
          (* "2024Q1"-style period literals: digits followed by idents *)
          if !i < n && is_ident_start src.[!i] then begin
            while !i < n && is_ident_char src.[!i] do
              incr i
            done;
            let text = String.sub src start (!i - start) in
            match Calendar.Period.of_string text with
            | Some _ -> emit (STRING text) (* re-interpreted below *)
            | None -> fail "bad literal %s" text
          end
          else
            let text = String.sub src start (!i - start) in
            (match float_of_string_opt text with
            | Some f -> emit (NUMBER f)
            | None -> fail "bad number %s" text)
      | c when is_ident_start c ->
          let start = !i in
          while !i < n && is_ident_char src.[!i] do
            incr i
          done;
          emit (IDENT (String.sub src start (!i - start)))
      | c -> fail "unexpected character %C" c
  done;
  emit EOF;
  Array.of_list (List.rev !out)

(* ----- parser ----- *)

type state = { tokens : token array; mutable pos : int }

let peek st = st.tokens.(st.pos)
let advance st = if st.pos < Array.length st.tokens - 1 then st.pos <- st.pos + 1

let expect st tok =
  if peek st = tok then advance st
  else fail "expected %s but found %s" (token_name tok) (token_name (peek st))

let ident st =
  match peek st with
  | IDENT s ->
      advance st;
      s
  | t -> fail "expected an identifier, found %s" (token_name t)

(* An atom argument: a term, or an aggregate application marker. *)
type arg = A_term of Term.t | A_agg of Stats.Aggregate.t * string

let const_of_string text =
  match Calendar.Period.of_string text with
  | Some p when String.contains text 'Q' || String.contains text 'M'
                || String.contains text 'W' || String.contains text 'S'
                || String.contains text '-' ->
      Term.Const (Value.Period p)
  | _ -> (
      match Calendar.Date.of_string text with
      | Some d -> Term.Const (Value.Date d)
      | None -> Term.Const (Value.String text))

let rec parse_term st min_prec =
  let lhs = parse_unary st in
  climb st lhs min_prec

and climb st lhs min_prec =
  match peek st with
  | OP op when Ops.Binop.precedence op >= min_prec ->
      advance st;
      let next =
        if Ops.Binop.is_right_assoc op then Ops.Binop.precedence op
        else Ops.Binop.precedence op + 1
      in
      let rhs = parse_term st next in
      climb st (Term.Binapp (op, lhs, rhs)) min_prec
  | _ -> lhs

and parse_unary st =
  match peek st with
  | OP Ops.Binop.Sub ->
      advance st;
      Term.Neg (parse_unary st)
  | _ -> parse_primary st

and parse_primary st =
  match peek st with
  | NUMBER f ->
      advance st;
      Term.Const (Value.Float f)
  | STRING text ->
      advance st;
      const_of_string text
  | LPAREN ->
      advance st;
      let t = parse_term st 1 in
      expect st RPAREN;
      t
  | IDENT name -> (
      advance st;
      match peek st with
      | LPAREN ->
          advance st;
          let rec args acc =
            let a = parse_term st 1 in
            if peek st = COMMA then begin
              advance st;
              args (a :: acc)
            end
            else List.rev (a :: acc)
          in
          let arguments = if peek st = RPAREN then [] else args [] in
          expect st RPAREN;
          classify_fn name arguments
      | _ -> Term.Var name)
  | t -> fail "expected a term, found %s" (token_name t)

and classify_fn name args =
  let lname = String.lowercase_ascii name in
  if lname = "coalesce" then
    match args with
    | [ a; b ] -> Term.Coalesce (a, b)
    | _ -> fail "coalesce expects two arguments"
  else if Ops.Dim_fn.exists lname then
    match args with
    | [ a ] -> Term.Dim_fn (lname, a)
    | _ -> fail "%s expects one argument" name
  else if Ops.Scalar_fn.exists lname then
    let rec split params = function
      | [ last ] -> (List.rev params, last)
      | Term.Const c :: rest when Value.to_float c <> None ->
          split (Option.get (Value.to_float c) :: params) rest
      | _ -> fail "unsupported argument shape for %s" name
    in
    match args with
    | [] -> fail "%s expects arguments" name
    | _ ->
        let params, operand = split [] args in
        Term.Scalar_fn (lname, params, operand)
  else fail "unknown function %s in a term" name

let parse_arg st =
  (* aggregate application or plain term *)
  match peek st with
  | IDENT name
    when Stats.Aggregate.of_string (String.lowercase_ascii name) <> None
         && st.pos + 1 < Array.length st.tokens
         && st.tokens.(st.pos + 1) = LPAREN -> (
      let aggr = Option.get (Stats.Aggregate.of_string (String.lowercase_ascii name)) in
      advance st;
      advance st;
      let v = ident st in
      expect st RPAREN;
      A_agg (aggr, v))
  | _ -> A_term (parse_term st 1)

let parse_atom_args st =
  expect st LPAREN;
  let rec loop acc =
    let a = parse_arg st in
    if peek st = COMMA then begin
      advance st;
      loop (a :: acc)
    end
    else List.rev (a :: acc)
  in
  let args = if peek st = RPAREN then [] else loop [] in
  expect st RPAREN;
  args

let terms_only args =
  List.map
    (function
      | A_term t -> t
      | A_agg _ -> fail "aggregate application only allowed in an rhs atom")
    args

(* decompose an outer-combine measure:
   coalesce(m1, d) OP coalesce(m2, d) *)
let decompose_outer_measure = function
  | Term.Binapp
      (op, Term.Coalesce (Term.Var _, Term.Const d1), Term.Coalesce (Term.Var _, Term.Const d2))
    when Value.equal d1 d2 -> (
      match Value.to_float d1 with
      | Some default -> Some (op, default)
      | None -> None)
  | _ -> None

let parse_tgd_inner st =
  (* empty-lhs tgd: "→ C(...)" *)
  if peek st = ARROW then begin
    advance st;
    let target = ident st in
    let args = terms_only (parse_atom_args st) in
    Tgd.Tuple_level { lhs = []; rhs = Tgd.atom target args }
  end
  else begin
    let first = ident st in
    if peek st = ARROW then begin
      (* table function: GDP → GDPT(stl_t(GDP)) — or (rare) a copy of a
         zero-dimensional cube, which generated mappings never print *)
      advance st;
      let target = ident st in
      expect st LPAREN;
      let fn = ident st in
      expect st LPAREN;
      let source = ident st in
      let params = ref [] in
      while peek st = SEMI || peek st = COMMA do
        advance st;
        match peek st with
        | NUMBER f ->
            advance st;
            params := f :: !params
        | t -> fail "expected a parameter, found %s" (token_name t)
      done;
      expect st RPAREN;
      expect st RPAREN;
      if source <> first then
        fail "table function source %s does not match lhs %s" source first;
      if not (Ops.Blackbox.exists fn) then
        fail "unknown black-box operator %s" fn;
      Tgd.Table_fn { fn = String.lowercase_ascii fn; params = List.rev !params; source; target }
    end
    else begin
      let first_atom = Tgd.atom first (terms_only (parse_atom_args st)) in
      match peek st with
      | OR ->
          advance st;
          let right_rel = ident st in
          let right = Tgd.atom right_rel (terms_only (parse_atom_args st)) in
          expect st ARROW;
          let target = ident st in
          let rhs_args = terms_only (parse_atom_args st) in
          let measure =
            match List.rev rhs_args with
            | m :: _ -> m
            | [] -> fail "outer combine needs a measure term"
          in
          (match decompose_outer_measure measure with
          | Some (op, default) ->
              Tgd.Outer_combine { left = first_atom; right; op; default; target }
          | None ->
              fail "outer-combine rhs must be coalesce(m1, d) OP coalesce(m2, d)")
      | _ ->
          let rec more_atoms acc =
            if peek st = AND then begin
              advance st;
              let rel = ident st in
              let atom = Tgd.atom rel (terms_only (parse_atom_args st)) in
              more_atoms (atom :: acc)
            end
            else List.rev acc
          in
          let lhs = more_atoms [ first_atom ] in
          expect st ARROW;
          let target = ident st in
          let rhs_args = parse_atom_args st in
          (* aggregation if the last rhs arg is an aggregate application *)
          let rec split_last acc = function
            | [ last ] -> (List.rev acc, last)
            | x :: rest -> split_last (x :: acc) rest
            | [] -> fail "empty rhs atom"
          in
          let front, last = split_last [] rhs_args in
          (match last with
          | A_agg (aggr, measure) -> (
              match lhs with
              | [ source ] ->
                  Tgd.Aggregation
                    { source; group_by = terms_only front; aggr; measure; target }
              | _ -> fail "aggregation tgds have a single lhs atom")
          | A_term _ ->
              Tgd.Tuple_level { lhs; rhs = Tgd.atom target (terms_only rhs_args) })
    end
  end

let wrap f src =
  try
    let st = { tokens = tokenize src; pos = 0 } in
    let result = f st in
    (match peek st with
    | EOF -> ()
    | t -> fail "unexpected %s after the end" (token_name t));
    Ok result
  with Parse_error msg -> Error msg

let tgd_of_string src = wrap parse_tgd_inner src
let term_of_string src = wrap (fun st -> parse_term st 1) src

(* listing: skip comments, blank lines, numbering, egds *)
let tgds_of_string src =
  let lines = String.split_on_char '\n' src in
  let strip line =
    let line = String.trim line in
    (* drop a leading "(n)" numbering *)
    if String.length line > 0 && line.[0] = '(' then
      match String.index_opt line ')' with
      | Some close
        when String.for_all
               (fun c -> is_digit c)
               (String.sub line 1 (close - 1))
             && close > 1 ->
          String.trim (String.sub line (close + 1) (String.length line - close - 1))
      | _ -> line
    else line
  in
  let is_egd line =
    (* ... → (y1 = y2) *)
    match String.index_opt line '=' with
    | Some _ ->
        let len = String.length line in
        len > 0 && line.[len - 1] = ')'
        && (match String.rindex_opt line '(' with
           | Some o -> String.contains_from line o '='
           | None -> false)
        &&
        (* the rhs parenthesis group contains '=' directly *)
        (match String.rindex_opt line '(' with
        | Some o ->
            let inner = String.sub line (o + 1) (len - o - 2) in
            String.contains inner '='
        | None -> false)
    | None -> false
  in
  let rec loop acc = function
    | [] -> Ok (List.rev acc)
    | line :: rest -> (
        let line = strip line in
        if line = "" then loop acc rest
        else if String.length line >= 2 && String.sub line 0 2 = "--" then
          loop acc rest
        else if is_egd line then loop acc rest
        else
          match tgd_of_string line with
          | Ok tgd -> loop (tgd :: acc) rest
          | Error msg -> Error (Printf.sprintf "%s\nin line: %s" msg line))
  in
  loop [] lines
