(** Stratification of statement tgds (paper, Section 4.2).

    The chase applies tgds "by completely applying the rules
    corresponding to one statement, before considering the next one".
    The statement order is already a valid total order; this module
    validates it and computes the coarser level structure (which tgds
    could run in parallel — used by the dispatcher). *)

val check : Mapping.t -> (unit, string) result
(** Every tgd's source relations must be source-schema relations or
    targets of earlier tgds, and no relation may be targeted twice. *)

val levels : Mapping.t -> (string * int) list
(** Dependency depth per target relation: elementary = 0, derived =
    1 + max over sources. *)

val strata : Mapping.t -> Tgd.t list list
(** Tgds grouped by level, in increasing level order; tgds within one
    stratum touch disjoint targets and depend only on earlier strata,
    so they can execute in any order (or in parallel). *)
