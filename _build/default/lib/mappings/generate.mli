(** Schema-mapping generation from EXL programs (paper, Section 4.1).

    The input program is normalized to one operator per statement, and
    each normalized statement becomes exactly one extended tgd.  The
    resulting mapping together with an instance of the elementary cubes
    forms the data-exchange problem the chase solves ({!Chase} lives in
    its own library). *)

type generated = {
  mapping : Mapping.t;
  normalized : Exl.Typecheck.checked;
      (** The normalized program the tgds were generated from — needed
          by consumers that must resolve temp-cube schemas. *)
}

val of_checked : Exl.Typecheck.checked -> (generated, Exl.Errors.t) result
(** Normalizes first when needed. *)

val of_source : string -> (generated, Exl.Errors.t) result
(** Parse, check, normalize, generate. *)

val tgd_of_stmt :
  Exl.Typecheck.Env.t -> Exl.Ast.stmt -> (Tgd.t, Exl.Errors.t) Stdlib.result
(** One simple (single-operator) statement to one tgd; exposed for
    tests. *)
