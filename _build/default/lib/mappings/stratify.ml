let check (m : Mapping.t) =
  let known = Hashtbl.create 32 in
  List.iter
    (fun s -> Hashtbl.replace known s.Matrix.Schema.name ())
    m.Mapping.source;
  let rec loop = function
    | [] -> Ok ()
    | tgd :: rest ->
        let target = Tgd.target_relation tgd in
        let missing =
          List.filter
            (fun r -> not (Hashtbl.mem known r))
            (Tgd.source_relations tgd)
        in
        if missing <> [] then
          Error
            (Printf.sprintf
               "tgd for %s uses relation(s) %s before they are defined" target
               (String.concat ", " missing))
        else if Hashtbl.mem known target then
          Error (Printf.sprintf "relation %s is defined twice" target)
        else begin
          Hashtbl.replace known target ();
          loop rest
        end
  in
  loop m.Mapping.t_tgds

let levels (m : Mapping.t) =
  let level = Hashtbl.create 32 in
  List.iter
    (fun s -> Hashtbl.replace level s.Matrix.Schema.name 0)
    m.Mapping.source;
  List.iter
    (fun tgd ->
      let sources = Tgd.source_relations tgd in
      let max_src =
        List.fold_left
          (fun acc r ->
            match Hashtbl.find_opt level r with
            | Some l -> max acc l
            | None -> acc)
          0 sources
      in
      Hashtbl.replace level (Tgd.target_relation tgd) (max_src + 1))
    m.Mapping.t_tgds;
  List.map
    (fun tgd ->
      let t = Tgd.target_relation tgd in
      (t, Hashtbl.find level t))
    m.Mapping.t_tgds

let strata (m : Mapping.t) =
  let lv = levels m in
  let max_level = List.fold_left (fun acc (_, l) -> max acc l) 0 lv in
  List.filter_map
    (fun level ->
      let group =
        List.filter
          (fun tgd -> List.assoc (Tgd.target_relation tgd) lv = level)
          m.Mapping.t_tgds
      in
      if group = [] then None else Some group)
    (List.init max_level (fun i -> i + 1))
