open Matrix

(** Terms of the extended dependency language.

    Classical tgds only allow variables and constants; the paper extends
    them with scalar expressions "for the measure or for one of the
    dimensions" (Section 4.1) — e.g. [3 * y], [quarter(t)], [t - 1].
    Terms are those expressions. *)

type t =
  | Var of string
  | Const of Value.t
  | Shifted of t * int
      (** Time shift on a temporal dimension term: [q - 1] in the
          paper's tgd (5) is [Shifted (Var "q", -1)]. *)
  | Dim_fn of string * t  (** [quarter(t)] in tgd (1). *)
  | Scalar_fn of string * float list * t  (** [log(2, y)]. *)
  | Binapp of Ops.Binop.t * t * t  (** [y1 * y2], [100 * y]. *)
  | Neg of t
  | Coalesce of t * t
      (** First defined (non-null) value — used by the outer-combine
          variant of vectorial operators (default values for missing
          tuples). *)

val vars : t -> string list
(** Variables occurring, without duplicates, left to right. *)

val is_var : t -> bool

val substitute : (string -> t option) -> t -> t
(** Capture-avoiding is trivial here (no binders): replace variables
    by terms. *)

val rename : prefix:string -> t -> t
(** Prefix every variable name (used to freshen a tgd's variables
    before composing it with another). *)

val normalize_shift : t -> t
(** Rewrite [Shifted] into the plain arithmetic a parsed-back term
    carries ([t + 1] / [t - 1]); [eval] treats both identically. *)

val eval : (string -> Value.t option) -> t -> Value.t option
(** Evaluate under a variable assignment; [None] when a variable is
    unbound or an operation is undefined (division by zero, dimension
    function on a non-temporal value, ...). *)

val equal : t -> t -> bool
val to_string : t -> string
(** Paper-style notation: [q - 1], [quarter(t)], [y1 * y2],
    [(y1 - y2) * 100 / y1]. *)

val pp : Format.formatter -> t -> unit
