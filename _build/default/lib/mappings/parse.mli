(** Parser for the tgd logic notation.

    Reads back exactly what {!Tgd.to_string} / {!Mapping.to_string}
    print — so mappings can be stored as text in a metadata catalog, or
    authored by hand and handed to any target translator directly.
    Both the Unicode connectives (∧, →, ∨) and ASCII spellings
    ([&], [->], [|]) are accepted; comment lines ([--]), blank lines,
    leading "(n)" numbering and functionality-egd lines are skipped by
    {!tgds_of_string}. *)

val tgd_of_string : string -> (Tgd.t, string) result

val tgds_of_string : string -> (Tgd.t list, string) result
(** Parses a whole listing (e.g. the output of
    {!Mapping.to_string}). *)

val term_of_string : string -> (Term.t, string) result
