open Matrix

type t = { relation : string; dims : int }

let of_schema s = { relation = s.Schema.name; dims = Schema.arity s }

let violations _t cube =
  (* A Cube.t is keyed by dimension tuple, so functionality holds by
     construction; the chase checks egds on raw fact sets instead. *)
  ignore cube;
  []

let to_string t =
  let vars = List.init t.dims (fun i -> Printf.sprintf "x%d" (i + 1)) in
  let args y = String.concat ", " (vars @ [ y ]) in
  Printf.sprintf "%s(%s) ∧ %s(%s) → (y1 = y2)" t.relation (args "y1")
    t.relation (args "y2")

let pp ppf t = Format.pp_print_string ppf (to_string t)
