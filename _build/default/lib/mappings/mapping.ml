open Matrix

type t = {
  source : Schema.t list;
  target : Schema.t list;
  st_tgds : Tgd.t list;
  t_tgds : Tgd.t list;
  egds : Egd.t list;
}

let target_schema t name =
  List.find_opt (fun s -> s.Schema.name = name) t.target

let target_schema_exn t name =
  match target_schema t name with
  | Some s -> s
  | None -> invalid_arg ("Mapping.target_schema_exn: unknown relation " ^ name)

let derived_order t = List.map Tgd.target_relation t.t_tgds

let tgd_for t name =
  List.find_opt (fun tgd -> Tgd.target_relation tgd = name) t.t_tgds

let to_string t =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "-- source schema S\n";
  List.iter
    (fun s -> Buffer.add_string buf ("--   " ^ Schema.to_string s ^ "\n"))
    t.source;
  Buffer.add_string buf "-- statement tgds (stratification order)\n";
  List.iteri
    (fun i tgd ->
      Buffer.add_string buf (Printf.sprintf "(%d) %s\n" (i + 1) (Tgd.to_string tgd)))
    t.t_tgds;
  Buffer.add_string buf "-- functionality egds\n";
  List.iter
    (fun egd -> Buffer.add_string buf ("    " ^ Egd.to_string egd ^ "\n"))
    t.egds;
  Buffer.contents buf

let pp ppf t = Format.pp_print_string ppf (to_string t)
