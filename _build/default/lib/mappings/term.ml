open Matrix

type t =
  | Var of string
  | Const of Value.t
  | Shifted of t * int
  | Dim_fn of string * t
  | Scalar_fn of string * float list * t
  | Binapp of Ops.Binop.t * t * t
  | Neg of t
  | Coalesce of t * t

let vars t =
  let seen = Hashtbl.create 8 in
  let out = ref [] in
  let rec go = function
    | Var v ->
        if not (Hashtbl.mem seen v) then begin
          Hashtbl.add seen v ();
          out := v :: !out
        end
    | Const _ -> ()
    | Shifted (t, _) | Dim_fn (_, t) | Scalar_fn (_, _, t) | Neg t -> go t
    | Binapp (_, a, b) | Coalesce (a, b) ->
        go a;
        go b
  in
  go t;
  List.rev !out

let is_var = function Var _ -> true | _ -> false

let rec substitute f = function
  | Var v as t -> ( match f v with Some t' -> t' | None -> t)
  | Const _ as t -> t
  | Shifted (t, k) -> Shifted (substitute f t, k)
  | Dim_fn (fn, t) -> Dim_fn (fn, substitute f t)
  | Scalar_fn (fn, ps, t) -> Scalar_fn (fn, ps, substitute f t)
  | Binapp (op, a, b) -> Binapp (op, substitute f a, substitute f b)
  | Neg t -> Neg (substitute f t)
  | Coalesce (a, b) -> Coalesce (substitute f a, substitute f b)

let rename ~prefix t = substitute (fun v -> Some (Var (prefix ^ v))) t

let shift_value amount = function
  | Value.Period p -> Some (Value.Period (Calendar.Period.shift p amount))
  | Value.Date d -> Some (Value.Date (Calendar.Date.add_days d amount))
  | Value.(Null | Bool _ | Int _ | Float _ | String _) -> None

let rec eval env = function
  | Var v -> env v
  | Const c -> Some c
  | Shifted (t, k) -> Option.bind (eval env t) (shift_value k)
  | Dim_fn (fn, t) ->
      Option.bind (eval env t) (fun v ->
          Option.bind (Ops.Dim_fn.find fn) (fun f -> Ops.Dim_fn.apply f v))
  | Scalar_fn (fn, params, t) ->
      Option.bind (eval env t) (fun v ->
          Option.bind (Ops.Scalar_fn.find fn) (fun f ->
              match Ops.Scalar_fn.apply_value f ~params v with
              | Value.Null -> None
              | r -> Some r))
  | Binapp (op, a, b) ->
      Option.bind (eval env a) (fun va ->
          Option.bind (eval env b) (fun vb ->
              (* temporal +/- integer is a shift: the printed form of
                 [Shifted] is plain arithmetic, so parsed-back terms
                 must evaluate identically *)
              match (op, va, vb) with
              | ( (Ops.Binop.Add | Ops.Binop.Sub),
                  (Value.Period _ | Value.Date _),
                  (Value.Int _ | Value.Float _) ) ->
                  let k = Option.value ~default:0 (Value.to_int vb) in
                  shift_value (if op = Ops.Binop.Sub then -k else k) va
              | Ops.Binop.Add, (Value.Int _ | Value.Float _), (Value.Period _ | Value.Date _)
                ->
                  let k = Option.value ~default:0 (Value.to_int va) in
                  shift_value k vb
              | _ -> (
                  match Ops.Binop.eval_value op va vb with
                  | Value.Null -> None
                  | r -> Some r)))
  | Neg t ->
      Option.bind (eval env t) (fun v ->
          Option.map (fun f -> Value.of_float (-.f)) (Value.to_float v))
  | Coalesce (a, b) -> (
      match eval env a with
      | Some v when not (Value.is_null v) -> Some v
      | _ -> eval env b)

let rec equal a b =
  match (a, b) with
  | Var x, Var y -> x = y
  | Const x, Const y -> Value.equal x y
  | Shifted (x, k), Shifted (y, l) -> k = l && equal x y
  | Dim_fn (f, x), Dim_fn (g, y) -> f = g && equal x y
  | Scalar_fn (f, ps, x), Scalar_fn (g, qs, y) -> f = g && ps = qs && equal x y
  | Binapp (o, a1, b1), Binapp (p, a2, b2) -> o = p && equal a1 a2 && equal b1 b2
  | Neg x, Neg y -> equal x y
  | Coalesce (a1, b1), Coalesce (a2, b2) -> equal a1 a2 && equal b1 b2
  | ( (Var _ | Const _ | Shifted _ | Dim_fn _ | Scalar_fn _ | Binapp _ | Neg _
      | Coalesce _),
      _ ) ->
      false

let prec = function
  | Var _ | Const _ | Dim_fn _ | Scalar_fn _ | Coalesce _ -> 10
  | Neg _ -> 4
  | Shifted _ -> 1
  | Binapp (op, _, _) -> Ops.Binop.precedence op

let rec to_str ctx t =
  let s =
    match t with
    | Var v -> v
    | Const (Value.String text) -> Printf.sprintf "%S" text
    | Const c -> Value.to_string c
    | Shifted (t, k) ->
        if k >= 0 then Printf.sprintf "%s + %d" (to_str 2 t) k
        else Printf.sprintf "%s - %d" (to_str 2 t) (-k)
    | Dim_fn (fn, t) -> Printf.sprintf "%s(%s)" fn (to_str 0 t)
    | Scalar_fn (fn, [], t) -> Printf.sprintf "%s(%s)" fn (to_str 0 t)
    | Scalar_fn (fn, ps, t) ->
        Printf.sprintf "%s(%s, %s)" fn
          (String.concat ", " (List.map (Printf.sprintf "%g") ps))
          (to_str 0 t)
    | Binapp (op, a, b) ->
        let p = Ops.Binop.precedence op in
        let lc, rc = if Ops.Binop.is_right_assoc op then (p + 1, p) else (p, p + 1) in
        Printf.sprintf "%s %s %s" (to_str lc a) (Ops.Binop.to_string op)
          (to_str rc b)
    | Neg t -> "-" ^ to_str 4 t
    | Coalesce (a, b) ->
        Printf.sprintf "coalesce(%s, %s)" (to_str 0 a) (to_str 0 b)
  in
  if prec t < ctx then "(" ^ s ^ ")" else s

let to_string t = to_str 0 t
let pp ppf t = Format.pp_print_string ppf (to_string t)

let rec normalize_shift = function
  | Var _ as t -> t
  | Const _ as t -> t
  | Shifted (t, k) ->
      let base = normalize_shift t in
      if k >= 0 then Binapp (Ops.Binop.Add, base, Const (Value.Float (float_of_int k)))
      else Binapp (Ops.Binop.Sub, base, Const (Value.Float (float_of_int (-k))))
  | Dim_fn (f, t) -> Dim_fn (f, normalize_shift t)
  | Scalar_fn (f, ps, t) -> Scalar_fn (f, ps, normalize_shift t)
  | Binapp (op, a, b) -> Binapp (op, normalize_shift a, normalize_shift b)
  | Neg t -> Neg (normalize_shift t)
  | Coalesce (a, b) -> Coalesce (normalize_shift a, normalize_shift b)
