open Matrix
module Env = Exl.Typecheck.Env

type generated = {
  mapping : Mapping.t;
  normalized : Exl.Typecheck.checked;
}

let fresh_measure_var forbidden base =
  let rec loop i =
    let candidate = if i = 0 then base else Printf.sprintf "%s%d" base i in
    if List.mem candidate forbidden then loop (i + 1) else candidate
  in
  loop 0

let dim_vars schema = Schema.dim_names schema

(* The atom F(d1, ..., dn, m) using the cube's own dimension names as
   variables — shared names across atoms become join conditions, which
   is exactly the paper's repeated-variable convention. *)
let cube_atom schema measure_var =
  Tgd.atom schema.Schema.name
    (List.map (fun d -> Term.Var d) (dim_vars schema)
    @ [ Term.Var measure_var ])

let result_atom env lhs measure_term =
  let schema = Env.schema_exn env lhs in
  Tgd.atom lhs
    (List.map (fun d -> Term.Var d) (dim_vars schema) @ [ measure_term ])

let operand_schema env pos name =
  match Env.schema env name with
  | Some s -> s
  | None -> Exl.Errors.failf ~pos "unknown cube %s in normalized statement" name

let const_of_number f = Term.Const (Value.Float f)

let tgd_of_binop env (s : Exl.Ast.stmt) op a b =
  let pos = s.Exl.Ast.s_pos in
  match (a, b) with
  | Exl.Ast.Number x, Exl.Ast.Number y ->
      Tgd.Tuple_level
        {
          lhs = [];
          rhs =
            Tgd.atom s.Exl.Ast.lhs
              [ Term.Binapp (op, const_of_number x, const_of_number y) ];
        }
  | Exl.Ast.Cube_ref ca, Exl.Ast.Number y ->
      let sa = operand_schema env pos ca in
      let m = fresh_measure_var (dim_vars sa) "m" in
      Tgd.Tuple_level
        {
          lhs = [ cube_atom sa m ];
          rhs =
            result_atom env s.Exl.Ast.lhs
              (Term.Binapp (op, Term.Var m, const_of_number y));
        }
  | Exl.Ast.Number x, Exl.Ast.Cube_ref cb ->
      let sb = operand_schema env pos cb in
      let m = fresh_measure_var (dim_vars sb) "m" in
      Tgd.Tuple_level
        {
          lhs = [ cube_atom sb m ];
          rhs =
            result_atom env s.Exl.Ast.lhs
              (Term.Binapp (op, const_of_number x, Term.Var m));
        }
  | Exl.Ast.Cube_ref ca, Exl.Ast.Cube_ref cb ->
      let sa = operand_schema env pos ca in
      let sb = operand_schema env pos cb in
      let forbidden = dim_vars sa @ dim_vars sb in
      let m1 = fresh_measure_var forbidden "m1" in
      let m2 = fresh_measure_var (m1 :: forbidden) "m2" in
      Tgd.Tuple_level
        {
          lhs = [ cube_atom sa m1; cube_atom sb m2 ];
          rhs =
            result_atom env s.Exl.Ast.lhs
              (Term.Binapp (op, Term.Var m1, Term.Var m2));
        }
  | _ ->
      Exl.Errors.fail ~pos
        "statement is not normalized: binary operator over non-atomic operands"

let tgd_of_shift env (s : Exl.Ast.stmt) (c : Exl.Ast.call) =
  let pos = c.Exl.Ast.pos in
  let operand, dim, amount =
    match c.Exl.Ast.args with
    | [ Exl.Ast.Cube_ref a; k ] when Exl.Ast.as_number k <> None ->
        (a, None, int_of_float (Option.get (Exl.Ast.as_number k)))
    | [ Exl.Ast.Cube_ref a; Exl.Ast.Cube_ref d; k ]
      when Exl.Ast.as_number k <> None ->
        (a, Some d, int_of_float (Option.get (Exl.Ast.as_number k)))
    | _ -> Exl.Errors.fail ~pos "malformed or non-normalized shift"
  in
  let schema = operand_schema env pos operand in
  let tdim =
    match dim with
    | Some d -> d
    | None -> (
        match Schema.time_dims schema with
        | [ d ] -> d
        | _ -> Exl.Errors.fail ~pos "shift: ambiguous temporal dimension")
  in
  let m = fresh_measure_var (dim_vars schema) "m" in
  (* A tuple at time t lands at time t + k in the result: the lag
     convention, C(t, y) → C'(t + k, y). *)
  let rhs_args =
    List.map
      (fun d ->
        if d = tdim then Term.Shifted (Term.Var d, amount) else Term.Var d)
      (dim_vars (Env.schema_exn env s.Exl.Ast.lhs))
    @ [ Term.Var m ]
  in
  Tgd.Tuple_level
    { lhs = [ cube_atom schema m ]; rhs = Tgd.atom s.Exl.Ast.lhs rhs_args }

let tgd_of_agg env (s : Exl.Ast.stmt) (c : Exl.Ast.call) aggr =
  let pos = c.Exl.Ast.pos in
  let operand =
    match c.Exl.Ast.args with
    | [ Exl.Ast.Cube_ref a ] -> a
    | _ -> Exl.Errors.failf ~pos "malformed or non-normalized %s" c.Exl.Ast.fn
  in
  let schema = operand_schema env pos operand in
  let m = fresh_measure_var (dim_vars schema) "m" in
  let group_by =
    List.map
      (fun (item : Exl.Ast.dim_item) ->
        match item.Exl.Ast.fn with
        | None -> Term.Var item.Exl.Ast.src
        | Some fn -> Term.Dim_fn (fn, Term.Var item.Exl.Ast.src))
      (Option.value ~default:[] c.Exl.Ast.group_by)
  in
  Tgd.Aggregation
    {
      source = cube_atom schema m;
      group_by;
      aggr;
      measure = m;
      target = s.Exl.Ast.lhs;
    }

let tgd_of_scalar env (s : Exl.Ast.stmt) (c : Exl.Ast.call) =
  let pos = c.Exl.Ast.pos in
  match Exl.Ast.split_call_args c with
  | Error msg -> Exl.Errors.fail ~pos msg
  | Ok (params, operand) -> (
      match operand with
      | Some (Exl.Ast.Cube_ref a) ->
          let schema = operand_schema env pos a in
          let m = fresh_measure_var (dim_vars schema) "m" in
          Tgd.Tuple_level
            {
              lhs = [ cube_atom schema m ];
              rhs =
                result_atom env s.Exl.Ast.lhs
                  (Term.Scalar_fn (c.Exl.Ast.fn, params, Term.Var m));
            }
      | Some _ ->
          Exl.Errors.fail ~pos "statement is not normalized: nested operand"
      | None -> (
          match List.rev params with
          | x :: rest ->
              Tgd.Tuple_level
                {
                  lhs = [];
                  rhs =
                    Tgd.atom s.Exl.Ast.lhs
                      [
                        Term.Scalar_fn
                          (c.Exl.Ast.fn, List.rev rest, const_of_number x);
                      ];
                }
          | [] -> Exl.Errors.failf ~pos "%s is missing its operand" c.Exl.Ast.fn))

let default_for = function
  | Ops.Binop.Add | Ops.Binop.Sub -> 0.
  | Ops.Binop.Mul | Ops.Binop.Div | Ops.Binop.Pow -> 1.

let tgd_of_outer env (s : Exl.Ast.stmt) (c : Exl.Ast.call) op =
  let pos = c.Exl.Ast.pos in
  let a, b, default =
    match c.Exl.Ast.args with
    | [ Exl.Ast.Cube_ref a; Exl.Ast.Cube_ref b ] -> (a, b, default_for op)
    | [ Exl.Ast.Cube_ref a; Exl.Ast.Cube_ref b; d ]
      when Exl.Ast.as_number d <> None ->
        (a, b, Option.get (Exl.Ast.as_number d))
    | _ -> Exl.Errors.failf ~pos "malformed or non-normalized %s" c.Exl.Ast.fn
  in
  let sa = operand_schema env pos a in
  let sb = operand_schema env pos b in
  let forbidden = dim_vars sa @ dim_vars sb in
  let m1 = fresh_measure_var forbidden "m1" in
  let m2 = fresh_measure_var (m1 :: forbidden) "m2" in
  Tgd.Outer_combine
    {
      left = cube_atom sa m1;
      right = cube_atom sb m2;
      op;
      default;
      target = s.Exl.Ast.lhs;
    }

let tgd_of_filter env (s : Exl.Ast.stmt) (c : Exl.Ast.call) =
  let pos = c.Exl.Ast.pos in
  let operand =
    match c.Exl.Ast.args with
    | [ Exl.Ast.Cube_ref a ] -> a
    | _ -> Exl.Errors.fail ~pos "malformed or non-normalized filter"
  in
  let schema = operand_schema env pos operand in
  let m = fresh_measure_var (dim_vars schema) "m" in
  (* Selection becomes constants in the atom: the classical way tgds
     express conditions, e.g. DEPOSITS(m, s, "overnight", y) → ... *)
  let term_for dim =
    match List.assoc_opt dim c.Exl.Ast.conditions with
    | None -> Term.Var dim
    | Some literal -> (
        match Schema.dim_domain schema dim with
        | Some domain -> (
            match Exl.Ast.coerce_literal domain literal with
            | Some v -> Term.Const v
            | None ->
                Exl.Errors.failf ~pos "filter literal does not fit dimension %s"
                  dim)
        | None -> Exl.Errors.failf ~pos "filter: no dimension %s" dim)
  in
  let args = List.map term_for (dim_vars schema) @ [ Term.Var m ] in
  Tgd.Tuple_level
    {
      lhs = [ Tgd.atom schema.Schema.name args ];
      rhs = Tgd.atom s.Exl.Ast.lhs args;
    }

let tgd_of_blackbox env (s : Exl.Ast.stmt) (c : Exl.Ast.call) =
  let pos = c.Exl.Ast.pos in
  match Exl.Ast.split_call_args c with
  | Error msg -> Exl.Errors.fail ~pos msg
  | Ok (params, operand) -> (
      match operand with
      | Some (Exl.Ast.Cube_ref a) ->
          ignore (operand_schema env pos a);
          Tgd.Table_fn
            { fn = c.Exl.Ast.fn; params; source = a; target = s.Exl.Ast.lhs }
      | _ ->
          Exl.Errors.fail ~pos
            "statement is not normalized: black-box operand must be a cube name")

let tgd_of_stmt_exn env (s : Exl.Ast.stmt) =
  match s.Exl.Ast.rhs with
  | Exl.Ast.Number f ->
      Tgd.Tuple_level
        { lhs = []; rhs = Tgd.atom s.Exl.Ast.lhs [ const_of_number f ] }
  | Exl.Ast.Cube_ref a ->
      let schema = operand_schema env s.Exl.Ast.s_pos a in
      let m = fresh_measure_var (dim_vars schema) "m" in
      Tgd.Tuple_level
        {
          lhs = [ cube_atom schema m ];
          rhs = result_atom env s.Exl.Ast.lhs (Term.Var m);
        }
  | Exl.Ast.Neg (Exl.Ast.Number f) ->
      Tgd.Tuple_level
        { lhs = []; rhs = Tgd.atom s.Exl.Ast.lhs [ const_of_number (-.f) ] }
  | Exl.Ast.Neg (Exl.Ast.Cube_ref a) ->
      let schema = operand_schema env s.Exl.Ast.s_pos a in
      let m = fresh_measure_var (dim_vars schema) "m" in
      Tgd.Tuple_level
        {
          lhs = [ cube_atom schema m ];
          rhs = result_atom env s.Exl.Ast.lhs (Term.Neg (Term.Var m));
        }
  | Exl.Ast.Binop (op, a, b) -> tgd_of_binop env s op a b
  | Exl.Ast.Call c -> (
      match Exl.Ast.classify c.Exl.Ast.fn with
      | Exl.Ast.Shift_op -> tgd_of_shift env s c
      | Exl.Ast.Filter_op -> tgd_of_filter env s c
      | Exl.Ast.Outer_op op -> tgd_of_outer env s c op
      | Exl.Ast.Agg_op aggr -> tgd_of_agg env s c aggr
      | Exl.Ast.Scalar_op _ -> tgd_of_scalar env s c
      | Exl.Ast.Blackbox_op _ -> tgd_of_blackbox env s c
      | Exl.Ast.Unknown_op ->
          Exl.Errors.failf ~pos:c.Exl.Ast.pos "unknown operator %s" c.Exl.Ast.fn)
  | Exl.Ast.Neg _ ->
      Exl.Errors.fail ~pos:s.Exl.Ast.s_pos
        "statement is not normalized: negation of a non-atom"

let tgd_of_stmt env s =
  Exl.Errors.protect (fun () -> tgd_of_stmt_exn env s)

let of_checked checked =
  let normalized_result =
    if Exl.Normalize.is_normal checked.Exl.Typecheck.program then Ok checked
    else Exl.Normalize.checked checked
  in
  Result.bind normalized_result (fun normalized ->
      Exl.Errors.protect (fun () ->
          let env = normalized.Exl.Typecheck.env in
          let t_tgds =
            List.map (tgd_of_stmt_exn env) normalized.Exl.Typecheck.statements
          in
          let source = Exl.Typecheck.elementary_schemas normalized in
          let target =
            source @ Exl.Typecheck.derived_schemas normalized
          in
          let st_tgds =
            List.map
              (fun schema ->
                let m = fresh_measure_var (dim_vars schema) "m" in
                let a = cube_atom schema m in
                Tgd.Tuple_level { lhs = [ a ]; rhs = a })
              source
          in
          let egds = List.map Egd.of_schema target in
          {
            mapping = { Mapping.source; target; st_tgds; t_tgds; egds };
            normalized;
          }))

let of_source src = Result.bind (Exl.Program.load src) of_checked
