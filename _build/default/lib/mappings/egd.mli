open Matrix

(** Equality-generating dependencies enforcing cube functionality.

    For each cube [F(x1, ..., xn, y)] the paper adds
    [F(x1, ..., xn, y1) ∧ F(x1, ..., xn, y2) → (y1 = y2)].
    Section 4.2 argues these can never fail on chase results because
    every tgd computes the measure as a function of the dimensions; the
    chase checks them anyway (machine-checking the argument). *)

type t = { relation : string; dims : int }

val of_schema : Schema.t -> t

val violations : t -> Cube.t -> (Tuple.t * Value.t * Value.t) list
(** Always empty for cubes stored in our keyed representation — kept for
    the raw-fact instances used by the chase. *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit
