type atom = { rel : string; args : Term.t list }

type t =
  | Tuple_level of { lhs : atom list; rhs : atom }
  | Aggregation of {
      source : atom;
      group_by : Term.t list;
      aggr : Stats.Aggregate.t;
      measure : string;
      target : string;
    }
  | Table_fn of {
      fn : string;
      params : float list;
      source : string;
      target : string;
    }
  | Outer_combine of {
      left : atom;
      right : atom;
      op : Ops.Binop.t;
      default : float;
      target : string;
    }

let atom rel args = { rel; args }

let target_relation = function
  | Tuple_level { rhs; _ } -> rhs.rel
  | Aggregation { target; _ } -> target
  | Table_fn { target; _ } -> target
  | Outer_combine { target; _ } -> target

let dedup names =
  let seen = Hashtbl.create 8 in
  List.filter
    (fun n ->
      if Hashtbl.mem seen n then false
      else begin
        Hashtbl.add seen n ();
        true
      end)
    names

let source_relations = function
  | Tuple_level { lhs; _ } -> dedup (List.map (fun a -> a.rel) lhs)
  | Aggregation { source; _ } -> [ source.rel ]
  | Table_fn { source; _ } -> [ source ]
  | Outer_combine { left; right; _ } -> dedup [ left.rel; right.rel ]

let atom_vars a = dedup (List.concat_map Term.vars a.args)

let is_safe = function
  | Tuple_level { lhs; rhs } ->
      let bound = List.concat_map atom_vars lhs in
      List.for_all (fun v -> List.mem v bound) (atom_vars rhs)
  | Aggregation { source; group_by; measure; _ } ->
      let bound = atom_vars source in
      List.mem measure bound
      && List.for_all
           (fun t -> List.for_all (fun v -> List.mem v bound) (Term.vars t))
           group_by
  | Table_fn _ -> true
  | Outer_combine { left; right; _ } ->
      (* both atoms must use plain variables *)
      List.for_all Term.is_var left.args && List.for_all Term.is_var right.args

let atom_to_string a =
  Printf.sprintf "%s(%s)" a.rel
    (String.concat ", " (List.map Term.to_string a.args))

let to_string = function
  | Tuple_level { lhs = []; rhs } -> "→ " ^ atom_to_string rhs
  | Tuple_level { lhs; rhs } ->
      String.concat " ∧ " (List.map atom_to_string lhs)
      ^ " → " ^ atom_to_string rhs
  | Aggregation { source; group_by; aggr; measure; target } ->
      Printf.sprintf "%s → %s(%s%s%s(%s))" (atom_to_string source) target
        (String.concat ", " (List.map Term.to_string group_by))
        (if group_by = [] then "" else ", ")
        (Stats.Aggregate.to_string aggr)
        measure
  | Outer_combine { left; right; op; default; target } ->
      (* the target's dimensions are the left atom's dimension terms *)
      let dims =
        match List.rev left.args with
        | _measure :: rev_dims -> List.rev rev_dims
        | [] -> []
      in
      let measure_of (atom : atom) =
        match List.rev atom.args with m :: _ -> m | [] -> Term.Var "m"
      in
      let coalesced atom =
        Printf.sprintf "coalesce(%s, %g)"
          (Term.to_string (measure_of atom))
          default
      in
      Printf.sprintf "%s ∨ %s → %s(%s%s%s %s %s)" (atom_to_string left)
        (atom_to_string right) target
        (String.concat ", " (List.map Term.to_string dims))
        (if dims = [] then "" else ", ")
        (coalesced left) (Ops.Binop.to_string op) (coalesced right)
  | Table_fn { fn; params; source; target } ->
      let params_str =
        if params = [] then ""
        else
          "; " ^ String.concat ", " (List.map (Printf.sprintf "%g") params)
      in
      Printf.sprintf "%s → %s(%s(%s%s))" source target fn source params_str

let pp ppf t = Format.pp_print_string ppf (to_string t)

let equal_atom (a : atom) (b : atom) =
  a.rel = b.rel && List.equal Term.equal a.args b.args

let equal a b =
  match (a, b) with
  | Tuple_level t1, Tuple_level t2 ->
      List.equal equal_atom t1.lhs t2.lhs && equal_atom t1.rhs t2.rhs
  | Aggregation a1, Aggregation a2 ->
      equal_atom a1.source a2.source
      && List.equal Term.equal a1.group_by a2.group_by
      && a1.aggr = a2.aggr && a1.measure = a2.measure && a1.target = a2.target
  | Table_fn f1, Table_fn f2 ->
      f1.fn = f2.fn && f1.params = f2.params && f1.source = f2.source
      && f1.target = f2.target
  | Outer_combine o1, Outer_combine o2 ->
      equal_atom o1.left o2.left && equal_atom o1.right o2.right
      && o1.op = o2.op && o1.default = o2.default && o1.target = o2.target
  | (Tuple_level _ | Aggregation _ | Table_fn _ | Outer_combine _), _ -> false
