lib/mappings/generate.ml: Egd Exl List Mapping Matrix Ops Option Printf Result Schema Term Tgd Value
