lib/mappings/tgd.mli: Format Ops Stats Term
