lib/mappings/stratify.ml: Hashtbl List Mapping Matrix Printf String Tgd
