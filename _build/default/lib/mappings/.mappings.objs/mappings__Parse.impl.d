lib/mappings/parse.ml: Array Buffer Calendar List Matrix Ops Option Printf Stats String Term Tgd Value
