lib/mappings/mapping.ml: Buffer Egd Format List Matrix Printf Schema Tgd
