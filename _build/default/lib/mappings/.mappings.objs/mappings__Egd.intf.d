lib/mappings/egd.mli: Cube Format Matrix Schema Tuple Value
