lib/mappings/tgd.ml: Format Hashtbl List Ops Printf Stats String Term
