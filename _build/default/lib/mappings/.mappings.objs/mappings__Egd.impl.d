lib/mappings/egd.ml: Format List Matrix Printf Schema String
