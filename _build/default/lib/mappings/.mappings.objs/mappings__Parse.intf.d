lib/mappings/parse.mli: Term Tgd
