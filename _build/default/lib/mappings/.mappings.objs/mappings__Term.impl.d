lib/mappings/term.ml: Calendar Format Hashtbl List Matrix Ops Option Printf String Value
