lib/mappings/stratify.mli: Mapping Tgd
