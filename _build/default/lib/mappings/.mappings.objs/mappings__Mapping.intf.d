lib/mappings/mapping.mli: Egd Format Matrix Schema Tgd
