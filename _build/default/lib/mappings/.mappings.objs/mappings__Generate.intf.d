lib/mappings/generate.mli: Exl Mapping Stdlib Tgd
