lib/mappings/fuse.mli: Mapping Tgd
