lib/mappings/fuse.ml: Egd Exl List Mapping Matrix Option Printf Term Tgd
