lib/mappings/term.mli: Format Matrix Ops Value
