(** Tgd fusion: recombining single-operator tgds into complex ones.

    The paper notes that "in practice, our tool is able to simplify
    them" — statement (5)'s four operators yield one tgd,
    [GDPT(q, r1) ∧ GDPT(q-1, r2) → PCHNG(q, (r1 - r2) * 100 / r1)],
    instead of the four tgds of statements (5a)-(5d).  This pass
    performs that simplification at the mapping level: a tuple-level tgd
    defining a normalizer temporary used by exactly one other
    tuple-level tgd is inlined into its consumer.

    Fusion changes neither the final relations (machine-checked in
    tests) nor the source instance; it removes the temporary relations
    from the target schema.  The chase runs on the unfused mapping (the
    stratified correctness argument of Section 4.2 speaks about simple
    tgds); fusion feeds code generation, where fewer intermediate
    tables mean fewer materialized INSERTs. *)

val mapping : Mapping.t -> Mapping.t
(** Inline all fusable temporaries (to fixpoint). *)

val fuse_step :
  producer:Tgd.t -> consumer:Tgd.t -> Tgd.t option
(** One inlining step: [None] when the pair is not fusable (non
    tuple-level, or the argument terms on both sides of some position
    are complex). Exposed for tests. *)
