let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '&' -> Buffer.add_string buf "&amp;"
      | '"' -> Buffer.add_string buf "&quot;"
      | '\'' -> Buffer.add_string buf "&apos;"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let tag name body = Printf.sprintf "<%s>%s</%s>" name body name

let step_to_xml step =
  let detail =
    match step with
    | Step.Table_input { cube; _ } -> [ tag "table" (escape cube) ]
    | Step.Generate_rows { rows; _ } ->
        [ tag "limit" (string_of_int (List.length rows)) ]
    | Step.Filter_rows { conditions; _ } ->
        List.map
          (fun (f, v) ->
            tag "condition"
              (tag "leftvalue" (escape f)
              ^ tag "function" "="
              ^ tag "value" (escape (Mappings.Term.to_string (Mappings.Term.Const v)))))
          conditions
    | Step.Merge_join { keys; join; _ } ->
        List.map (fun k -> tag "key" (escape k)) keys
        @ [
            tag "join_type"
              (match join with `Inner -> "INNER" | `Full -> "FULL OUTER");
          ]
    | Step.Sort _ -> []
    | Step.Calculator { outputs; _ } ->
        List.map
          (fun (f, term) ->
            tag "calculation"
              (tag "field_name" (escape f)
              ^ tag "formula" (escape (Mappings.Term.to_string term))))
          outputs
    | Step.Group_by { keys; aggr; measure; _ } ->
        List.map (fun (k, _) -> tag "group_field" (escape k)) keys
        @ [
            tag "aggregate" (escape (Stats.Aggregate.to_string aggr));
            tag "subject" (escape (Mappings.Term.to_string measure));
          ]
    | Step.Table_function { fn; params; _ } ->
        tag "class" (escape fn)
        :: List.map (fun p -> tag "parameter" (Printf.sprintf "%g" p)) params
    | Step.Select_fields { fields; _ } ->
        List.map
          (fun (src, dst) ->
            tag "field" (tag "name" (escape src) ^ tag "rename" (escape dst)))
          fields
    | Step.Table_output { cube; _ } -> [ tag "table" (escape cube) ]
  in
  tag "step"
    (tag "name" (escape (Step.name step))
    ^ tag "type" (Step.kind step)
    ^ String.concat "" detail)

let hop_to_xml step =
  List.map
    (fun input ->
      tag "hop"
        (tag "from" (escape input) ^ tag "to" (escape (Step.name step))))
    (Step.inputs step)

let flow_to_xml flow =
  tag "transformation"
    (tag "info" (tag "name" (escape flow.Flow.name))
    ^ String.concat "" (List.map step_to_xml flow.Flow.steps)
    ^ tag "order" (String.concat "" (List.concat_map hop_to_xml flow.Flow.steps)))

let job_to_xml job =
  "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n"
  ^ tag "job"
      (tag "name" (escape job.Job.name)
      ^ String.concat "\n" (List.map flow_to_xml job.Job.flows))
