(** Kettle-style XML serialization of jobs and flows.

    EXLEngine "supports Pentaho Data Integration ... completely metadata
    driven": translation feeds the tool's catalog.  This module renders
    our flow metadata in the transformation/step XML shape Kettle
    consumes, which is what the engineered system would hand over. *)

val escape : string -> string
val flow_to_xml : Flow.t -> string
val job_to_xml : Job.t -> string
