(** Tgd → ETL flow translation (paper, Section 5.3).

    "For each atom in the lhs there is a data source step in the flow.
    Data streams coming from these steps are merged on the basis of
    dimensions, while their measures are combined with the calculation
    step" — plus an aggregation step when grouping is needed, and an
    output step writing back.  Like the vector target, consumes unfused
    mappings (at most two atoms). *)

val flow_of_tgd :
  Mappings.Mapping.t -> Mappings.Tgd.t -> (Flow.t, string) result

val job_of_mapping : Mappings.Mapping.t -> (Job.t, string) result
(** One flow per statement tgd, "tailored into a more comprising job
    according to tgds total order". *)
