type t = { name : string; steps : Step.t list }

let make ~name steps =
  let defined = Hashtbl.create 16 in
  let consumed = Hashtbl.create 16 in
  let outputs = ref 0 in
  let rec validate = function
    | [] -> Ok ()
    | step :: rest ->
        let sname = Step.name step in
        if Hashtbl.mem defined sname then
          Error (Printf.sprintf "flow %s: duplicate step %s" name sname)
        else begin
          let missing =
            List.filter (fun i -> not (Hashtbl.mem defined i)) (Step.inputs step)
          in
          if missing <> [] then
            Error
              (Printf.sprintf "flow %s: step %s consumes undefined stream(s) %s"
                 name sname
                 (String.concat ", " missing))
          else begin
            Hashtbl.replace defined sname ();
            List.iter (fun i -> Hashtbl.replace consumed i ()) (Step.inputs step);
            (match step with Step.Table_output _ -> incr outputs | _ -> ());
            validate rest
          end
        end
  in
  match validate steps with
  | Error _ as e -> e
  | Ok () ->
      if !outputs <> 1 then
        Error
          (Printf.sprintf "flow %s: expected exactly one output step, found %d"
             name !outputs)
      else
        let dangling =
          List.filter
            (fun s ->
              (match s with Step.Table_output _ -> false | _ -> true)
              && not (Hashtbl.mem consumed (Step.name s)))
            steps
        in
        if dangling <> [] then
          Error
            (Printf.sprintf "flow %s: unconsumed step(s) %s" name
               (String.concat ", " (List.map Step.name dangling)))
        else Ok { name; steps }

let output_cube t =
  match
    List.find_map
      (function Step.Table_output { cube; _ } -> Some cube | _ -> None)
      t.steps
  with
  | Some c -> c
  | None -> invalid_arg "Flow.output_cube: no output step"

let input_cubes t =
  List.filter_map
    (function Step.Table_input { cube; _ } -> Some cube | _ -> None)
    t.steps

let to_string t =
  let lines =
    List.map
      (fun step ->
        let arrows =
          match Step.inputs step with
          | [] -> ""
          | ins -> String.concat " + " ins ^ " -> "
        in
        Printf.sprintf "  %s%s" arrows (Step.to_string step))
      t.steps
  in
  Printf.sprintf "flow %s:\n%s" t.name (String.concat "\n" lines)
