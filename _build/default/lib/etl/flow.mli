(** A flow: the DAG of steps implementing one tgd (paper, Figure 1). *)

type t = { name : string; steps : Step.t list }

val make : name:string -> Step.t list -> (t, string) result
(** Validates: unique step names, every referenced input defined by an
    {e earlier} step (so definition order is a topological order), every
    non-output step consumed, exactly one output step. *)

val output_cube : t -> string
(** The cube the flow's [Table_output] writes. *)

val input_cubes : t -> string list
(** Cubes read by the flow's [Table_input] steps. *)

val to_string : t -> string
(** One line per step with arrows, a textual Figure 1. *)
