open Matrix
module Term = Mappings.Term

type stats = {
  mutable rows_read : int;
  mutable rows_written : int;
  mutable steps_executed : int;
  mutable batches : int;
}

let empty_stats () =
  { rows_read = 0; rows_written = 0; steps_executed = 0; batches = 0 }

exception Etl_error of string

let fail fmt = Printf.ksprintf (fun m -> raise (Etl_error m)) fmt

type rowset = { fields : string list; rows : Value.t array list }

let field_index rowset =
  let tbl = Hashtbl.create 8 in
  List.iteri (fun i f -> Hashtbl.replace tbl f i) rowset.fields;
  tbl

let row_env index row field =
  match Hashtbl.find_opt index field with
  | Some i -> Some row.(i)
  | None -> None

let columns_of_schema schema =
  Schema.dim_names schema @ [ schema.Schema.measure_name ]

let rowset_of_cube cube =
  let schema = Cube.schema cube in
  {
    fields = columns_of_schema schema;
    rows = List.map (fun (k, v) -> Tuple.append k v) (Cube.to_alist cube);
  }

let cube_of_rowset schema rowset =
  let cube = Cube.create schema in
  let index = field_index rowset in
  let positions =
    List.map
      (fun c ->
        match Hashtbl.find_opt index c with
        | Some i -> i
        | None -> fail "stream lacks field %s required by cube %s" c schema.Schema.name)
      (columns_of_schema schema)
  in
  let n = Schema.arity schema in
  List.iter
    (fun row ->
      let projected = List.map (fun i -> row.(i)) positions in
      let arr = Array.of_list projected in
      let key = Tuple.of_array (Array.sub arr 0 n) in
      Cube.add_strict cube key arr.(n))
    rowset.rows;
  cube

(* Chunked iteration: models the stream-like batching of an ETL engine
   and feeds the batch counter. *)
let iter_batches ~batch_size stats rows f =
  let rec loop = function
    | [] -> ()
    | rows ->
        let rec take k acc = function
          | rest when k = 0 -> (List.rev acc, rest)
          | [] -> (List.rev acc, [])
          | r :: rest -> take (k - 1) (r :: acc) rest
        in
        let batch, rest = take batch_size [] rows in
        stats.batches <- stats.batches + 1;
        List.iter f batch;
        loop rest
  in
  if rows <> [] then loop rows

let merge_fields keys left right =
  let clash c =
    (not (List.mem c keys)) && List.mem c left.fields && List.mem c right.fields
  in
  let left_out = List.map (fun c -> if clash c then c ^ "_x" else c) left.fields in
  let right_out =
    List.filter_map
      (fun c -> if List.mem c keys then None else Some (if clash c then c ^ "_y" else c))
      right.fields
  in
  (left_out @ right_out, clash)

let run_step ~batch_size ~storage ~schema_lookup env stats step =
  let get name =
    match Hashtbl.find_opt env name with
    | Some rs -> rs
    | None -> fail "no stream %s" name
  in
  let bind rs = Hashtbl.replace env (Step.name step) rs in
  stats.steps_executed <- stats.steps_executed + 1;
  match step with
  | Step.Table_input { cube; _ } ->
      let rs =
        match Registry.find storage cube with
        | Some c -> rowset_of_cube c
        | None -> (
            match schema_lookup cube with
            | Some schema -> { fields = columns_of_schema schema; rows = [] }
            | None -> fail "unknown cube %s" cube)
      in
      stats.rows_read <- stats.rows_read + List.length rs.rows;
      bind rs
  | Step.Generate_rows { fields; rows; _ } ->
      bind { fields; rows = List.map Array.of_list rows }
  | Step.Filter_rows { input; conditions; _ } ->
      let rs = get input in
      let index = field_index rs in
      let checks =
        List.map
          (fun (field, v) ->
            match Hashtbl.find_opt index field with
            | Some i -> (i, v)
            | None -> fail "filter field %s missing" field)
          conditions
      in
      let out = ref [] in
      iter_batches ~batch_size stats rs.rows (fun row ->
          if List.for_all (fun (i, v) -> Value.equal row.(i) v) checks then
            out := row :: !out);
      bind { rs with rows = List.rev !out }
  | Step.Merge_join { left; right; keys; join; _ } ->
      let l = get left and r = get right in
      let fields, _ = merge_fields keys l r in
      let l_index = field_index l and r_index = field_index r in
      let key_positions idx =
        List.map
          (fun k ->
            match Hashtbl.find_opt idx k with
            | Some i -> i
            | None -> fail "merge key %s missing" k)
          keys
      in
      let lk = key_positions l_index and rk = key_positions r_index in
      let key_of positions row =
        let vals = List.map (fun i -> row.(i)) positions in
        if List.exists Value.is_null vals then None
        else Some (Tuple.of_list vals)
      in
      let index : Value.t array list Tuple.Table.t = Tuple.Table.create 256 in
      List.iter
        (fun row ->
          match key_of lk row with
          | None -> ()
          | Some k ->
              let prev = Option.value ~default:[] (Tuple.Table.find_opt index k) in
              Tuple.Table.replace index k (row :: prev))
        l.rows;
      let r_keep =
        List.filteri (fun i _ -> not (List.mem i rk)) (List.mapi (fun i _ -> i) r.fields)
      in
      let l_width = List.length l.fields in
      let matched_left : unit Tuple.Table.t = Tuple.Table.create 256 in
      let out = ref [] in
      iter_batches ~batch_size stats r.rows (fun r_row ->
          let extra = List.map (fun i -> r_row.(i)) r_keep in
          match key_of rk r_row with
          | None ->
              if join = `Full then begin
                (* keep the unmatched right row; keys land in the
                   left key positions of the merged layout *)
                let l_part = Array.make l_width Value.Null in
                List.iteri (fun ki lp -> l_part.(lp) <- r_row.(List.nth rk ki)) lk;
                out := Array.append l_part (Array.of_list extra) :: !out
              end
          | Some k -> (
              match Tuple.Table.find_opt index k with
              | Some matches ->
                  Tuple.Table.replace matched_left k ();
                  List.iter
                    (fun l_row ->
                      out := Array.append l_row (Array.of_list extra) :: !out)
                    (List.rev matches)
              | None ->
                  if join = `Full then begin
                    let l_part = Array.make l_width Value.Null in
                    List.iteri
                      (fun ki lp -> l_part.(lp) <- r_row.(List.nth rk ki))
                      lk;
                    out := Array.append l_part (Array.of_list extra) :: !out
                  end));
      if join = `Full then begin
        let r_pad = Array.make (List.length r_keep) Value.Null in
        List.iter
          (fun l_row ->
            match key_of lk l_row with
            | Some k when Tuple.Table.mem matched_left k -> ()
            | _ -> out := Array.append l_row r_pad :: !out)
          l.rows
      end;
      bind { fields; rows = List.rev !out }
  | Step.Sort { input; _ } ->
      let rs = get input in
      bind
        {
          rs with
          rows =
            List.sort
              (fun a b -> Tuple.compare (Tuple.of_array a) (Tuple.of_array b))
              rs.rows;
        }
  | Step.Calculator { input; outputs; _ } ->
      let rs = get input in
      let index = field_index rs in
      let new_fields =
        List.filter (fun (f, _) -> not (List.mem f rs.fields)) outputs
      in
      let fields = rs.fields @ List.map fst new_fields in
      let out = ref [] in
      iter_batches ~batch_size stats rs.rows (fun row ->
          let env_fn = row_env index row in
          let row' =
            Array.append row
              (Array.of_list
                 (List.map
                    (fun (_, term) ->
                      Option.value ~default:Value.Null (Term.eval env_fn term))
                    new_fields))
          in
          (* Overwrite outputs naming existing fields in place. *)
          List.iter
            (fun (f, term) ->
              match Hashtbl.find_opt index f with
              | Some i ->
                  row'.(i) <-
                    Option.value ~default:Value.Null (Term.eval env_fn term)
              | None -> ())
            outputs;
          out := row' :: !out);
      bind { fields; rows = List.rev !out }
  | Step.Group_by { input; keys; aggr; measure; _ } ->
      let rs = get input in
      let index = field_index rs in
      let groups : float list ref Tuple.Table.t = Tuple.Table.create 64 in
      let order = ref [] in
      List.iter
        (fun row ->
          let env_fn = row_env index row in
          let key_vals = List.map (fun (_, t) -> Term.eval env_fn t) keys in
          if List.for_all Option.is_some key_vals then
            let key = Tuple.of_list (List.map Option.get key_vals) in
            match Option.bind (Term.eval env_fn measure) Value.to_float with
            | None -> ()
            | Some m -> (
                match Tuple.Table.find_opt groups key with
                | Some bag -> bag := m :: !bag
                | None ->
                    Tuple.Table.replace groups key (ref [ m ]);
                    order := key :: !order))
        rs.rows;
      let rows =
        List.rev_map
          (fun key ->
            let bag = List.rev !(Tuple.Table.find groups key) in
            Array.of_list
              (Tuple.to_list key
              @ [ Value.of_float (Stats.Aggregate.apply aggr bag) ]))
          !order
      in
      bind { fields = List.map fst keys @ [ "value" ]; rows }
  | Step.Table_function { input; fn; params; schema_of; _ } -> (
      let rs = get input in
      let schema =
        match schema_lookup schema_of with
        | Some s -> s
        | None -> fail "no schema for %s" schema_of
      in
      let op =
        match Ops.Blackbox.find fn with
        | Some op -> op
        | None -> fail "unknown user-defined step %s" fn
      in
      match Ops.Blackbox.apply_cube op ~params (cube_of_rowset schema rs) with
      | Error msg -> fail "%s" msg
      | Ok result -> bind (rowset_of_cube result))
  | Step.Select_fields { input; fields; _ } ->
      let rs = get input in
      let index = field_index rs in
      let positions =
        List.map
          (fun (src, _) ->
            match Hashtbl.find_opt index src with
            | Some i -> i
            | None -> fail "select: no field %s" src)
          fields
      in
      bind
        {
          fields = List.map snd fields;
          rows =
            List.map
              (fun row -> Array.of_list (List.map (fun i -> row.(i)) positions))
              rs.rows;
        }
  | Step.Table_output { input; cube; _ } ->
      let rs = get input in
      let schema =
        match schema_lookup cube with
        | Some s -> s
        | None -> fail "no schema for output cube %s" cube
      in
      stats.rows_written <- stats.rows_written + List.length rs.rows;
      Registry.add storage Registry.Derived (cube_of_rowset schema rs)

let run_flow ?(batch_size = 1024) ~storage ~schema_lookup flow stats =
  let env : (string, rowset) Hashtbl.t = Hashtbl.create 16 in
  try
    List.iter
      (run_step ~batch_size ~storage ~schema_lookup env stats)
      flow.Flow.steps;
    Ok ()
  with
  | Etl_error msg -> Error (Printf.sprintf "flow %s: %s" flow.Flow.name msg)
  | Cube.Functionality_violation { cube; key } ->
      Error
        (Printf.sprintf "flow %s: functionality violation in %s at %s"
           flow.Flow.name cube (Tuple.to_string key))

let run_job ?batch_size ~storage ~schema_lookup job =
  let stats = empty_stats () in
  let rec loop = function
    | [] -> Ok stats
    | flow :: rest -> (
        match run_flow ?batch_size ~storage ~schema_lookup flow stats with
        | Ok () -> loop rest
        | Error _ as e -> e)
  in
  match loop job.Job.flows with
  | Ok stats -> Ok stats
  | Error msg -> Error msg
