(** A job: the ordered composition of flows for a whole mapping. *)

type t = { name : string; flows : Flow.t list }

val make : name:string -> Flow.t list -> t
val to_string : t -> string
