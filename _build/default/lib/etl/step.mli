open Matrix

(** ETL step metadata (paper, Section 5.3).

    A flow is built from data-source steps, merge steps joining streams
    on dimensions, calculation steps combining measures, aggregation
    steps, user-defined (table-function) steps, and output steps —
    exactly the vocabulary of Figure 1.  Formulas are {!Mappings.Term}s
    whose variables are stream field names, mirroring how Kettle's
    calculator references input fields. *)

type t =
  | Table_input of { step : string; cube : string }
      (** Reads the named cube from storage; fields are the cube's
          dimension names plus its measure name. *)
  | Generate_rows of { step : string; fields : string list; rows : Value.t list list }
      (** Constant input (for tgds with an empty lhs). *)
  | Filter_rows of { step : string; input : string; conditions : (string * Value.t) list }
      (** Keep rows whose fields equal the given constants (the EXL
          [filter] operator; Kettle's FilterRows step). *)
  | Merge_join of {
      step : string;
      left : string;
      right : string;
      keys : string list;
      join : [ `Inner | `Full ];
    }
      (** Join of two incoming streams on equally named key fields;
          clashing non-key fields are suffixed [_x]/[_y].  Rows with a
          [Null] key never match.  [`Full] keeps unmatched rows of both
          sides with [Null] fields (key fields coalesced). *)
  | Sort of { step : string; input : string }
      (** Lexicographic row sort — placed before aggregation so
          order-sensitive aggregates are deterministic (Kettle likewise
          requires sorted input for group-by). *)
  | Calculator of { step : string; input : string; outputs : (string * Mappings.Term.t) list }
      (** Appends computed fields; a formula evaluating to an undefined
          value yields [Null] in that field. *)
  | Group_by of {
      step : string;
      input : string;
      keys : (string * Mappings.Term.t) list;
      aggr : Stats.Aggregate.t;
      measure : Mappings.Term.t;
    }
      (** Output fields: key names plus ["value"]. *)
  | Table_function of { step : string; input : string; fn : string; params : float list; schema_of : string }
      (** User-defined whole-stream step: converts the stream to a cube
          (using the schema of [schema_of]) and applies a black-box
          operator. *)
  | Select_fields of { step : string; input : string; fields : (string * string) list }
      (** Projection / rename; [(source, output)] pairs in order. *)
  | Table_output of { step : string; input : string; cube : string }
      (** Writes the stream back into storage under the named cube. *)

val name : t -> string
val inputs : t -> string list
(** Names of the steps this step consumes (empty for sources). *)

val kind : t -> string
(** Short label for rendering: "TableInput", "MergeJoin", ... *)

val to_string : t -> string
