open Matrix
module Tgd = Mappings.Tgd
module Term = Mappings.Term

exception Gen_error of string

let fail fmt = Printf.ksprintf (fun m -> raise (Gen_error m)) fmt

let columns_of_schema schema =
  Schema.dim_names schema @ [ schema.Schema.measure_name ]

let plain_vars mapping (atom : Tgd.atom) =
  let schema = Mappings.Mapping.target_schema_exn mapping atom.Tgd.rel in
  List.mapi (fun i term -> (i, term)) atom.Tgd.args
  |> List.filter_map (fun (i, term) ->
         match term with
         | Term.Var v -> Some (v, List.nth (columns_of_schema schema) i)
         | _ -> None)

(* Constant args in an atom select rows: a FilterRows step after the
   data source. *)
let source_steps mapping (atom : Tgd.atom) ~input_name =
  let schema = Mappings.Mapping.target_schema_exn mapping atom.Tgd.rel in
  let conditions =
    List.mapi (fun i term -> (i, term)) atom.Tgd.args
    |> List.filter_map (fun (i, term) ->
           match term with
           | Term.Const v -> Some (List.nth (columns_of_schema schema) i, v)
           | _ -> None)
  in
  match conditions with
  | [] -> ([ Step.Table_input { step = input_name; cube = atom.Tgd.rel } ], input_name)
  | _ ->
      ( [
          Step.Table_input { step = input_name; cube = atom.Tgd.rel };
          Step.Filter_rows
            { step = input_name ^ "_filter"; input = input_name; conditions };
        ],
        input_name ^ "_filter" )

(* Rewrite a term's variables to the stream field names they live in. *)
let rebase binding term =
  Term.substitute
    (fun v ->
      match List.assoc_opt v binding with
      | Some field -> Some (Term.Var field)
      | None -> fail "variable %s is not bound by a source step" v)
    term

(* Calculation + select + output suffix shared by all tuple-level
   shapes: compute each target column from its term. *)
let finish mapping target input_step binding rhs_args =
  let target_schema = Mappings.Mapping.target_schema_exn mapping target in
  let target_cols = columns_of_schema target_schema in
  let outputs =
    List.map2
      (fun term col -> ("o_" ^ col, rebase binding term))
      rhs_args target_cols
  in
  [
    Step.Calculator { step = "calc"; input = input_step; outputs };
    Step.Select_fields
      {
        step = "select";
        input = "calc";
        fields = List.map (fun c -> ("o_" ^ c, c)) target_cols;
      };
    Step.Table_output { step = "output"; input = "select"; cube = target };
  ]

let tuple_level mapping lhs (rhs : Tgd.atom) =
  let target = rhs.Tgd.rel in
  match lhs with
  | [] ->
      let target_schema = Mappings.Mapping.target_schema_exn mapping target in
      let cols = columns_of_schema target_schema in
      let row = List.map (Term.eval (fun _ -> None)) rhs.Tgd.args in
      let rows =
        if List.for_all Option.is_some row then [ List.map Option.get row ]
        else []
      in
      [
        Step.Generate_rows { step = "const"; fields = cols; rows };
        Step.Table_output { step = "output"; input = "const"; cube = target };
      ]
  | [ atom ] ->
      let binding = plain_vars mapping atom in
      let steps, out = source_steps mapping atom ~input_name:"in" in
      steps @ finish mapping target out binding rhs.Tgd.args
  | [ left; right ] ->
      let left_schema = Mappings.Mapping.target_schema_exn mapping left.Tgd.rel in
      let right_schema =
        Mappings.Mapping.target_schema_exn mapping right.Tgd.rel
      in
      let left_plain = plain_vars mapping left in
      let right_plain = plain_vars mapping right in
      let keys =
        List.filter_map
          (fun (v, c) ->
            match List.assoc_opt v right_plain with
            | Some c' when c = c' -> Some c
            | _ -> None)
          left_plain
      in
      let left_cols = columns_of_schema left_schema in
      let right_cols = columns_of_schema right_schema in
      let clash c =
        (not (List.mem c keys)) && List.mem c left_cols && List.mem c right_cols
      in
      let binding =
        List.map (fun (v, c) -> (v, if clash c then c ^ "_x" else c)) left_plain
        @ List.filter_map
            (fun (v, c) ->
              if List.mem_assoc v left_plain then None
              else Some (v, if clash c then c ^ "_y" else c))
            right_plain
      in
      let left_steps, left_out = source_steps mapping left ~input_name:"in_left" in
      let right_steps, right_out =
        source_steps mapping right ~input_name:"in_right"
      in
      left_steps @ right_steps
      @ [
          Step.Merge_join
            { step = "merge"; left = left_out; right = right_out; keys; join = `Inner };
        ]
      @ finish mapping target "merge" binding rhs.Tgd.args
  | _ ->
      fail "ETL target supports at most two atoms per tgd; run on the unfused mapping"

let aggregation mapping (source : Tgd.atom) group_by aggr measure target =
  let target_schema = Mappings.Mapping.target_schema_exn mapping target in
  let binding = plain_vars mapping source in
  let keys =
    List.map2
      (fun term dim -> (dim, rebase binding term))
      group_by
      (Schema.dim_names target_schema)
  in
  let measure_term =
    match List.assoc_opt measure binding with
    | Some field -> Term.Var field
    | None -> fail "aggregation measure %s is not a plain variable" measure
  in
  [
    Step.Table_input { step = "in"; cube = source.Tgd.rel };
    Step.Sort { step = "sort"; input = "in" };
    Step.Group_by
      { step = "group"; input = "sort"; keys; aggr; measure = measure_term };
    Step.Select_fields
      {
        step = "select";
        input = "group";
        fields =
          List.map (fun d -> (d, d)) (Schema.dim_names target_schema)
          @ [ ("value", target_schema.Schema.measure_name) ];
      };
    Step.Table_output { step = "output"; input = "select"; cube = target };
  ]

(* vadd(A, B): full-outer merge join, measures coalesced with the
   default before combining. *)
let outer_combine mapping (left : Tgd.atom) (right : Tgd.atom) op default target =
  let target_schema = Mappings.Mapping.target_schema_exn mapping target in
  let dims = Schema.dim_names target_schema in
  let left_schema = Mappings.Mapping.target_schema_exn mapping left.Tgd.rel in
  let right_schema = Mappings.Mapping.target_schema_exn mapping right.Tgd.rel in
  let lm = left_schema.Schema.measure_name in
  let rm = right_schema.Schema.measure_name in
  let lm_out, rm_out = if lm = rm then (lm ^ "_x", rm ^ "_y") else (lm, rm) in
  let coalesced field =
    Term.Coalesce (Term.Var field, Term.Const (Value.Float default))
  in
  [
    Step.Table_input { step = "in_left"; cube = left.Tgd.rel };
    Step.Table_input { step = "in_right"; cube = right.Tgd.rel };
    Step.Merge_join
      { step = "merge"; left = "in_left"; right = "in_right"; keys = dims; join = `Full };
    Step.Calculator
      {
        step = "calc";
        input = "merge";
        outputs = [ ("o_value", Term.Binapp (op, coalesced lm_out, coalesced rm_out)) ];
      };
    Step.Select_fields
      {
        step = "select";
        input = "calc";
        fields =
          List.map (fun d -> (d, d)) dims
          @ [ ("o_value", target_schema.Schema.measure_name) ];
      };
    Step.Table_output { step = "output"; input = "select"; cube = target };
  ]

let flow_of_tgd mapping tgd =
  let target = Tgd.target_relation tgd in
  try
    let steps =
      match tgd with
      | Tgd.Tuple_level { lhs; rhs } -> tuple_level mapping lhs rhs
      | Tgd.Aggregation { source; group_by; aggr; measure; target } ->
          aggregation mapping source group_by aggr measure target
      | Tgd.Outer_combine { left; right; op; default; target } ->
          outer_combine mapping left right op default target
      | Tgd.Table_fn { fn; params; source; target } ->
          [
            Step.Table_input { step = "in"; cube = source };
            Step.Table_function
              { step = "apply"; input = "in"; fn; params; schema_of = source };
            Step.Table_output { step = "output"; input = "apply"; cube = target };
          ]
    in
    Flow.make ~name:("compute_" ^ target) steps
  with Gen_error msg -> Error msg

let job_of_mapping mapping =
  let rec loop acc = function
    | [] -> Ok (Job.make ~name:"exl_job" (List.rev acc))
    | tgd :: rest -> (
        match flow_of_tgd mapping tgd with
        | Ok flow -> loop (flow :: acc) rest
        | Error msg ->
            Error (Printf.sprintf "on tgd [%s]: %s" (Tgd.to_string tgd) msg))
  in
  loop [] mapping.Mappings.Mapping.t_tgds
