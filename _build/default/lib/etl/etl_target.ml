open Matrix

let job_of_program checked =
  Result.bind (Mappings.Generate.of_checked checked)
    (fun (g : Mappings.Generate.generated) ->
      let mapping = g.Mappings.Generate.mapping in
      match Etl_gen.job_of_mapping mapping with
      | Error msg -> Error (Exl.Errors.make ("ETL target: " ^ msg))
      | Ok job -> Ok (job, mapping))

let run_program ?batch_size checked registry =
  Result.bind (job_of_program checked) (fun (job, mapping) ->
      let storage = Registry.create () in
      List.iter
        (fun schema ->
          let cube =
            match Registry.find registry schema.Schema.name with
            | Some c -> Cube.with_schema schema (Cube.copy c)
            | None -> Cube.create schema
          in
          Registry.add storage Registry.Elementary cube)
        mapping.Mappings.Mapping.source;
      let schema_lookup = Mappings.Mapping.target_schema mapping in
      match Engine.run_job ?batch_size ~storage ~schema_lookup job with
      | Error msg -> Error (Exl.Errors.make ("ETL target: " ^ msg))
      | Ok _stats -> Ok storage)

let kettle_catalog_of_program checked =
  Result.map (fun (job, _) -> Kettle.job_to_xml job) (job_of_program checked)
