open Matrix

type t =
  | Table_input of { step : string; cube : string }
  | Generate_rows of { step : string; fields : string list; rows : Value.t list list }
  | Filter_rows of { step : string; input : string; conditions : (string * Value.t) list }
  | Merge_join of {
      step : string;
      left : string;
      right : string;
      keys : string list;
      join : [ `Inner | `Full ];
    }
  | Sort of { step : string; input : string }
  | Calculator of { step : string; input : string; outputs : (string * Mappings.Term.t) list }
  | Group_by of {
      step : string;
      input : string;
      keys : (string * Mappings.Term.t) list;
      aggr : Stats.Aggregate.t;
      measure : Mappings.Term.t;
    }
  | Table_function of { step : string; input : string; fn : string; params : float list; schema_of : string }
  | Select_fields of { step : string; input : string; fields : (string * string) list }
  | Table_output of { step : string; input : string; cube : string }

let name = function
  | Table_input { step; _ }
  | Generate_rows { step; _ }
  | Filter_rows { step; _ }
  | Merge_join { step; _ }
  | Sort { step; _ }
  | Calculator { step; _ }
  | Group_by { step; _ }
  | Table_function { step; _ }
  | Select_fields { step; _ }
  | Table_output { step; _ } ->
      step

let inputs = function
  | Table_input _ | Generate_rows _ -> []
  | Merge_join { left; right; _ } -> [ left; right ]
  | Filter_rows { input; _ }
  | Sort { input; _ }
  | Calculator { input; _ }
  | Group_by { input; _ }
  | Table_function { input; _ }
  | Select_fields { input; _ }
  | Table_output { input; _ } ->
      [ input ]

let kind = function
  | Table_input _ -> "TableInput"
  | Generate_rows _ -> "GenerateRows"
  | Filter_rows _ -> "FilterRows"
  | Merge_join _ -> "MergeJoin"
  | Sort _ -> "SortRows"
  | Calculator _ -> "Calculator"
  | Group_by _ -> "GroupBy"
  | Table_function _ -> "UserDefined"
  | Select_fields _ -> "SelectValues"
  | Table_output _ -> "TableOutput"

let to_string t =
  let detail =
    match t with
    | Table_input { cube; _ } -> cube
    | Generate_rows { rows; _ } -> Printf.sprintf "%d rows" (List.length rows)
    | Filter_rows { conditions; _ } ->
        String.concat " and "
          (List.map
             (fun (f, v) -> Printf.sprintf "%s = %s" f (Value.to_string v))
             conditions)
    | Merge_join { keys; join; _ } ->
        (match join with `Inner -> "on " | `Full -> "full outer on ")
        ^ String.concat ", " keys
    | Sort _ -> ""
    | Calculator { outputs; _ } ->
        String.concat "; "
          (List.map
             (fun (f, term) ->
               Printf.sprintf "%s = %s" f (Mappings.Term.to_string term))
             outputs)
    | Group_by { keys; aggr; measure; _ } ->
        Printf.sprintf "%s(%s) by %s"
          (Stats.Aggregate.to_string aggr)
          (Mappings.Term.to_string measure)
          (String.concat ", " (List.map fst keys))
    | Table_function { fn; _ } -> fn
    | Select_fields { fields; _ } ->
        String.concat ", "
          (List.map
             (fun (s, d) -> if s = d then s else s ^ " -> " ^ d)
             fields)
    | Table_output { cube; _ } -> cube
  in
  if detail = "" then Printf.sprintf "[%s %s]" (kind t) (name t)
  else Printf.sprintf "[%s %s: %s]" (kind t) (name t) detail
