type t = { name : string; flows : Flow.t list }

let make ~name flows = { name; flows }

let to_string t =
  Printf.sprintf "job %s (%d flows):\n%s" t.name (List.length t.flows)
    (String.concat "\n" (List.map Flow.to_string t.flows))
