open Matrix

(** The ETL target system, end to end: EXL program → (unfused) mapping
    → job of flows → streaming engine → cubes. *)

val job_of_program :
  Exl.Typecheck.checked -> (Job.t * Mappings.Mapping.t, Exl.Errors.t) result

val run_program :
  ?batch_size:int ->
  Exl.Typecheck.checked ->
  Registry.t ->
  (Registry.t, Exl.Errors.t) result

val kettle_catalog_of_program :
  Exl.Typecheck.checked -> (string, Exl.Errors.t) result
(** The Kettle-style XML the translation engine would feed to Pentaho. *)
