lib/etl/flow.mli: Step
