lib/etl/job.ml: Flow List Printf String
