lib/etl/step.ml: List Mappings Matrix Printf Stats String Value
