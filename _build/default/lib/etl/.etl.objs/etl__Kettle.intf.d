lib/etl/kettle.mli: Flow Job
