lib/etl/kettle.ml: Buffer Flow Job List Mappings Printf Stats Step String
