lib/etl/job.mli: Flow
