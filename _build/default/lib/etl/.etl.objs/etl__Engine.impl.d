lib/etl/engine.ml: Array Cube Flow Hashtbl Job List Mappings Matrix Ops Option Printf Registry Schema Stats Step Tuple Value
