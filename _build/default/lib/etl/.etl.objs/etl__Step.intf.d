lib/etl/step.mli: Mappings Matrix Stats Value
