lib/etl/etl_gen.ml: Flow Job List Mappings Matrix Option Printf Schema Step Value
