lib/etl/engine.mli: Flow Job Matrix Registry Schema
