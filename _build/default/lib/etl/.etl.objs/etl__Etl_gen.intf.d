lib/etl/etl_gen.mli: Flow Job Mappings
