lib/etl/etl_target.mli: Exl Job Mappings Matrix Registry
