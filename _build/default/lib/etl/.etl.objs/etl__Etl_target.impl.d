lib/etl/etl_target.ml: Cube Engine Etl_gen Exl Kettle List Mappings Matrix Registry Result Schema
