lib/etl/flow.ml: Hashtbl List Printf Step String
