open Matrix

(** The streaming ETL engine: executes flows against a cube registry
    (the "storage system" of the paper's architecture). *)

type stats = {
  mutable rows_read : int;
  mutable rows_written : int;
  mutable steps_executed : int;
  mutable batches : int;  (** row chunks pushed through the stream *)
}

val empty_stats : unit -> stats

val run_flow :
  ?batch_size:int ->
  storage:Registry.t ->
  schema_lookup:(string -> Schema.t option) ->
  Flow.t ->
  stats ->
  (unit, string) result
(** Executes the steps in order, writing the output cube into
    [storage] as a derived cube.  [batch_size] (default 1024) is the
    stream granularity — semantics-neutral, it models the paper's
    stream-like architecture and is reported in [stats.batches]. *)

val run_job :
  ?batch_size:int ->
  storage:Registry.t ->
  schema_lookup:(string -> Schema.t option) ->
  Job.t ->
  (stats, string) result
