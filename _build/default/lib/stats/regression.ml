type fit = { slope : float; intercept : float }

let wls ~weights x y =
  let n = Array.length x in
  if n <> Array.length y || n <> Array.length weights then
    invalid_arg "Regression.wls: length mismatch";
  if n = 0 then invalid_arg "Regression.wls: empty input";
  let sw = ref 0. and swx = ref 0. and swy = ref 0. in
  for i = 0 to n - 1 do
    sw := !sw +. weights.(i);
    swx := !swx +. (weights.(i) *. x.(i));
    swy := !swy +. (weights.(i) *. y.(i))
  done;
  if !sw <= 0. then invalid_arg "Regression.wls: weights sum to zero";
  let mx = !swx /. !sw and my = !swy /. !sw in
  let sxx = ref 0. and sxy = ref 0. in
  for i = 0 to n - 1 do
    let dx = x.(i) -. mx in
    sxx := !sxx +. (weights.(i) *. dx *. dx);
    sxy := !sxy +. (weights.(i) *. dx *. (y.(i) -. my))
  done;
  if !sxx = 0. then { slope = 0.; intercept = my }
  else
    let slope = !sxy /. !sxx in
    { slope; intercept = my -. (slope *. mx) }

let ols x y = wls ~weights:(Array.make (Array.length x) 1.) x y
let predict f x = (f.slope *. x) +. f.intercept

let r_squared f x y =
  let my = Descriptive.mean y in
  let ss_tot = ref 0. and ss_res = ref 0. in
  Array.iteri
    (fun i yi ->
      ss_tot := !ss_tot +. ((yi -. my) ** 2.);
      ss_res := !ss_res +. ((yi -. predict f x.(i)) ** 2.))
    y;
  if !ss_tot = 0. then if !ss_res = 0. then 1. else 0.
  else 1. -. (!ss_res /. !ss_tot)

let fitted_line values =
  let x = Array.init (Array.length values) float_of_int in
  let f = ols x values in
  Array.map (predict f) x

let solve_normal_equations a b =
  let n = Array.length b in
  let m = Array.map Array.copy a and v = Array.copy b in
  for col = 0 to n - 1 do
    (* Partial pivoting. *)
    let pivot = ref col in
    for row = col + 1 to n - 1 do
      if Float.abs m.(row).(col) > Float.abs m.(!pivot).(col) then pivot := row
    done;
    if Float.abs m.(!pivot).(col) < 1e-12 then
      invalid_arg "Regression.solve_normal_equations: singular system";
    if !pivot <> col then begin
      let tmp = m.(col) in
      m.(col) <- m.(!pivot);
      m.(!pivot) <- tmp;
      let t = v.(col) in
      v.(col) <- v.(!pivot);
      v.(!pivot) <- t
    end;
    for row = col + 1 to n - 1 do
      let factor = m.(row).(col) /. m.(col).(col) in
      for k = col to n - 1 do
        m.(row).(k) <- m.(row).(k) -. (factor *. m.(col).(k))
      done;
      v.(row) <- v.(row) -. (factor *. v.(col))
    done
  done;
  let x = Array.make n 0. in
  for row = n - 1 downto 0 do
    let acc = ref v.(row) in
    for k = row + 1 to n - 1 do
      acc := !acc -. (m.(row).(k) *. x.(k))
    done;
    x.(row) <- !acc /. m.(row).(row)
  done;
  x

let ols_multi rows y =
  let n = Array.length rows in
  if n = 0 then invalid_arg "Regression.ols_multi: empty input";
  let k = Array.length rows.(0) in
  let p = k + 1 in
  (* Build X^T X and X^T y where X has a leading intercept column. *)
  let xtx = Array.make_matrix p p 0. and xty = Array.make p 0. in
  let feature row j = if j = 0 then 1. else row.(j - 1) in
  Array.iteri
    (fun i row ->
      for a = 0 to p - 1 do
        xty.(a) <- xty.(a) +. (feature row a *. y.(i));
        for b = 0 to p - 1 do
          xtx.(a).(b) <- xtx.(a).(b) +. (feature row a *. feature row b)
        done
      done)
    rows;
  solve_normal_equations xtx xty
