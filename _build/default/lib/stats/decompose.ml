type components = {
  trend : float array;
  seasonal : float array;
  remainder : float array;
}

type method_ = Classical | Stl

let check ~period a =
  if period < 2 then invalid_arg "Decompose: period must be >= 2";
  if Array.length a < 2 * period then
    invalid_arg
      (Printf.sprintf
         "Decompose: series of length %d too short for period %d (need >= %d)"
         (Array.length a) period (2 * period))

(* Mean seasonal figure per phase of the detrended series, centred so the
   seasonal component sums to zero over one period. *)
let seasonal_figure ~period detrended =
  let sums = Array.make period 0. and counts = Array.make period 0 in
  Array.iteri
    (fun i x ->
      if not (Float.is_nan x) then begin
        let phase = i mod period in
        sums.(phase) <- sums.(phase) +. x;
        counts.(phase) <- counts.(phase) + 1
      end)
    detrended;
  let figure =
    Array.init period (fun ph ->
        if counts.(ph) = 0 then 0. else sums.(ph) /. float_of_int counts.(ph))
  in
  let mean = Descriptive.mean figure in
  Array.map (fun x -> x -. mean) figure

let classical ~period a =
  check ~period a;
  let n = Array.length a in
  let trend = Interpolate.fill_linear (Moving.centered_average ~window:period a) in
  let detrended = Array.init n (fun i -> a.(i) -. trend.(i)) in
  let figure = seasonal_figure ~period detrended in
  let seasonal = Array.init n (fun i -> figure.(i mod period)) in
  let remainder = Array.init n (fun i -> a.(i) -. trend.(i) -. seasonal.(i)) in
  { trend; seasonal; remainder }

(* STL-style decomposition with "periodic" seasonality, following the
   inner-loop structure of Cleveland's STL:
     (1) cycle-subseries estimation on the detrended series (periodic
         window: each phase's mean),
     (2) low-pass filtering of that estimate, subtracted to stop trend
         leaking into the seasonal component,
     (3) loess smoothing of the deseasonalized series for the trend.
   Simplified vs. full STL: no robustness weights. *)
let stl ?(inner_iterations = 5) ?trend_span ~period a =
  check ~period a;
  let n = Array.length a in
  let trend_span =
    match trend_span with
    | Some s -> Stdlib.max 3 s
    | None -> Stdlib.max 3 ((3 * period / 2) + 1)
  in
  let seasonal = Array.make n 0. in
  let trend = ref (Array.make n 0.) in
  for _ = 1 to inner_iterations do
    let detrended = Array.init n (fun i -> a.(i) -. !trend.(i)) in
    (* (1) periodic cycle-subseries estimate: each phase's mean (the
       low-pass step below takes care of centring, as in STL proper). *)
    let cycle = Array.make n 0. in
    let phase_counts = Array.make period 0 in
    let phase_sums = Array.make period 0. in
    Array.iteri
      (fun i x ->
        phase_sums.(i mod period) <- phase_sums.(i mod period) +. x;
        phase_counts.(i mod period) <- phase_counts.(i mod period) + 1)
      detrended;
    for i = 0 to n - 1 do
      let ph = i mod period in
      cycle.(i) <-
        (if phase_counts.(ph) = 0 then 0.
         else phase_sums.(ph) /. float_of_int phase_counts.(ph))
    done;
    (* (2) low-pass filter of the cycle-subseries estimate. *)
    let low_pass =
      Interpolate.fill_linear (Moving.centered_average ~window:period cycle)
    in
    for i = 0 to n - 1 do
      seasonal.(i) <- cycle.(i) -. low_pass.(i)
    done;
    (* (3) trend from the deseasonalized series. *)
    let deseasonalized = Array.init n (fun i -> a.(i) -. seasonal.(i)) in
    trend := Loess.smooth ~span:trend_span deseasonalized
  done;
  let trend = !trend in
  let remainder = Array.init n (fun i -> a.(i) -. trend.(i) -. seasonal.(i)) in
  { trend; seasonal; remainder }

let decompose ?(method_ = Stl) ~period a =
  match method_ with
  | Classical -> classical ~period a
  | Stl -> stl ~period a

let trend ?method_ ~period a = (decompose ?method_ ~period a).trend
let seasonal ?method_ ~period a = (decompose ?method_ ~period a).seasonal
let remainder ?method_ ~period a = (decompose ?method_ ~period a).remainder

let deseasonalize ?method_ ~period a =
  let c = decompose ?method_ ~period a in
  Array.init (Array.length a) (fun i -> a.(i) -. c.seasonal.(i))
