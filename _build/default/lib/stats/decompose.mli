(** Seasonal decomposition of time series.

    The paper's flagship black-box operator: [stl] splits a series into
    trend, seasonal and remainder components; tgd (4) of the overview
    extracts the trend ([stl_T]).  Two algorithms are provided:

    - {e classical} additive decomposition (centered moving-average
      trend, period-averaged seasonal), and
    - an {e STL-style} iterative variant using loess for cycle-subseries
      and trend smoothing, closer to R's [stl(..., "periodic")].

    Both satisfy [trend + seasonal + remainder = input] pointwise and the
    seasonal component sums to ~0 over each full period. *)

type components = {
  trend : float array;
  seasonal : float array;
  remainder : float array;
}

type method_ = Classical | Stl

val decompose :
  ?method_:method_ -> period:int -> float array -> components
(** @raise Invalid_argument when [period < 2] or the series is shorter
    than two periods. Default method is [Stl]. *)

val classical : period:int -> float array -> components
val stl :
  ?inner_iterations:int -> ?trend_span:int -> period:int -> float array -> components

val trend : ?method_:method_ -> period:int -> float array -> float array
(** The paper's [stl_T]. *)

val seasonal : ?method_:method_ -> period:int -> float array -> float array
(** [stl_S]. *)

val remainder : ?method_:method_ -> period:int -> float array -> float array
(** [stl_R]. *)

val deseasonalize : ?method_:method_ -> period:int -> float array -> float array
(** Input minus its seasonal component (seasonal adjustment). *)
