lib/stats/aggregate.mli: Format
