lib/stats/descriptive.mli:
