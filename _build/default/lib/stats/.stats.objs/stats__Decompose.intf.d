lib/stats/decompose.mli:
