lib/stats/decompose.ml: Array Descriptive Float Interpolate Loess Moving Printf Stdlib
