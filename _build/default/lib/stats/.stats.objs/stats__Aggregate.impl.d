lib/stats/aggregate.ml: Array Descriptive Format String
