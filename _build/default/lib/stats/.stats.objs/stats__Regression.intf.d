lib/stats/regression.mli:
