lib/stats/moving.mli:
