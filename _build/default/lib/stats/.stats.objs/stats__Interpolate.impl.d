lib/stats/interpolate.ml: Array Float List
