lib/stats/loess.ml: Array Float Fun Regression Stdlib
