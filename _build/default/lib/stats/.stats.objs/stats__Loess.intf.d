lib/stats/loess.mli:
