lib/stats/interpolate.mli:
