lib/stats/moving.ml: Array Float Stdlib
