let trailing_average ~window a =
  if window <= 0 then invalid_arg "Moving.trailing_average: window <= 0";
  let n = Array.length a in
  let out = Array.make n 0. in
  let acc = ref 0. in
  for i = 0 to n - 1 do
    acc := !acc +. a.(i);
    if i >= window then acc := !acc -. a.(i - window);
    let len = Stdlib.min (i + 1) window in
    out.(i) <- !acc /. float_of_int len
  done;
  out

let centered_average ~window a =
  if window <= 0 then invalid_arg "Moving.centered_average: window <= 0";
  let n = Array.length a in
  let out = Array.make n Float.nan in
  if window mod 2 = 1 then begin
    let half = window / 2 in
    for i = half to n - 1 - half do
      let acc = ref 0. in
      for j = i - half to i + half do
        acc := !acc +. a.(j)
      done;
      out.(i) <- !acc /. float_of_int window
    done
  end
  else begin
    (* 2 x w MA: endpoints of the (w+1)-wide window weigh 1/2. *)
    let half = window / 2 in
    for i = half to n - 1 - half do
      let acc = ref ((a.(i - half) +. a.(i + half)) /. 2.) in
      for j = i - half + 1 to i + half - 1 do
        acc := !acc +. a.(j)
      done;
      out.(i) <- !acc /. float_of_int window
    done
  end;
  out

let diff ?(lag = 1) a =
  if lag <= 0 then invalid_arg "Moving.diff: lag <= 0";
  let n = Array.length a in
  Array.init n (fun i -> if i < lag then Float.nan else a.(i) -. a.(i - lag))

let cumsum a =
  let acc = ref 0. in
  Array.map
    (fun x ->
      acc := !acc +. x;
      !acc)
    a

let pct_change ?(lag = 1) a =
  if lag <= 0 then invalid_arg "Moving.pct_change: lag <= 0";
  let n = Array.length a in
  Array.init n (fun i ->
      if i < lag || a.(i - lag) = 0. then Float.nan
      else 100. *. (a.(i) -. a.(i - lag)) /. a.(i - lag))

let ewma ~alpha a =
  if alpha <= 0. || alpha > 1. then invalid_arg "Moving.ewma: alpha not in (0,1]";
  let n = Array.length a in
  if n = 0 then [||]
  else begin
    let out = Array.make n a.(0) in
    for i = 1 to n - 1 do
      out.(i) <- (alpha *. a.(i)) +. ((1. -. alpha) *. out.(i - 1))
    done;
    out
  end
