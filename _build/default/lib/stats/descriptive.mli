(** Descriptive statistics over float arrays.

    The numeric core used by EXL aggregation operators and by the
    decomposition / regression substrates. All functions raise
    [Invalid_argument] on empty input unless stated otherwise. *)

val sum : float array -> float  (** 0. on empty input. *)

val product : float array -> float  (** 1. on empty input. *)

val mean : float array -> float
val variance : float array -> float
(** Population variance (divide by n). *)

val sample_variance : float array -> float
(** Sample variance (divide by n-1); requires at least two elements. *)

val stddev : float array -> float
val min : float array -> float
val max : float array -> float
val median : float array -> float
(** Average of the two middle order statistics for even lengths. *)

val quantile : float -> float array -> float
(** Linear-interpolation quantile, [q] in [0, 1]. *)

val autocorrelation : lag:int -> float array -> float
(** Sample autocorrelation at the given lag; 0 on degenerate input. *)

val covariance : float array -> float array -> float
val correlation : float array -> float array -> float
