let check name a =
  if Array.length a = 0 then invalid_arg ("Descriptive." ^ name ^ ": empty input")

let sum a = Array.fold_left ( +. ) 0. a
let product a = Array.fold_left ( *. ) 1. a

let mean a =
  check "mean" a;
  sum a /. float_of_int (Array.length a)

let variance a =
  check "variance" a;
  let m = mean a in
  Array.fold_left (fun acc x -> acc +. ((x -. m) ** 2.)) 0. a
  /. float_of_int (Array.length a)

let sample_variance a =
  if Array.length a < 2 then
    invalid_arg "Descriptive.sample_variance: need at least two elements";
  let m = mean a in
  Array.fold_left (fun acc x -> acc +. ((x -. m) ** 2.)) 0. a
  /. float_of_int (Array.length a - 1)

let stddev a = sqrt (variance a)

let min a =
  check "min" a;
  Array.fold_left Float.min a.(0) a

let max a =
  check "max" a;
  Array.fold_left Float.max a.(0) a

let sorted a =
  let b = Array.copy a in
  Array.sort Float.compare b;
  b

let quantile q a =
  check "quantile" a;
  if q < 0. || q > 1. then invalid_arg "Descriptive.quantile: q not in [0,1]";
  let b = sorted a in
  let n = Array.length b in
  let pos = q *. float_of_int (n - 1) in
  let lo = int_of_float (Float.floor pos) in
  let hi = int_of_float (Float.ceil pos) in
  if lo = hi then b.(lo)
  else
    let w = pos -. float_of_int lo in
    ((1. -. w) *. b.(lo)) +. (w *. b.(hi))

let median a = quantile 0.5 a

let covariance x y =
  check "covariance" x;
  if Array.length x <> Array.length y then
    invalid_arg "Descriptive.covariance: length mismatch";
  let mx = mean x and my = mean y in
  let acc = ref 0. in
  Array.iteri (fun i xi -> acc := !acc +. ((xi -. mx) *. (y.(i) -. my))) x;
  !acc /. float_of_int (Array.length x)

let correlation x y =
  let sx = stddev x and sy = stddev y in
  if sx = 0. || sy = 0. then 0. else covariance x y /. (sx *. sy)

let autocorrelation ~lag a =
  let n = Array.length a in
  if lag < 0 || lag >= n then 0.
  else
    let m = mean a in
    let denom = Array.fold_left (fun acc x -> acc +. ((x -. m) ** 2.)) 0. a in
    if denom = 0. then 0.
    else begin
      let num = ref 0. in
      for i = 0 to n - 1 - lag do
        num := !num +. ((a.(i) -. m) *. (a.(i + lag) -. m))
      done;
      !num /. denom
    end
