let count_missing a =
  Array.fold_left (fun acc x -> if Float.is_nan x then acc + 1 else acc) 0 a

let fill_constant c a = Array.map (fun x -> if Float.is_nan x then c else x) a

let fill_linear a =
  let n = Array.length a in
  let finite = ref [] in
  Array.iteri (fun i x -> if not (Float.is_nan x) then finite := i :: !finite) a;
  match List.rev !finite with
  | [] -> Array.copy a
  | [ only ] -> Array.make n a.(only)
  | first :: _ as idxs ->
      let idxs = Array.of_list idxs in
      let m = Array.length idxs in
      let last = idxs.(m - 1) in
      let out = Array.copy a in
      let line i j x =
        (* Value at x of the line through finite points i and j. *)
        let xi = float_of_int i and xj = float_of_int j in
        a.(i) +. ((a.(j) -. a.(i)) /. (xj -. xi) *. (float_of_int x -. xi))
      in
      (* Leading run: extrapolate from the first two finite points. *)
      let second = idxs.(1) in
      for x = 0 to first - 1 do
        out.(x) <- line first second x
      done;
      (* Trailing run. *)
      let penult = idxs.(m - 2) in
      for x = last + 1 to n - 1 do
        out.(x) <- line penult last x
      done;
      (* Interior runs: interpolate between bracketing finite points. *)
      for k = 0 to m - 2 do
        let i = idxs.(k) and j = idxs.(k + 1) in
        for x = i + 1 to j - 1 do
          out.(x) <- line i j x
        done
      done;
      out
