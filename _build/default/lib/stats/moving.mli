(** Moving-window transforms on series vectors.

    Used both directly (EXL black-box operators [ma], [diff], [cumsum])
    and by the classical seasonal decomposition, whose trend estimate is
    a centered moving average of one seasonal period. *)

val trailing_average : window:int -> float array -> float array
(** [out.(i)] = mean of the last [window] values ending at [i]; the first
    [window-1] positions average the shorter available prefix. *)

val centered_average : window:int -> float array -> float array
(** Centered moving average; for even windows uses the standard 2x[w] MA
    (half weights at the extremes, as in classical decomposition).
    Positions without a full window are NaN. *)

val diff : ?lag:int -> float array -> float array
(** [out.(i) = a.(i) - a.(i-lag)]; the first [lag] positions are NaN.
    Output has the same length as the input. *)

val cumsum : float array -> float array
val pct_change : ?lag:int -> float array -> float array
(** 100 * (a.(i) - a.(i-lag)) / a.(i-lag); NaN where undefined. *)

val ewma : alpha:float -> float array -> float array
(** Exponentially weighted moving average, [alpha] in (0, 1]. *)
