let tricube u =
  let au = Float.abs u in
  if au >= 1. then 0. else (1. -. (au ** 3.)) ** 3.

let smooth_at ~span ~xs ~ys x0 =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Loess.smooth_at: empty input";
  if n <> Array.length ys then invalid_arg "Loess.smooth_at: length mismatch";
  let span = Stdlib.max 2 (Stdlib.min span n) in
  (* Indices of the [span] nearest points to x0. *)
  let order = Array.init n Fun.id in
  Array.sort
    (fun i j ->
      Float.compare (Float.abs (xs.(i) -. x0)) (Float.abs (xs.(j) -. x0)))
    order;
  let chosen = Array.sub order 0 span in
  let dmax =
    Array.fold_left
      (fun acc i -> Float.max acc (Float.abs (xs.(i) -. x0)))
      0. chosen
  in
  let lx = Array.map (fun i -> xs.(i)) chosen in
  let ly = Array.map (fun i -> ys.(i)) chosen in
  let weights =
    if dmax = 0. then Array.make span 1.
    else Array.map (fun x -> tricube ((x -. x0) /. dmax)) lx
  in
  (* All-zero weights can happen when every neighbour sits exactly at
     distance dmax; fall back to uniform weights. *)
  let weights =
    if Array.for_all (fun w -> w = 0.) weights then Array.make span 1.
    else weights
  in
  Regression.predict (Regression.wls ~weights lx ly) x0

(* For equally spaced positions the [span] nearest neighbours of [i]
   form a contiguous window, so the whole smooth runs in O(n * span)
   instead of sorting distances per point. *)
let smooth ~span ys =
  let n = Array.length ys in
  if n = 0 then [||]
  else begin
    let span = Stdlib.max 2 (Stdlib.min span n) in
    Array.init n (fun i ->
        let lo = Stdlib.max 0 (Stdlib.min (n - span) (i - ((span - 1) / 2))) in
        let hi = lo + span - 1 in
        let dmax =
          float_of_int (Stdlib.max (abs (i - lo)) (abs (hi - i)))
        in
        let lx = Array.init span (fun k -> float_of_int (lo + k)) in
        let ly = Array.sub ys lo span in
        let weights =
          if dmax = 0. then Array.make span 1.
          else Array.map (fun x -> tricube ((x -. float_of_int i) /. dmax)) lx
        in
        let weights =
          if Array.for_all (fun w -> w = 0.) weights then Array.make span 1.
          else weights
        in
        Regression.predict (Regression.wls ~weights lx ly) (float_of_int i))
  end
