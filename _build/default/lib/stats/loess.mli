(** Loess: locally weighted linear regression smoothing.

    The smoother underlying STL [Cleveland et al.]; our [Decompose]
    module uses it for the trend and cycle-subseries smoothing of the
    STL-style variant of the paper's [stl] operator. *)

val smooth_at :
  span:int -> xs:float array -> ys:float array -> float -> float
(** Fitted value at an arbitrary point: the [span] nearest observations
    are fit by tricube-weighted linear regression.
    [span] is clamped to [2 .. length xs]. *)

val smooth : span:int -> float array -> float array
(** Smooth a series indexed by position (xs = 0, 1, 2, ...). *)

val tricube : float -> float
(** The tricube weight [(1 - |u|^3)^3] for |u| < 1, else 0. *)
