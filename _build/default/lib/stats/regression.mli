(** Linear regression (ordinary and weighted least squares).

    EXL lists linear regression among its complex statistical operators;
    it is also the building block of the loess smoother used by the
    STL-style seasonal decomposition. *)

type fit = { slope : float; intercept : float }

val ols : float array -> float array -> fit
(** Simple OLS of y on x. A degenerate x (zero variance) yields slope 0
    and intercept mean(y). *)

val wls : weights:float array -> float array -> float array -> fit
(** Weighted least squares; weights must be non-negative and not all
    zero, else falls back to the mean. *)

val predict : fit -> float -> float
val r_squared : fit -> float array -> float array -> float
(** Coefficient of determination of [fit] on the data; 1 for a perfect
    fit, 0 when no better than the mean. *)

val fitted_line : float array -> float array
(** OLS regression of the values on their index — the linear trend of a
    series, exposed as the EXL black-box operator [lintrend]. *)

val solve_normal_equations : float array array -> float array -> float array
(** [solve_normal_equations a b] solves the linear system [a x = b] by
    Gaussian elimination with partial pivoting (used for multiple
    regression). @raise Invalid_argument on singular systems. *)

val ols_multi : float array array -> float array -> float array
(** Multiple regression: rows of the first argument are observations
    (without intercept column); returns coefficients
    [[| intercept; b1; ...; bk |]]. *)
