type t =
  | Sum
  | Avg
  | Min
  | Max
  | Count
  | Median
  | Stddev
  | Variance
  | Product
  | First
  | Last

let all =
  [ Sum; Avg; Min; Max; Count; Median; Stddev; Variance; Product; First; Last ]

let to_string = function
  | Sum -> "sum"
  | Avg -> "avg"
  | Min -> "min"
  | Max -> "max"
  | Count -> "count"
  | Median -> "median"
  | Stddev -> "stddev"
  | Variance -> "variance"
  | Product -> "product"
  | First -> "first"
  | Last -> "last"

let of_string s =
  match String.lowercase_ascii s with
  | "sum" -> Some Sum
  | "avg" | "mean" | "average" -> Some Avg
  | "min" -> Some Min
  | "max" -> Some Max
  | "count" -> Some Count
  | "median" -> Some Median
  | "stddev" | "sd" -> Some Stddev
  | "variance" | "var" -> Some Variance
  | "product" | "prod" -> Some Product
  | "first" -> Some First
  | "last" -> Some Last
  | _ -> None

let apply t bag =
  match bag with
  | [] -> invalid_arg "Aggregate.apply: empty bag"
  | _ -> (
      let a = Array.of_list bag in
      match t with
      | Sum -> Descriptive.sum a
      | Avg -> Descriptive.mean a
      | Min -> Descriptive.min a
      | Max -> Descriptive.max a
      | Count -> float_of_int (Array.length a)
      | Median -> Descriptive.median a
      | Stddev -> Descriptive.stddev a
      | Variance -> Descriptive.variance a
      | Product -> Descriptive.product a
      | First -> a.(0)
      | Last -> a.(Array.length a - 1))

let is_order_sensitive = function
  | First | Last -> true
  | Sum | Avg | Min | Max | Count | Median | Stddev | Variance | Product ->
      false

let pp ppf t = Format.pp_print_string ppf (to_string t)
