(** Missing-value (NaN) interpolation for series vectors.

    Intermediate transforms (centered moving averages, lagged
    differences) leave NaN holes at series boundaries; decomposition
    needs complete vectors, so these fillers are applied first. *)

val fill_linear : float array -> float array
(** Interior NaN runs are linearly interpolated between their finite
    neighbours; leading/trailing runs are extrapolated from the nearest
    two finite points (or held constant when only one exists).
    An all-NaN input is returned unchanged. *)

val fill_constant : float -> float array -> float array
val count_missing : float array -> int
