open Matrix

(** Machine-checked Section 4.2: chase solution == program output. *)

val run_program_via_chase :
  Exl.Typecheck.checked -> Registry.t -> (Registry.t * Chase.stats, Exl.Errors.t) result
(** Generate the schema mapping, build the data-exchange source
    instance from the registry's elementary cubes, chase, and convert
    the solution back into a registry. *)

val equivalent :
  ?eps:float -> Exl.Typecheck.checked -> Registry.t -> (Chase.stats, string) result
(** Run both the reference interpreter and the chase; [Ok] when every
    non-temporary cube coincides (up to [eps] on measures), [Error]
    with the discrepancies otherwise.  This is the executable form of
    the paper's equivalence theorem. *)
