lib/exchange/instance.ml: Array Cube Format Hashtbl List Matrix Option Printf Registry Schema String Tuple Value
