lib/exchange/delta.ml: Array Chase Cube Domain Float Fun Hashtbl Instance List Mappings Matrix Ops Option Printf Schema Stats Tuple Value
