lib/exchange/instance.mli: Cube Format Matrix Registry Schema Value
