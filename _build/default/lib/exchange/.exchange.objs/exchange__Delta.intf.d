lib/exchange/delta.mli: Chase Instance Mappings
