lib/exchange/verify.mli: Chase Exl Matrix Registry
