lib/exchange/verify.ml: Chase Cube Exl Instance List Mappings Matrix Printf Registry Result Schema String
