lib/exchange/chase.ml: Array Cube Float Hashtbl Instance List Mappings Matrix Ops Option Printf Schema Stats Tuple Value
