lib/exchange/chase.mli: Instance Mappings
