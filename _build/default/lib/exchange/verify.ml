open Matrix

let run_program_via_chase checked registry =
  Result.bind (Mappings.Generate.of_checked checked) (fun generated ->
      let source = Instance.of_registry registry in
      match Chase.run generated.Mappings.Generate.mapping source with
      | Error msg -> Error (Exl.Errors.make msg)
      | Ok (solution, stats) ->
          let elementary =
            List.map
              (fun s -> s.Schema.name)
              generated.Mappings.Generate.mapping.Mappings.Mapping.source
          in
          Ok (Instance.to_registry solution ~elementary, stats))

let equivalent ?(eps = 1e-7) checked registry =
  let err_of e = Exl.Errors.to_string e in
  match Exl.Interp.run checked registry with
  | Error e -> Error ("interpreter failed: " ^ err_of e)
  | Ok reference -> (
      match run_program_via_chase checked registry with
      | Error e -> Error ("chase failed: " ^ err_of e)
      | Ok (chased, stats) ->
          (* Compare all cubes of the original program; the chase result
             additionally holds normalizer temporaries, which have no
             counterpart in the reference run. *)
          let problems = ref [] in
          List.iter
            (fun name ->
              let ref_cube = Registry.find_exn reference name in
              match Registry.find chased name with
              | None ->
                  problems := Printf.sprintf "missing cube %s" name :: !problems
              | Some got ->
                  if not (Cube.equal_data ~eps ref_cube got) then
                    problems :=
                      Printf.sprintf "cube %s differs: %s" name
                        (String.concat "; " (Cube.diff_data ~eps ref_cube got))
                      :: !problems)
            (Registry.names reference);
          if !problems = [] then Ok stats
          else Error (String.concat "\n" (List.rev !problems)))
