(** Incremental (delta) chase: tuple-level change propagation.

    The determination engine (paper, Section 6) invalidates whole cubes
    when elementary data changes; statistical revisions, however,
    usually touch a handful of tuples.  This module maintains a
    data-exchange solution under such revisions: given the previous
    solution and the new source instance, it re-derives only the facts
    whose derivations involve changed tuples — semi-naive evaluation
    adapted to the extended tgds (affected join bindings for
    tuple-level tgds, affected groups for aggregations, affected slices
    for black boxes, affected keys for outer combines).

    Requires the generated (unfused) mapping: generated tgds give every
    target fact a unique derivation (that is what the functionality
    egds certify), so deletion never needs counting. *)

type delta = { added : Instance.fact list; removed : Instance.fact list }

val diff : old_facts:Instance.fact list -> new_facts:Instance.fact list -> delta

val run_incremental :
  ?in_place:bool ->
  Mappings.Mapping.t ->
  base:Instance.t ->
  source:Instance.t ->
  (Instance.t * Chase.stats, string) result
(** [base] is a previous solution of the data-exchange problem (as
    produced by {!Chase.run}); [source] is the {e new} source instance
    (full contents of every source relation).  Returns the new solution
    — property-tested equal to a full re-chase — touching only affected
    facts.  [stats.tuples_generated] counts re-derived facts, a measure
    of how much work the revision actually required.  With [in_place]
    the base instance is updated destructively (what a long-running
    engine maintaining its solution would do) instead of copied. *)

val affected_of_stats : Chase.stats -> int
(** Convenience: facts re-derived during an incremental run. *)
