bin/exlrun.ml: Arg Cmd Cmdliner Core Csv Cube Exl Filename Fun List Matrix Printf Registry Schema String Sys Term
