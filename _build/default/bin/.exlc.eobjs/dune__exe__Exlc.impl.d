bin/exlc.ml: Arg Cmd Cmdliner Core Engine Exl Filename Fun List Option Printf Result String Sys Term
