bin/exlc.mli:
