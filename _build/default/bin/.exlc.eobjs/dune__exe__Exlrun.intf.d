bin/exlrun.mli:
