(* exlrun: execute an EXL program against CSV data.

   Elementary cubes are read from <data-dir>/<CUBE>.csv (header row:
   dimension names then the measure name); derived cubes are written to
   <out-dir>/<CUBE>.csv.

   Examples:
     exlrun program.exl --data ./data --out ./results
     exlrun program.exl --data ./data --backend etl --verify *)

open Cmdliner
open Matrix

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let backend_conv =
  Arg.enum
    [
      ("reference", Core.Reference);
      ("chase", Core.Chase);
      ("sql", Core.Sql);
      ("vector", Core.Vector_engine);
      ("etl", Core.Etl_engine);
    ]

let load_data data_dir (program : Core.program) =
  let registry = Registry.create () in
  let errors = ref [] in
  List.iter
    (fun schema ->
      let path = Filename.concat data_dir (schema.Schema.name ^ ".csv") in
      if Sys.file_exists path then
        match Csv.cube_of_string schema (read_file path) with
        | Ok cube -> Registry.add registry Registry.Elementary cube
        | Error msg -> errors := Printf.sprintf "%s: %s" path msg :: !errors
      else
        Printf.eprintf "warning: no data for elementary cube %s (%s missing)\n"
          schema.Schema.name path)
    (Exl.Typecheck.elementary_schemas program);
  if !errors = [] then Ok registry
  else Error (String.concat "\n" (List.rev !errors))

let write_results out_dir (program : Core.program) result =
  (try Sys.mkdir out_dir 0o755 with _ -> ());
  List.iter
    (fun schema ->
      let name = schema.Schema.name in
      if not (Exl.Normalize.is_temp name) then
        match Registry.find result name with
        | Some cube ->
            let path = Filename.concat out_dir (name ^ ".csv") in
            let oc = open_out path in
            Fun.protect
              ~finally:(fun () -> close_out_noerr oc)
              (fun () -> Csv.cube_to_channel oc cube);
            Printf.printf "wrote %s (%d tuples)\n" path (Cube.cardinality cube)
        | None -> ())
    (Exl.Typecheck.derived_schemas program)

let run file data_dir out_dir backend verify =
  let source = read_file file in
  match Exl.Program.load source with
  | Error e ->
      prerr_endline
        ("error: " ^ Exl.Errors.to_string_with_source ~source e);
      1
  | Ok program -> (
      match load_data data_dir program with
      | Error msg ->
          prerr_endline ("error: " ^ msg);
          1
      | Ok registry -> (
          let verified =
            if verify then Core.verify_all_backends program registry
            else Ok ()
          in
          match verified with
          | Error msg ->
              prerr_endline ("verification failed:\n" ^ msg);
              1
          | Ok () -> (
              if verify then
                print_endline "verification: all back ends agree";
              match Core.run ~backend program registry with
              | Error msg ->
                  prerr_endline ("error: " ^ msg);
                  1
              | Ok result ->
                  write_results out_dir program result;
                  0)))

let file_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"EXL program file.")

let data_arg =
  Arg.(
    required
    & opt (some dir) None
    & info [ "d"; "data" ] ~docv:"DIR" ~doc:"Directory with <CUBE>.csv input files.")

let out_arg =
  Arg.(
    value & opt string "results"
    & info [ "o"; "out" ] ~docv:"DIR" ~doc:"Output directory (default: results).")

let backend_arg =
  Arg.(
    value
    & opt backend_conv Core.Reference
    & info [ "b"; "backend" ] ~docv:"BACKEND"
        ~doc:
          "Execution back end: $(b,reference) (default), $(b,chase), $(b,sql), \
           $(b,vector) or $(b,etl).")

let verify_arg =
  Arg.(
    value & flag
    & info [ "verify" ]
        ~doc:"Run all back ends and check they produce identical cubes first.")

let cmd =
  let doc = "run EXL statistical programs against CSV data" in
  Cmd.v
    (Cmd.info "exlrun" ~version:"1.0" ~doc)
    Term.(const run $ file_arg $ data_arg $ out_arg $ backend_arg $ verify_arg)

let () = exit (Cmd.eval' cmd)
