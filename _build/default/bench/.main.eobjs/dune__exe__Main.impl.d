bench/main.ml: Analyze Array Bechamel Benchmark Core Engine Experiments Float Hashtbl Instance List Measure Option Printf Staged String Sys Test Time Toolkit Workload
