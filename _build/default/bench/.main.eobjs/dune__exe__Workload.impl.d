bench/workload.ml: Buffer Calendar Cube Domain Float List Matrix Printf Registry Schema Tuple Value
