bench/main.mli:
