bench/experiments.ml: Core Engine Exchange Exl List Mappings Matrix Printf Registry Relational Stdlib Sys Unix Workload
