(* Benchmark entry point.

     dune exec bench/main.exe            -- run experiments X1-X6 + micro suite
     dune exec bench/main.exe -- x3      -- one experiment
     dune exec bench/main.exe -- micro   -- only the Bechamel micro suite

   The experiment tables are the reproduction of the paper's (prose)
   evaluation; see EXPERIMENTS.md for the paper-vs-measured discussion. *)

open Bechamel
open Toolkit

(* One Bechamel test per experiment: a small, fixed-size kernel of the
   code path the experiment studies. *)
let micro_tests () =
  let join_program = Core.compile_exn Workload.join_program in
  let join_data = Workload.join_registry ~rows:2_000 () in
  let overview_program = Core.compile_exn Workload.overview_program in
  let overview_data = Workload.overview_registry ~regions:2 ~years:2 () in
  let chain_source = Workload.chain_program ~length:8 in
  let stl_program = Core.compile_exn Workload.stl_program in
  let stl_data = Workload.series_registry ~quarters:120 ~regions:4 () in
  let run backend program data () =
    match Core.run ~backend program data with
    | Ok _ -> ()
    | Error msg -> failwith msg
  in
  Test.make_grouped ~name:"exlengine" ~fmt:"%s %s"
    [
      Test.make ~name:"x1 figure1 join on etl"
        (Staged.stage (run Core.Etl_engine join_program join_data));
      Test.make ~name:"x1 figure1 join on sql"
        (Staged.stage (run Core.Sql join_program join_data));
      Test.make ~name:"x2 overview end-to-end (reference)"
        (Staged.stage (run Core.Reference overview_program overview_data));
      Test.make ~name:"x3 translation exl->mapping->sql"
        (Staged.stage (fun () ->
             match Core.sql_of (Core.compile_exn chain_source) with
             | Ok _ -> ()
             | Error msg -> failwith msg));
      Test.make ~name:"x4 chase on overview"
        (Staged.stage (run Core.Chase overview_program overview_data));
      Test.make ~name:"x5 determination affected-set"
        (Staged.stage
           (let d = Engine.Determination.create () in
            (match
               Engine.Determination.register_source d ~name:"p"
                 Workload.overview_program
             with
            | Ok () -> ()
            | Error msg -> failwith msg);
            fun () ->
              ignore (Engine.Determination.affected d ~changed:[ "RGDPPC" ])));
      Test.make ~name:"x6 stl blackbox on vector"
        (Staged.stage (run Core.Vector_engine stl_program stl_data));
    ]

let run_micro () =
  print_endline "\n### Bechamel micro suite (ns/run, OLS estimate)\n";
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:None () in
  let raw = Benchmark.all cfg [ Instance.monotonic_clock ] (micro_tests ()) in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold (fun name result acc -> (name, result) :: acc) results []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  Printf.printf "%-45s %15s %8s\n" "benchmark" "time/run" "r^2";
  List.iter
    (fun (name, result) ->
      let estimate =
        match Analyze.OLS.estimates result with
        | Some [ e ] -> e
        | _ -> Float.nan
      in
      let human =
        if estimate > 1e9 then Printf.sprintf "%8.2f s" (estimate /. 1e9)
        else if estimate > 1e6 then Printf.sprintf "%8.2f ms" (estimate /. 1e6)
        else if estimate > 1e3 then Printf.sprintf "%8.2f us" (estimate /. 1e3)
        else Printf.sprintf "%8.0f ns" estimate
      in
      Printf.printf "%-45s %15s %8.4f\n" name human
        (Option.value ~default:Float.nan (Analyze.OLS.r_square result)))
    rows

let () =
  let args = Array.to_list Sys.argv in
  match args with
  | _ :: "x1" :: _ -> Experiments.x1 ()
  | _ :: "x2" :: _ -> Experiments.x2 ()
  | _ :: "x3" :: _ -> Experiments.x3 ()
  | _ :: "x4" :: _ -> Experiments.x4 ()
  | _ :: "x5" :: _ -> Experiments.x5 ()
  | _ :: "x6" :: _ -> Experiments.x6 ()
  | _ :: "x7" :: _ -> Experiments.x7 ()
  | _ :: "x8" :: _ -> Experiments.x8 ()
  | _ :: "x9" :: _ -> Experiments.x9 ()
  | _ :: "micro" :: _ -> run_micro ()
  | _ ->
      print_endline "EXLEngine benchmark harness (see EXPERIMENTS.md)";
      Experiments.all ();
      run_micro ()
