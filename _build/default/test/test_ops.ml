(* The shared operator catalogues: binops, scalar functions, dimension
   functions, black boxes. *)
open Matrix
open Helpers

(* --- binops --- *)

let test_binop_eval () =
  Alcotest.(check (option Helpers.floats)) "add" (Some 5.)
    (Ops.Binop.eval Ops.Binop.Add 2. 3.);
  Alcotest.(check (option Helpers.floats)) "div by zero" None
    (Ops.Binop.eval Ops.Binop.Div 1. 0.);
  Alcotest.(check (option Helpers.floats)) "pow" (Some 8.)
    (Ops.Binop.eval Ops.Binop.Pow 2. 3.);
  (* 0 ^ -1 = inf: kept as a value; NaN results are dropped *)
  Alcotest.(check (option Helpers.floats)) "nan dropped" None
    (Ops.Binop.eval Ops.Binop.Pow (-1.) 0.5)

let test_binop_eval_value_nulls () =
  Alcotest.check value "null propagates" Value.Null
    (Ops.Binop.eval_value Ops.Binop.Add Value.Null (vf 1.));
  Alcotest.check value "string is null" Value.Null
    (Ops.Binop.eval_value Ops.Binop.Add (vs "x") (vf 1.));
  Alcotest.check value "int widens" (vf 3.)
    (Ops.Binop.eval_value Ops.Binop.Add (vi 1) (vf 2.))

(* --- scalar functions --- *)

let test_scalar_log_base () =
  let log_fn = Ops.Scalar_fn.find_exn "log" in
  Alcotest.(check (option Helpers.floats)) "log2 8" (Some 3.)
    (Ops.Scalar_fn.apply log_fn ~params:[ 2. ] 8.);
  Alcotest.(check (option Helpers.floats)) "ln e" (Some 1.)
    (Ops.Scalar_fn.apply log_fn ~params:[] (exp 1.));
  Alcotest.(check (option Helpers.floats)) "log of negative" None
    (Ops.Scalar_fn.apply log_fn ~params:[] (-1.))

let test_scalar_param_count_enforced () =
  let sqrt_fn = Ops.Scalar_fn.find_exn "sqrt" in
  Alcotest.(check (option Helpers.floats)) "extra params rejected" None
    (Ops.Scalar_fn.apply sqrt_fn ~params:[ 2. ] 4.)

let test_scalar_registration () =
  Ops.Scalar_fn.register ~name:"test_triple" (fun _ x -> 3. *. x);
  Alcotest.(check (option Helpers.floats)) "registered" (Some 6.)
    (Ops.Scalar_fn.apply (Ops.Scalar_fn.find_exn "test_triple") ~params:[] 2.);
  Alcotest.check_raises "duplicate"
    (Invalid_argument "Scalar_fn.register: duplicate function test_triple")
    (fun () -> Ops.Scalar_fn.register ~name:"test_triple" (fun _ x -> x));
  (* registered functions are usable from EXL end to end *)
  let reg = Registry.create () in
  Registry.add reg Registry.Elementary
    (cube_of "A" [ ("x", Domain.Int) ] [ [ vi 1; vf 2. ] ]);
  let out =
    check_ok
      (Exl.Program.run_source "cube A(x: int);\nB := test_triple(A);\n" reg)
  in
  Alcotest.check value "via exl" (vf 6.)
    (Option.get (Cube.find (Registry.find_exn out "B") (key [ vi 1 ])))

(* --- dimension functions --- *)

let test_dim_fn_quarter_of_date () =
  let quarter_fn = Ops.Dim_fn.find_exn "quarter" in
  Alcotest.(check (option value)) "date" (Some (vq 2023 3))
    (Ops.Dim_fn.apply quarter_fn (vd 2023 8 15));
  Alcotest.(check (option value)) "month" (Some (vq 2023 1))
    (Ops.Dim_fn.apply quarter_fn (vm 2023 2));
  Alcotest.(check (option value)) "non-temporal" None
    (Ops.Dim_fn.apply quarter_fn (vi 3))

let test_dim_fn_applicability () =
  let year_fn = Ops.Dim_fn.find_exn "year" in
  Alcotest.(check bool) "date ok" true (Ops.Dim_fn.applicable year_fn Domain.Date);
  Alcotest.(check bool) "finer period ok" true
    (Ops.Dim_fn.applicable year_fn (Domain.Period (Some Calendar.Month)));
  let month_fn = Ops.Dim_fn.find_exn "month" in
  Alcotest.(check bool) "coarser period rejected" false
    (Ops.Dim_fn.applicable month_fn (Domain.Period (Some Calendar.Year)))

(* --- black boxes --- *)

let test_blackbox_case_insensitive_lookup () =
  Alcotest.(check bool) "stl_T found" true (Ops.Blackbox.exists "stl_T");
  Alcotest.(check bool) "STL_T found" true (Ops.Blackbox.exists "STL_T")

let test_blackbox_default_period () =
  Alcotest.(check (option int)) "quarter" (Some 4)
    (Ops.Blackbox.default_period Calendar.Quarter);
  Alcotest.(check (option int)) "month" (Some 12)
    (Ops.Blackbox.default_period Calendar.Month);
  Alcotest.(check (option int)) "year" None
    (Ops.Blackbox.default_period Calendar.Year)

let test_blackbox_param_validation () =
  let ma = Ops.Blackbox.find_exn "ma" in
  match Ops.Blackbox.apply_vector ma ~params:[] ~freq:None [| 1.; 2. |] with
  | Error msg ->
      Alcotest.(check bool) "explains" true
        (Astring_contains.contains msg "parameters")
  | Ok _ -> Alcotest.fail "expected parameter error"

let test_blackbox_period_inference_failure () =
  let stl = Ops.Blackbox.find_exn "stl_t" in
  match
    Ops.Blackbox.apply_vector stl ~params:[] ~freq:(Some Calendar.Year)
      (Array.init 20 float_of_int)
  with
  | Error msg ->
      Alcotest.(check bool) "mentions period" true
        (Astring_contains.contains msg "period")
  | Ok _ -> Alcotest.fail "expected period inference failure"

let test_blackbox_explicit_period_param () =
  let stl = Ops.Blackbox.find_exn "stl_t" in
  let xs = Array.init 20 (fun i -> float_of_int (i mod 5)) in
  match Ops.Blackbox.apply_vector stl ~params:[ 5. ] ~freq:None xs with
  | Ok out -> Alcotest.(check int) "same length" 20 (Array.length out)
  | Error msg -> Alcotest.fail msg

let test_blackbox_apply_cube_slices () =
  (* Two slices with different lengths: each processed independently. *)
  let c =
    cube_of "S"
      [ ("q", Domain.Period (Some Calendar.Quarter)); ("r", Domain.String) ]
      (List.concat
         [
           List.init 10 (fun i ->
               [ vq (2020 + (i / 4)) ((i mod 4) + 1); vs "a"; vf (float_of_int i) ]);
           List.init 6 (fun i ->
               [ vq (2020 + (i / 4)) ((i mod 4) + 1); vs "b"; vf (float_of_int (2 * i)) ]);
         ])
  in
  let cumsum = Ops.Blackbox.find_exn "cumsum" in
  match Ops.Blackbox.apply_cube cumsum ~params:[] c with
  | Error msg -> Alcotest.fail msg
  | Ok out ->
      Alcotest.(check int) "all tuples kept" 16 (Cube.cardinality out);
      (* last value of slice b = 0+2+4+6+8+10 = 30 *)
      Alcotest.check value "slice b cumsum" (vf 30.)
        (Option.get (Cube.find out (key [ vq 2021 2; vs "b" ])))

let test_blackbox_rejects_two_time_dims () =
  let c =
    cube_of "S"
      [
        ("q", Domain.Period (Some Calendar.Quarter));
        ("d", Domain.Date);
      ]
      [ [ vq 2020 1; vd 2020 1 1; vf 1. ] ]
  in
  let cumsum = Ops.Blackbox.find_exn "cumsum" in
  match Ops.Blackbox.apply_cube cumsum ~params:[] c with
  | Error msg ->
      Alcotest.(check bool) "explains" true
        (Astring_contains.contains msg "temporal")
  | Ok _ -> Alcotest.fail "expected rejection"

let test_blackbox_nan_outputs_dropped () =
  let c =
    cube_of "S"
      [ ("q", Domain.Period (Some Calendar.Quarter)) ]
      (List.init 6 (fun i ->
           [ vq (2020 + (i / 4)) ((i mod 4) + 1); vf (float_of_int i) ]))
  in
  let diff = Ops.Blackbox.find_exn "diff" in
  match Ops.Blackbox.apply_cube diff ~params:[] c with
  | Error msg -> Alcotest.fail msg
  | Ok out ->
      (* first point of the series has no predecessor: NaN, dropped *)
      Alcotest.(check int) "one dropped" 5 (Cube.cardinality out);
      Alcotest.(check bool) "first missing" false (Cube.mem out (key [ vq 2020 1 ]))

let test_blackbox_registration_end_to_end () =
  Ops.Blackbox.register ~name:"test_reverse" (fun ~params:_ ~period:_ a ->
      let n = Array.length a in
      Array.init n (fun i -> a.(n - 1 - i)));
  let reg = Registry.create () in
  Registry.add reg Registry.Elementary
    (cube_of "A"
       [ ("q", Domain.Period (Some Calendar.Quarter)) ]
       [ [ vq 2020 1; vf 1. ]; [ vq 2020 2; vf 2. ] ]);
  let out =
    check_ok
      (Exl.Program.run_source "cube A(q: quarter);\nB := test_reverse(A);\n" reg)
  in
  Alcotest.check value "reversed" (vf 2.)
    (Option.get (Cube.find (Registry.find_exn out "B") (key [ vq 2020 1 ])))

let suite =
  [
    ("binop: eval", `Quick, test_binop_eval);
    ("binop: null propagation", `Quick, test_binop_eval_value_nulls);
    ("scalar: log base", `Quick, test_scalar_log_base);
    ("scalar: param count", `Quick, test_scalar_param_count_enforced);
    ("scalar: user registration", `Quick, test_scalar_registration);
    ("dimfn: quarter", `Quick, test_dim_fn_quarter_of_date);
    ("dimfn: applicability", `Quick, test_dim_fn_applicability);
    ("blackbox: case-insensitive", `Quick, test_blackbox_case_insensitive_lookup);
    ("blackbox: default periods", `Quick, test_blackbox_default_period);
    ("blackbox: param validation", `Quick, test_blackbox_param_validation);
    ("blackbox: period inference failure", `Quick, test_blackbox_period_inference_failure);
    ("blackbox: explicit period", `Quick, test_blackbox_explicit_period_param);
    ("blackbox: slice-wise application", `Quick, test_blackbox_apply_cube_slices);
    ("blackbox: rejects two time dims", `Quick, test_blackbox_rejects_two_time_dims);
    ("blackbox: nan outputs dropped", `Quick, test_blackbox_nan_outputs_dropped);
    ("blackbox: user registration end-to-end", `Quick, test_blackbox_registration_end_to_end);
  ]
