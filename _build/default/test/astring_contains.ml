(* Substring check (no external string library in the test deps). *)
let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  if n = 0 then true
  else
    let rec loop i =
      if i + n > h then false
      else if String.sub haystack i n = needle then true
      else loop (i + 1)
    in
    loop 0
