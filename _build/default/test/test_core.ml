(* The public Core facade. *)
open Matrix
open Helpers

let core_ok = function
  | Ok v -> v
  | Error msg -> Alcotest.failf "unexpected error: %s" msg

let test_backend_names () =
  Alcotest.(check (list string)) "names"
    [ "reference"; "chase"; "sql"; "vector"; "etl" ]
    (List.map Core.backend_name Core.all_backends)

let test_compile_reports_errors () =
  match Core.compile "B := MISSING + 1;\n" with
  | Error msg ->
      Alcotest.(check bool) "mentions cube" true
        (Astring_contains.contains msg "MISSING")
  | Ok _ -> Alcotest.fail "expected a compile error"

let test_artifacts_all_produced () =
  let program = Core.compile_exn Helpers.overview_program in
  List.iter
    (fun (label, produce) ->
      let text = core_ok (produce program) in
      Alcotest.(check bool) (label ^ " non-empty") true (String.length text > 0))
    [
      ("tgds", Core.tgds_of);
      ("sql", Core.sql_of ?fused:None);
      ("ddl", Core.ddl_of);
      ("r", Core.r_of);
      ("matlab", Core.matlab_of);
      ("kettle", Core.kettle_of);
    ]

let test_verify_reports_differences () =
  (* A deliberately broken back end comparison: feed verify a program
     whose reference run fails (log of a negative constant). *)
  match Core.compile "K := ln(0 - 1);\n" with
  | Error _ -> () (* rejected at compile time is fine too *)
  | Ok program -> (
      match Core.verify_all_backends program (Registry.create ()) with
      | Error msg ->
          Alcotest.(check bool) "explains failure" true (String.length msg > 0)
      | Ok () -> Alcotest.fail "expected a failure report")

let test_r_io_primitives () =
  let program = Core.compile_exn Helpers.overview_program in
  let r = check_ok (Vector.Vector_target.r_script_of_program ~io:true program) in
  Alcotest.(check bool) "reads sources" true
    (Astring_contains.contains r "PDR <- read.csv(\"PDR.csv\")");
  Alcotest.(check bool) "writes finals" true
    (Astring_contains.contains r "write.csv(PCHNG, \"PCHNG.csv\"");
  Alcotest.(check bool) "temps not written" false
    (Astring_contains.contains r "write.csv(PCHNG__1")

let test_run_on_every_backend () =
  let program = Core.compile_exn Helpers.overview_program in
  let data = overview_registry () in
  List.iter
    (fun backend ->
      let result = core_ok (Core.run ~backend program data) in
      Alcotest.(check bool)
        (Core.backend_name backend ^ " produced PCHNG")
        true
        (Cube.cardinality (Registry.find_exn result "PCHNG") > 0))
    Core.all_backends

let suite =
  [
    ("backend names", `Quick, test_backend_names);
    ("compile reports errors", `Quick, test_compile_reports_errors);
    ("all artifacts produced", `Quick, test_artifacts_all_produced);
    ("verify reports differences", `Quick, test_verify_reports_differences);
    ("r io primitives", `Quick, test_r_io_primitives);
    ("run on every backend", `Quick, test_run_on_every_backend);
  ]
