(* The Matrix data model substrate: calendar, values, domains, tuples,
   cubes, series, registries, CSV. *)
open Matrix
open Helpers

(* --- calendar: dates --- *)

let date_testable = Helpers.date

let test_date_rata_die_roundtrip () =
  List.iter
    (fun (y, m, d) ->
      let date = Calendar.Date.make ~year:y ~month:m ~day:d in
      Alcotest.check date_testable "roundtrip" date
        (Calendar.Date.of_rata_die (Calendar.Date.to_rata_die date)))
    [
      (2000, 3, 1); (1999, 12, 31); (2024, 2, 29); (1582, 10, 15);
      (1, 1, 1); (2100, 2, 28); (2400, 2, 29);
    ]

let test_date_known_epoch () =
  (* Hinnant's algorithm: 1970-01-01 is 719468 days after 0000-03-01. *)
  Alcotest.(check int) "epoch" 719468
    (Calendar.Date.to_rata_die (Calendar.Date.make ~year:1970 ~month:1 ~day:1))

let test_date_day_of_week () =
  (* 2026-07-05 is a Sunday (ISO: 6 with Monday = 0). *)
  Alcotest.(check int) "sunday" 6
    (Calendar.Date.day_of_week (Calendar.Date.make ~year:2026 ~month:7 ~day:5));
  Alcotest.(check int) "thursday" 3
    (Calendar.Date.day_of_week (Calendar.Date.make ~year:1970 ~month:1 ~day:1))

let test_date_leap_years () =
  Alcotest.(check bool) "2024" true (Calendar.Date.is_leap_year 2024);
  Alcotest.(check bool) "1900" false (Calendar.Date.is_leap_year 1900);
  Alcotest.(check bool) "2000" true (Calendar.Date.is_leap_year 2000);
  Alcotest.(check int) "feb 2024" 29 (Calendar.Date.days_in_month ~year:2024 ~month:2);
  Alcotest.(check (option date_testable)) "invalid date" None
    (Calendar.Date.make_opt ~year:2023 ~month:2 ~day:29)

let test_date_add_days () =
  let d = Calendar.Date.make ~year:2023 ~month:12 ~day:31 in
  Alcotest.check date_testable "new year"
    (Calendar.Date.make ~year:2024 ~month:1 ~day:1)
    (Calendar.Date.add_days d 1);
  Alcotest.check date_testable "leap straddle"
    (Calendar.Date.make ~year:2024 ~month:3 ~day:1)
    (Calendar.Date.add_days (Calendar.Date.make ~year:2024 ~month:2 ~day:28) 2)

let test_date_string_roundtrip () =
  let d = Calendar.Date.make ~year:2023 ~month:7 ~day:5 in
  Alcotest.(check string) "iso" "2023-07-05" (Calendar.Date.to_string d);
  Alcotest.(check (option date_testable)) "parse" (Some d)
    (Calendar.Date.of_string "2023-07-05");
  Alcotest.(check (option date_testable)) "reject" None
    (Calendar.Date.of_string "2023-13-05")

(* --- calendar: periods --- *)

let test_period_of_date () =
  let d = Calendar.Date.make ~year:2023 ~month:8 ~day:17 in
  let check_conv freq expected =
    Alcotest.(check string) expected expected
      (Calendar.Period.to_string (Calendar.Period.of_date freq d))
  in
  check_conv Calendar.Year "2023";
  check_conv Calendar.Semester "2023S2";
  check_conv Calendar.Quarter "2023Q3";
  check_conv Calendar.Month "2023M08";
  check_conv Calendar.Day "2023-08-17"

let test_period_shift_across_years () =
  let q4 = Calendar.Period.quarter 2023 4 in
  Alcotest.check period "wraps" (Calendar.Period.quarter 2024 1)
    (Calendar.Period.shift q4 1);
  Alcotest.check period "back two years" (Calendar.Period.quarter 2021 4)
    (Calendar.Period.shift q4 (-8));
  let m1 = Calendar.Period.month 2020 1 in
  Alcotest.check period "months" (Calendar.Period.month 2019 12)
    (Calendar.Period.shift m1 (-1))

let test_period_start_end () =
  let q2 = Calendar.Period.quarter 2023 2 in
  Alcotest.check date_testable "start"
    (Calendar.Date.make ~year:2023 ~month:4 ~day:1)
    (Calendar.Period.start_date q2);
  Alcotest.check date_testable "end"
    (Calendar.Date.make ~year:2023 ~month:6 ~day:30)
    (Calendar.Period.end_date q2)

let test_period_iso_weeks () =
  (* ISO: week 1 of 2021 starts on Monday 2021-01-04. *)
  let w1 = Calendar.Period.week 2021 1 in
  Alcotest.check date_testable "start of 2021W01"
    (Calendar.Date.make ~year:2021 ~month:1 ~day:4)
    (Calendar.Period.start_date w1);
  Alcotest.(check string) "prints" "2021W01" (Calendar.Period.to_string w1);
  (* 2021-01-01 belongs to ISO week 2020W53. *)
  let containing =
    Calendar.Period.of_date Calendar.Week
      (Calendar.Date.make ~year:2021 ~month:1 ~day:1)
  in
  Alcotest.(check string) "iso year boundary" "2020W53"
    (Calendar.Period.to_string containing)

let test_period_string_roundtrip () =
  List.iter
    (fun s ->
      match Calendar.Period.of_string s with
      | Some p -> Alcotest.(check string) s s (Calendar.Period.to_string p)
      | None -> Alcotest.failf "failed to parse %s" s)
    [ "2023"; "2023S1"; "2023Q4"; "2023M11"; "2021W01"; "2023-02-28" ]

let test_period_convert () =
  let m = Calendar.Period.month 2023 8 in
  Alcotest.check period "month to quarter" (Calendar.Period.quarter 2023 3)
    (Calendar.Period.convert Calendar.Quarter m);
  Alcotest.check_raises "finer rejected"
    (Invalid_argument "Calendar.Period.convert: cannot convert to finer frequency")
    (fun () -> ignore (Calendar.Period.convert Calendar.Month (Calendar.Period.year 2023)))

let test_period_range () =
  let a = Calendar.Period.quarter 2023 3 in
  let b = Calendar.Period.quarter 2024 2 in
  Alcotest.(check (list string)) "range"
    [ "2023Q3"; "2023Q4"; "2024Q1"; "2024Q2" ]
    (List.map Calendar.Period.to_string (Calendar.Period.range a b))

let prop_period_shift_inverse =
  QCheck.Test.make ~count:200 ~name:"period shift is invertible"
    QCheck.(pair (int_range (-5000) 5000) (int_range (-500) 500))
    (fun (index, s) ->
      let p = Calendar.Period.make Calendar.Month index in
      Calendar.Period.equal p
        (Calendar.Period.shift (Calendar.Period.shift p s) (-s)))

let prop_date_rata_die_bijective =
  QCheck.Test.make ~count:200 ~name:"rata die is bijective"
    QCheck.(int_range (-100_000) 1_000_000)
    (fun rd -> Calendar.Date.to_rata_die (Calendar.Date.of_rata_die rd) = rd)

let prop_period_of_date_contains =
  QCheck.Test.make ~count:200 ~name:"of_date period contains the date"
    QCheck.(pair (int_range 0 800_000) (int_range 0 4))
    (fun (rd, fi) ->
      let freq =
        List.nth Calendar.[ Year; Semester; Quarter; Month; Week ] fi
      in
      let d = Calendar.Date.of_rata_die rd in
      let p = Calendar.Period.of_date freq d in
      Calendar.Date.compare (Calendar.Period.start_date p) d <= 0
      && Calendar.Date.compare d (Calendar.Period.end_date p) <= 0)

(* --- values --- *)

let test_value_numeric_cross_type () =
  Alcotest.(check int) "int = float" 0 (Value.compare (vi 2) (vf 2.));
  Alcotest.(check bool) "equal" true (Value.equal (vi 2) (vf 2.));
  Alcotest.(check bool) "hash agrees" true
    (Value.hash (vi 2) = Value.hash (vf 2.))

let test_value_guess () =
  Alcotest.check value "int" (vi 42) (Value.of_string_guess "42");
  Alcotest.check value "float" (vf 4.5) (Value.of_string_guess "4.5");
  Alcotest.check value "date" (vd 2023 1 2) (Value.of_string_guess "2023-01-02");
  Alcotest.check value "period" (vq 2023 1) (Value.of_string_guess "2023Q1");
  Alcotest.check value "string" (vs "north") (Value.of_string_guess "north");
  Alcotest.check value "null" Value.Null (Value.of_string_guess "");
  Alcotest.check value "bool" (Value.Bool true) (Value.of_string_guess "true")

let test_value_nan_becomes_null () =
  Alcotest.check value "nan" Value.Null (Value.of_float Float.nan)

(* --- domains --- *)

let test_domain_membership () =
  Alcotest.(check bool) "int in float" true (Domain.member (vi 1) Domain.Float);
  Alcotest.(check bool) "null anywhere" true (Domain.member Value.Null Domain.String);
  Alcotest.(check bool) "freq match" true
    (Domain.member (vq 2023 1) (Domain.Period (Some Calendar.Quarter)));
  Alcotest.(check bool) "freq mismatch" false
    (Domain.member (vm 2023 1) (Domain.Period (Some Calendar.Quarter)))

let test_domain_union () =
  Alcotest.(check (option string)) "int/float" (Some "float")
    (Option.map Domain.to_string (Domain.union Domain.Int Domain.Float));
  Alcotest.(check (option string)) "periods" (Some "period")
    (Option.map Domain.to_string
       (Domain.union
          (Domain.Period (Some Calendar.Quarter))
          (Domain.Period (Some Calendar.Month))));
  Alcotest.(check bool) "string/int" true
    (Domain.union Domain.String Domain.Int = None)

(* --- tuples --- *)

let test_tuple_ordering () =
  let a = key [ vi 1; vs "a" ] and b = key [ vi 1; vs "b" ] in
  Alcotest.(check bool) "a < b" true (Tuple.compare a b < 0);
  Alcotest.(check bool) "project" true
    (Tuple.equal (Tuple.project b [| 1 |]) (key [ vs "b" ]))

let prop_tuple_hash_consistent =
  QCheck.Test.make ~count:200 ~name:"tuple equal implies equal hash"
    QCheck.(pair (list (int_range 0 5)) (list (int_range 0 5)))
    (fun (xs, ys) ->
      let t1 = key (List.map vi xs) and t2 = key (List.map vi ys) in
      (not (Tuple.equal t1 t2)) || Tuple.hash t1 = Tuple.hash t2)

(* --- cubes --- *)

let test_cube_functionality () =
  let c = cube_of "C" [ ("x", Domain.Int) ] [ [ vi 1; vf 2. ] ] in
  Cube.add_strict c (key [ vi 1 ]) (vf 2.);
  (* same value: fine *)
  Alcotest.check_raises "conflict"
    (Cube.Functionality_violation { cube = "C"; key = key [ vi 1 ] })
    (fun () -> Cube.add_strict c (key [ vi 1 ]) (vf 3.))

let test_cube_null_measure_dropped () =
  let c = cube_of "C" [ ("x", Domain.Int) ] [] in
  Cube.set c (key [ vi 1 ]) Value.Null;
  Alcotest.(check int) "empty" 0 (Cube.cardinality c)

let test_cube_merge_join_intersection () =
  let a = cube_of "A" [ ("x", Domain.Int) ] [ [ vi 1; vf 1. ]; [ vi 2; vf 2. ] ] in
  let b = cube_of "B" [ ("x", Domain.Int) ] [ [ vi 2; vf 5. ]; [ vi 3; vf 9. ] ] in
  let out =
    Cube.merge_join
      (fun x y -> Ops.Binop.eval_value Ops.Binop.Add x y)
      (Cube.schema a) a b
  in
  Alcotest.(check int) "one" 1 (Cube.cardinality out);
  Alcotest.check value "2+5" (vf 7.) (Option.get (Cube.find out (key [ vi 2 ])))

let test_cube_merge_join_operand_order () =
  (* merge_join iterates the smaller side but must keep argument order. *)
  let a = cube_of "A" [ ("x", Domain.Int) ] [ [ vi 1; vf 10. ] ] in
  let b =
    cube_of "B" [ ("x", Domain.Int) ]
      [ [ vi 1; vf 4. ]; [ vi 2; vf 5. ]; [ vi 3; vf 6. ] ]
  in
  let sub = Cube.merge_join (Ops.Binop.eval_value Ops.Binop.Sub) (Cube.schema a) in
  Alcotest.check value "10-4" (vf 6.) (Option.get (Cube.find (sub a b) (key [ vi 1 ])));
  Alcotest.check value "4-10" (vf (-6.)) (Option.get (Cube.find (sub b a) (key [ vi 1 ])))

let test_cube_diff_data () =
  let a = cube_of "A" [ ("x", Domain.Int) ] [ [ vi 1; vf 1. ]; [ vi 2; vf 2. ] ] in
  let b = cube_of "A" [ ("x", Domain.Int) ] [ [ vi 1; vf 1. ]; [ vi 2; vf 3. ] ] in
  Alcotest.(check int) "one diff" 1 (List.length (Cube.diff_data a b));
  Alcotest.(check bool) "not equal" false (Cube.equal_data a b);
  Alcotest.(check bool) "tolerant" true (Cube.equal_data ~eps:2. a b)

let test_cube_of_rows_validates () =
  let schema = Schema.make ~name:"C" ~dims:[ ("x", Domain.Int) ] () in
  Alcotest.check_raises "bad arity"
    (Invalid_argument "Cube.of_rows: row of width 3 for schema C(x: int): float")
    (fun () -> ignore (Cube.of_rows schema [ [ vi 1; vi 2; vf 3. ] ]))

(* --- series --- *)

let test_series_sorted_and_contiguous () =
  let c =
    cube_of "S"
      [ ("q", Domain.Period (Some Calendar.Quarter)) ]
      [ [ vq 2020 3; vf 3. ]; [ vq 2020 1; vf 1. ]; [ vq 2020 2; vf 2. ] ]
  in
  let s = Series.of_cube c in
  Alcotest.(check bool) "sorted" true
    (Series.values s = [| 1.; 2.; 3. |]);
  Alcotest.(check bool) "contiguous" true (Series.is_contiguous s);
  let gap =
    cube_of "S"
      [ ("q", Domain.Period (Some Calendar.Quarter)) ]
      [ [ vq 2020 1; vf 1. ]; [ vq 2020 4; vf 4. ] ]
  in
  Alcotest.(check bool) "gap detected" false
    (Series.is_contiguous (Series.of_cube gap))

let test_series_roundtrip_preserves_date_dims () =
  let c =
    cube_of "S" [ ("d", Domain.Date) ]
      [ [ vd 2020 1 1; vf 1. ]; [ vd 2020 1 2; vf 2. ] ]
  in
  let back = Series.to_cube (Series.of_cube c) in
  Alcotest.check cube_eq "dates preserved" c back

(* --- registry --- *)

let test_registry_kinds_and_copy () =
  let reg = overview_registry () in
  Alcotest.(check (list string)) "elementary" [ "PDR"; "RGDPPC" ]
    (Registry.elementary_names reg);
  let copy = Registry.copy reg in
  Cube.set (Registry.find_exn copy "PDR") (key [ vd 1999 1 1; vs "x" ]) (vf 1.);
  Alcotest.(check bool) "deep copy" false
    (Cube.cardinality (Registry.find_exn reg "PDR")
    = Cube.cardinality (Registry.find_exn copy "PDR"))

(* --- csv --- *)

let test_csv_roundtrip () =
  let c =
    cube_of "C"
      [ ("q", Domain.Period (Some Calendar.Quarter)); ("r", Domain.String) ]
      [
        [ vq 2020 1; vs "with,comma"; vf 1.5 ];
        [ vq 2020 2; vs "with \"quote\""; vf 2.5 ];
        [ vq 2020 3; vs "plain"; vf (-3.) ];
      ]
  in
  let text = Csv.cube_to_string c in
  match Csv.cube_of_string (Cube.schema c) text with
  | Ok back -> Alcotest.check cube_eq "roundtrip" c back
  | Error msg -> Alcotest.fail msg

let test_csv_rejects_bad_header () =
  let schema = Schema.make ~name:"C" ~dims:[ ("x", Domain.Int) ] () in
  match Csv.cube_of_string schema "wrong,header\n1,2\n" with
  | Error msg ->
      Alcotest.(check bool) "mentions header" true
        (Astring_contains.contains msg "header")
  | Ok _ -> Alcotest.fail "expected header error"

let test_csv_parse_quoted_newline () =
  let rows = Csv.parse_rows "a,\"b\nc\",d\n" in
  Alcotest.(check int) "one row" 1 (List.length rows);
  Alcotest.(check (list string)) "cells" [ "a"; "b\nc"; "d" ] (List.hd rows)

let prop_csv_roundtrip =
  QCheck.Test.make ~count:100 ~name:"csv roundtrip on random cubes"
    QCheck.(list (pair (int_range 0 30) (int_range (-1000) 1000)))
    (fun rows ->
      let schema = Schema.make ~name:"T" ~dims:[ ("x", Domain.Int) ] () in
      let c = Cube.create schema in
      List.iter
        (fun (x, v) -> Cube.set c (key [ vi x ]) (vf (float_of_int v /. 8.)))
        rows;
      match Csv.cube_of_string schema (Csv.cube_to_string c) with
      | Ok back -> Cube.equal_data c back
      | Error _ -> false)

(* --- SDMX export (dissemination) --- *)

let test_sdmx_time_periods () =
  let check expected p = Alcotest.(check string) expected expected (Sdmx.time_period p) in
  check "2020" (Calendar.Period.year 2020);
  check "2020-S2" (Calendar.Period.semester 2020 2);
  check "2020-Q3" (Calendar.Period.quarter 2020 3);
  check "2020-07" (Calendar.Period.month 2020 7);
  check "2021-W01" (Calendar.Period.week 2021 1);
  check "2020-02-29" (Calendar.Period.day (Calendar.Date.make ~year:2020 ~month:2 ~day:29))

let test_sdmx_dsd () =
  let schema =
    Schema.make ~name:"GDP"
      ~dims:[ ("q", Domain.Period (Some Calendar.Quarter)); ("r", Domain.String) ]
      ()
  in
  let xml = Sdmx.dsd_of_schema schema in
  List.iter
    (fun fragment ->
      Alcotest.(check bool) fragment true (Astring_contains.contains xml fragment))
    [
      "<structure:DataStructure id=\"DSD_GDP\"";
      "<structure:Dimension id=\"R\" position=\"1\"";
      "<structure:TimeDimension id=\"Q\" position=\"2\"/>";
      "<structure:PrimaryMeasure id=\"VALUE\"";
    ]

let test_sdmx_generic_data () =
  let cube =
    cube_of "GDP"
      [ ("q", Domain.Period (Some Calendar.Quarter)); ("r", Domain.String) ]
      [
        [ vq 2020 1; vs "north"; vf 10. ];
        [ vq 2020 2; vs "north"; vf 11. ];
        [ vq 2020 1; vs "south"; vf 20. ];
      ]
  in
  let xml = Sdmx.generic_data_of_cube cube in
  (* two series (north, south), observations keyed by SDMX periods *)
  let count needle =
    let rec loop i acc =
      if i + String.length needle > String.length xml then acc
      else if String.sub xml i (String.length needle) = needle then
        loop (i + 1) (acc + 1)
      else loop (i + 1) acc
    in
    loop 0 0
  in
  Alcotest.(check int) "two series" 2 (count "<generic:Series>");
  Alcotest.(check int) "three obs" 3 (count "<generic:Obs>");
  Alcotest.(check bool) "period format" true
    (Astring_contains.contains xml "value=\"2020-Q1\"");
  Alcotest.(check bool) "series key" true
    (Astring_contains.contains xml "<generic:Value id=\"R\" value=\"north\"/>")

let test_sdmx_escaping () =
  let cube =
    cube_of "X" [ ("r", Domain.String) ] [ [ vs "a<b&\"c\""; vf 1. ] ]
  in
  let xml = Sdmx.generic_data_of_cube cube in
  Alcotest.(check bool) "escaped" true
    (Astring_contains.contains xml "a&lt;b&amp;&quot;c&quot;")

let test_sdmx_dataflows () =
  let reg = overview_registry () in
  let xml = Sdmx.dataflow_of_registry reg in
  Alcotest.(check bool) "pdr dataflow" true
    (Astring_contains.contains xml
       "<structure:Dataflow id=\"PDR\" agencyID=\"EXLENGINE\" class=\"elementary\"")

(* --- persistence --- *)

let test_store_roundtrip () =
  let reg = overview_registry () in
  (* include a derived cube so kinds round-trip too *)
  let out = check_ok (Exl.Interp.run (load_overview ()) reg) in
  let dir = Filename.temp_file "exl_store" "" in
  Sys.remove dir;
  (match Store.save ~dir out with
  | Ok () -> ()
  | Error msg -> Alcotest.fail msg);
  match Store.load ~dir with
  | Error msg -> Alcotest.fail msg
  | Ok loaded ->
      Alcotest.(check bool) "registries equal" true
        (Registry.equal_data ~eps:1e-6 out loaded);
      Alcotest.(check (option string)) "kind preserved" (Some "elementary")
        (Option.map Registry.kind_to_string (Registry.kind_of loaded "PDR"));
      Alcotest.(check (option string)) "derived preserved" (Some "derived")
        (Option.map Registry.kind_to_string (Registry.kind_of loaded "GDP"))

let test_manifest_parse_errors () =
  (match Store.registry_schemas_of_manifest "bad line" with
  | Error msg -> Alcotest.(check bool) "malformed" true
      (Astring_contains.contains msg "malformed")
  | Ok _ -> Alcotest.fail "expected error");
  match Store.registry_schemas_of_manifest "X|elementary|d:frobnicate|value:float\n" with
  | Error msg ->
      Alcotest.(check bool) "unknown domain" true
        (Astring_contains.contains msg "unknown domain")
  | Ok _ -> Alcotest.fail "expected error"

let suite =
  [
    ("date: rata die roundtrip", `Quick, test_date_rata_die_roundtrip);
    ("date: known epoch", `Quick, test_date_known_epoch);
    ("date: day of week", `Quick, test_date_day_of_week);
    ("date: leap years", `Quick, test_date_leap_years);
    ("date: add days", `Quick, test_date_add_days);
    ("date: string roundtrip", `Quick, test_date_string_roundtrip);
    ("period: of_date", `Quick, test_period_of_date);
    ("period: shift across years", `Quick, test_period_shift_across_years);
    ("period: start/end dates", `Quick, test_period_start_end);
    ("period: iso weeks", `Quick, test_period_iso_weeks);
    ("period: string roundtrip", `Quick, test_period_string_roundtrip);
    ("period: convert frequency", `Quick, test_period_convert);
    ("period: range", `Quick, test_period_range);
    QCheck_alcotest.to_alcotest prop_period_shift_inverse;
    QCheck_alcotest.to_alcotest prop_date_rata_die_bijective;
    QCheck_alcotest.to_alcotest prop_period_of_date_contains;
    ("value: numeric cross-type", `Quick, test_value_numeric_cross_type);
    ("value: of_string_guess", `Quick, test_value_guess);
    ("value: nan becomes null", `Quick, test_value_nan_becomes_null);
    ("domain: membership", `Quick, test_domain_membership);
    ("domain: union", `Quick, test_domain_union);
    ("tuple: ordering and projection", `Quick, test_tuple_ordering);
    QCheck_alcotest.to_alcotest prop_tuple_hash_consistent;
    ("cube: functionality", `Quick, test_cube_functionality);
    ("cube: null measures dropped", `Quick, test_cube_null_measure_dropped);
    ("cube: merge join intersection", `Quick, test_cube_merge_join_intersection);
    ("cube: merge join operand order", `Quick, test_cube_merge_join_operand_order);
    ("cube: diff data", `Quick, test_cube_diff_data);
    ("cube: of_rows validates", `Quick, test_cube_of_rows_validates);
    ("series: sorted and contiguous", `Quick, test_series_sorted_and_contiguous);
    ("series: date dims preserved", `Quick, test_series_roundtrip_preserves_date_dims);
    ("registry: kinds and deep copy", `Quick, test_registry_kinds_and_copy);
    ("csv: roundtrip with quoting", `Quick, test_csv_roundtrip);
    ("csv: rejects bad header", `Quick, test_csv_rejects_bad_header);
    ("csv: quoted newline", `Quick, test_csv_parse_quoted_newline);
    QCheck_alcotest.to_alcotest prop_csv_roundtrip;
    ("sdmx: time periods", `Quick, test_sdmx_time_periods);
    ("sdmx: dsd", `Quick, test_sdmx_dsd);
    ("sdmx: generic data", `Quick, test_sdmx_generic_data);
    ("sdmx: escaping", `Quick, test_sdmx_escaping);
    ("sdmx: dataflows", `Quick, test_sdmx_dataflows);
    ("store: roundtrip", `Quick, test_store_roundtrip);
    ("store: manifest errors", `Quick, test_manifest_parse_errors);
  ]
