let () =
  Alcotest.run "exlengine"
    [
      ("matrix", Test_matrix.suite);
      ("stats", Test_stats.suite);
      ("ops", Test_ops.suite);
      ("exl", Test_exl.suite);
      ("mappings", Test_mappings.suite);
      ("filter", Test_filter.suite);
      ("outer", Test_outer.suite);
      ("exchange", Test_exchange.suite);
      ("delta", Test_delta.suite);
      ("relational", Test_relational.suite);
      ("vector", Test_vector.suite);
      ("etl", Test_etl.suite);
      ("engine", Test_engine.suite);
      ("core", Test_core.suite);
      ("edges", Test_edges.suite);
    ]
