(* Vector (R/Matlab) target: frame engine, script generation and
   printing, end-to-end equivalence. *)
open Matrix
open Helpers
module M = Mappings

let frame_of_cols cols = Vector.Frame.create cols

(* --- frame engine --- *)

let test_merge_basic () =
  let a =
    frame_of_cols
      [ ("q", [| vi 1; vi 2 |]); ("value", [| vf 10.; vf 20. |]) ]
  in
  let b =
    frame_of_cols
      [ ("q", [| vi 2; vi 3 |]); ("value", [| vf 5.; vf 7. |]) ]
  in
  let m = Vector.Frame_ops.merge ~by:[ "q" ] a b in
  Alcotest.(check int) "one match" 1 (Vector.Frame.length m);
  Alcotest.(check (list string)) "suffixed columns"
    [ "q"; "value_x"; "value_y" ]
    (Vector.Frame.columns m);
  Alcotest.check value "left measure" (vf 20.) (Vector.Frame.column m "value_x").(0)

let test_merge_null_keys_never_match () =
  let a = frame_of_cols [ ("q", [| Value.Null |]); ("v", [| vf 1. |]) ] in
  let b = frame_of_cols [ ("q", [| Value.Null |]); ("w", [| vf 2. |]) ] in
  let m = Vector.Frame_ops.merge ~by:[ "q" ] a b in
  Alcotest.(check int) "no rows" 0 (Vector.Frame.length m)

let test_eval_col_arithmetic () =
  let f =
    frame_of_cols [ ("p", [| vf 3.; vf 0. |]); ("g", [| vf 4.; vf 5. |]) ]
  in
  let out =
    Vector.Frame_ops.eval_col f
      (Vector.Frame_ops.Bin (Ops.Binop.Div, Vector.Frame_ops.Col "g", Vector.Frame_ops.Col "p"))
  in
  Alcotest.check value "4/3" (vf (4. /. 3.)) out.(0);
  Alcotest.check value "div by zero is null" Value.Null out.(1)

let test_group_aggregate () =
  let f =
    frame_of_cols
      [
        ("r", [| vs "a"; vs "a"; vs "b" |]);
        ("value", [| vf 1.; vf 3.; vf 10. |]);
      ]
  in
  let out =
    Vector.Frame_ops.group_aggregate
      ~by:[ ("r", Vector.Frame_ops.Col "r") ]
      ~aggr:Stats.Aggregate.Avg
      ~measure:(Vector.Frame_ops.Col "value") f
  in
  Alcotest.(check int) "two groups" 2 (Vector.Frame.length out);
  let cube =
    Vector.Frame.to_cube
      (Schema.make ~name:"X" ~dims:[ ("r", Domain.String) ] ())
      out
  in
  Alcotest.check value "avg a" (vf 2.) (Option.get (Cube.find cube (key [ vs "a" ])))

let test_frame_cube_roundtrip () =
  let reg = overview_registry () in
  let pdr = Registry.find_exn reg "PDR" in
  let frame = Vector.Frame.of_cube pdr in
  let back = Vector.Frame.to_cube (Cube.schema pdr) frame in
  Alcotest.check cube_eq "roundtrip" pdr back

(* --- script generation and printing --- *)

let overview_mapping () =
  (check_ok (M.Generate.of_source Helpers.overview_program)).M.Generate.mapping

let test_r_script_fragments () =
  let checked = load_overview () in
  let r = check_ok (Vector.Vector_target.r_script_of_program checked) in
  List.iter
    (fun fragment ->
      Alcotest.(check bool) ("contains " ^ fragment) true
        (Astring_contains.contains r fragment))
    [
      "merge(RGDPPC, PQR, by=c(\"q\", \"r\"))";
      "t_RGDP$c_value <- t_RGDP[\"value_x\"] * t_RGDP[\"value_y\"]";
      "stl(GDP, \"periodic\")";
      "$time.series[ , \"trend\"]";
      "aggregate(";
    ]

let test_matlab_script_fragments () =
  let checked = load_overview () in
  let m = check_ok (Vector.Vector_target.matlab_script_of_program checked) in
  List.iter
    (fun fragment ->
      Alcotest.(check bool) ("contains " ^ fragment) true
        (Astring_contains.contains m fragment))
    [ "join(RGDPPC, [1 2], PQR, [1 2])"; ".*"; "isolateTrend(GDP)" ]

let test_script_gen_rejects_fused () =
  let fused = M.Fuse.mapping (overview_mapping ()) in
  match Vector.Script_gen.script_of_mapping fused with
  | Error msg ->
      Alcotest.(check bool) "mentions atoms" true
        (Astring_contains.contains msg "two atoms")
  | Ok _ -> Alcotest.fail "expected rejection of >2-atom tgds"

(* --- end-to-end --- *)

let overview_names = [ "PQR"; "RGDP"; "GDP"; "GDPT"; "PCHNG" ]

let test_vector_target_overview () =
  let reg = overview_registry () in
  let checked = load_overview () in
  let reference = check_ok (Exl.Interp.run checked reg) in
  let via_vector = check_ok (Vector.Vector_target.run_program checked reg) in
  List.iter
    (fun name ->
      Alcotest.check cube_eq ("cube " ^ name)
        (Registry.find_exn reference name)
        (Registry.find_exn via_vector name))
    overview_names

let prop_vector_matches_interp =
  QCheck.Test.make ~count:40
    ~name:"vector target == interpreter on random programs" Gen.arb_seed
    (fun seed ->
      let src, reg = Gen.program_of_seed seed in
      let checked = Exl.Program.load_exn src in
      let reference = check_ok (Exl.Interp.run checked reg) in
      match Vector.Vector_target.run_program checked reg with
      | Error e ->
          QCheck.Test.fail_reportf "vector: %s\n%s" (Exl.Errors.to_string e) src
      | Ok via_vector ->
          List.for_all
            (fun name ->
              match Registry.find via_vector name with
              | Some got ->
                  Cube.equal_data ~eps:1e-7 (Registry.find_exn reference name) got
                  || QCheck.Test.fail_reportf "cube %s differs on\n%s" name src
              | None -> QCheck.Test.fail_reportf "missing %s on\n%s" name src)
            (Registry.names reference))

let suite =
  [
    ("frame: merge", `Quick, test_merge_basic);
    ("frame: null keys never match", `Quick, test_merge_null_keys_never_match);
    ("frame: column arithmetic", `Quick, test_eval_col_arithmetic);
    ("frame: group aggregate", `Quick, test_group_aggregate);
    ("frame: cube roundtrip", `Quick, test_frame_cube_roundtrip);
    ("print: R fragments", `Quick, test_r_script_fragments);
    ("print: Matlab fragments", `Quick, test_matlab_script_fragments);
    ("gen: rejects fused tgds", `Quick, test_script_gen_rejects_fused);
    ("end-to-end: overview", `Quick, test_vector_target_overview);
    QCheck_alcotest.to_alcotest prop_vector_matches_interp;
  ]
