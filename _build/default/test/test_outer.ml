(* The default-value variant of vectorial operators (paper, Section 3:
   "there are others assuming a default value for the missing tuples
   (example, in the sum operator, we could have zero as the default
   value)"): vadd/vsub/vmul/vdiv across every layer. *)
open Matrix
open Helpers

let core_ok = function
  | Ok v -> v
  | Error msg -> Alcotest.failf "unexpected error: %s" msg

let dims = [ ("q", Domain.Period (Some Calendar.Quarter)) ]

let data () =
  let reg = Registry.create () in
  Registry.add reg Registry.Elementary
    (cube_of "A" dims [ [ vq 2024 1; vf 10. ]; [ vq 2024 2; vf 20. ] ]);
  Registry.add reg Registry.Elementary
    (cube_of "B" dims [ [ vq 2024 2; vf 5. ]; [ vq 2024 3; vf 7. ] ]);
  reg

let run_src src =
  core_ok (Core.run (Core.compile_exn src) (data ()))

let test_vadd_union_semantics () =
  let out = run_src "cube A(q: quarter);\ncube B(q: quarter);\nC := vadd(A, B);\n" in
  let c = Registry.find_exn out "C" in
  Alcotest.(check int) "union of keys" 3 (Cube.cardinality c);
  Alcotest.check value "left only" (vf 10.) (Option.get (Cube.find c (key [ vq 2024 1 ])));
  Alcotest.check value "both" (vf 25.) (Option.get (Cube.find c (key [ vq 2024 2 ])));
  Alcotest.check value "right only" (vf 7.) (Option.get (Cube.find c (key [ vq 2024 3 ])))

let test_vadd_vs_plus () =
  (* plain + is intersection semantics: only 2024Q2 survives *)
  let out =
    run_src
      "cube A(q: quarter);\ncube B(q: quarter);\nINNER := A + B;\nOUTER := vadd(A, B);\n"
  in
  Alcotest.(check int) "inner" 1 (Cube.cardinality (Registry.find_exn out "INNER"));
  Alcotest.(check int) "outer" 3 (Cube.cardinality (Registry.find_exn out "OUTER"))

let test_vmul_default_is_one () =
  let out = run_src "cube A(q: quarter);\ncube B(q: quarter);\nC := vmul(A, B);\n" in
  let c = Registry.find_exn out "C" in
  Alcotest.check value "left only x1" (vf 10.)
    (Option.get (Cube.find c (key [ vq 2024 1 ])))

let test_explicit_default () =
  let out =
    run_src "cube A(q: quarter);\ncube B(q: quarter);\nC := vadd(A, B, 100);\n"
  in
  let c = Registry.find_exn out "C" in
  Alcotest.check value "left only + 100" (vf 110.)
    (Option.get (Cube.find c (key [ vq 2024 1 ])))

let test_vsub_direction () =
  let out = run_src "cube A(q: quarter);\ncube B(q: quarter);\nC := vsub(A, B);\n" in
  let c = Registry.find_exn out "C" in
  Alcotest.check value "both sides" (vf 15.)
    (Option.get (Cube.find c (key [ vq 2024 2 ])));
  Alcotest.check value "right only: 0 - 7" (vf (-7.))
    (Option.get (Cube.find c (key [ vq 2024 3 ])))

let test_check_rejects_scalar_operand () =
  ignore
    (check_err "scalar operand"
       (Exl.Program.load "cube A(q: quarter);\nC := vadd(A, 3);\n"))

let test_check_rejects_dim_mismatch () =
  ignore
    (check_err "dim mismatch"
       (Exl.Program.load
          "cube A(q: quarter);\ncube B(r: string);\nC := vadd(A, B);\n"))

let test_tgd_shape_and_printing () =
  let g =
    check_ok
      (Mappings.Generate.of_source
         "cube A(q: quarter);\ncube B(q: quarter);\nC := vadd(A, B);\n")
  in
  match Mappings.Mapping.tgd_for g.Mappings.Generate.mapping "C" with
  | Some (Mappings.Tgd.Outer_combine { op; default; _ } as tgd) ->
      Alcotest.(check string) "op" "+" (Ops.Binop.to_string op);
      Alcotest.(check Helpers.floats) "default" 0. default;
      Alcotest.(check bool) "safe" true (Mappings.Tgd.is_safe tgd);
      Alcotest.(check bool) "prints coalesce" true
        (Astring_contains.contains (Mappings.Tgd.to_string tgd) "coalesce")
  | _ -> Alcotest.fail "expected Outer_combine"

let test_sql_full_outer_join () =
  let checked =
    Core.compile_exn "cube A(q: quarter);\ncube B(q: quarter);\nC := vadd(A, B);\n"
  in
  let sql = core_ok (Core.sql_of checked) in
  Alcotest.(check bool) "full outer join" true
    (Astring_contains.contains sql "FULL OUTER JOIN");
  Alcotest.(check bool) "coalesce" true
    (Astring_contains.contains sql "COALESCE(C1.VALUE, 0)")

let test_r_outer_merge () =
  let checked =
    Core.compile_exn "cube A(q: quarter);\ncube B(q: quarter);\nC := vadd(A, B);\n"
  in
  let r = core_ok (Core.r_of checked) in
  Alcotest.(check bool) "all=TRUE" true
    (Astring_contains.contains r "merge(A, B, by=c(\"q\"), all=TRUE)")

let test_kettle_full_outer () =
  let checked =
    Core.compile_exn "cube A(q: quarter);\ncube B(q: quarter);\nC := vadd(A, B);\n"
  in
  let xml = core_ok (Core.kettle_of checked) in
  Alcotest.(check bool) "join type" true
    (Astring_contains.contains xml "<join_type>FULL OUTER</join_type>")

let test_all_backends_agree () =
  let checked =
    Core.compile_exn
      "cube A(q: quarter);\ncube B(q: quarter);\nC := vadd(A, B);\nD := vmul(A, B);\nE := vdiv(A, B, 2);\n"
  in
  match Core.verify_all_backends checked (data ()) with
  | Ok () -> ()
  | Error msg -> Alcotest.fail msg

let test_outer_multi_dim_all_backends () =
  let reg = Registry.create () in
  let dims2 =
    [ ("q", Domain.Period (Some Calendar.Quarter)); ("r", Domain.String) ]
  in
  Registry.add reg Registry.Elementary
    (cube_of "A" dims2
       [ [ vq 2024 1; vs "x"; vf 1. ]; [ vq 2024 1; vs "y"; vf 2. ] ]);
  Registry.add reg Registry.Elementary
    (cube_of "B" dims2
       [ [ vq 2024 1; vs "y"; vf 10. ]; [ vq 2024 2; vs "z"; vf 20. ] ]);
  let checked =
    Core.compile_exn
      "cube A(q: quarter, r: string);\ncube B(q: quarter, r: string);\nC := vadd(A, B);\n"
  in
  (match Core.verify_all_backends checked reg with
  | Ok () -> ()
  | Error msg -> Alcotest.fail msg);
  let out = core_ok (Core.run checked reg) in
  Alcotest.(check int) "three keys" 3
    (Cube.cardinality (Registry.find_exn out "C"))

let test_outer_composes_downstream () =
  let checked =
    Core.compile_exn
      "cube A(q: quarter);\ncube B(q: quarter);\nC := vadd(A, B);\nTOTAL := sum(C, group by q);\nSCALED := 2 * C;\n"
  in
  match Core.verify_all_backends checked (data ()) with
  | Ok () -> ()
  | Error msg -> Alcotest.fail msg

let suite =
  [
    ("interp: union semantics", `Quick, test_vadd_union_semantics);
    ("interp: vadd vs plain +", `Quick, test_vadd_vs_plus);
    ("interp: vmul default 1", `Quick, test_vmul_default_is_one);
    ("interp: explicit default", `Quick, test_explicit_default);
    ("interp: vsub direction", `Quick, test_vsub_direction);
    ("check: rejects scalar operand", `Quick, test_check_rejects_scalar_operand);
    ("check: rejects dim mismatch", `Quick, test_check_rejects_dim_mismatch);
    ("mapping: outer tgd shape", `Quick, test_tgd_shape_and_printing);
    ("sql: full outer join + coalesce", `Quick, test_sql_full_outer_join);
    ("vector: R outer merge", `Quick, test_r_outer_merge);
    ("etl: kettle full outer", `Quick, test_kettle_full_outer);
    ("all backends agree", `Quick, test_all_backends_agree);
    ("multi-dim outer on all backends", `Quick, test_outer_multi_dim_all_backends);
    ("outer composes downstream", `Quick, test_outer_composes_downstream);
  ]
