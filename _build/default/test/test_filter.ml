(* The selection operator: filter(C, dim = literal, ...) — an EXL
   extension (slice/dice) that exercises constants in tgd atoms across
   every layer of the pipeline. Also covers the normalizer's CSE pass. *)
open Matrix
open Helpers

let core_ok = function
  | Ok v -> v
  | Error msg -> Alcotest.failf "unexpected error: %s" msg

let program_source =
  {|
cube DEP(m: month, instrument: string);
OVERNIGHT := filter(DEP, instrument = "overnight");
ON_TOTAL := sum(OVERNIGHT, group by m);
|}

let data () =
  let reg = Registry.create () in
  Registry.add reg Registry.Elementary
    (cube_of "DEP"
       [ ("m", Domain.Period (Some Calendar.Month)); ("instrument", Domain.String) ]
       [
         [ vm 2024 1; vs "overnight"; vf 10. ];
         [ vm 2024 1; vs "savings"; vf 99. ];
         [ vm 2024 2; vs "overnight"; vf 12. ];
         [ vm 2024 2; vs "savings"; vf 88. ];
       ]);
  reg

let test_parse_filter () =
  let e = check_ok (Exl.Parser.parse_expr "filter(DEP, instrument = \"overnight\")") in
  match e with
  | Exl.Ast.Call { fn = "filter"; args = [ Cube_ref "DEP" ]; conditions; _ } ->
      Alcotest.(check int) "one condition" 1 (List.length conditions);
      let dim, v = List.hd conditions in
      Alcotest.(check string) "dim" "instrument" dim;
      Alcotest.check value "literal" (vs "overnight") v
  | _ -> Alcotest.fail "filter parse"

let test_parse_numeric_condition () =
  let e = check_ok (Exl.Parser.parse_expr "filter(C, k = -2)") in
  match e with
  | Exl.Ast.Call { conditions = [ ("k", v) ]; _ } ->
      Alcotest.check value "negative literal" (vf (-2.)) v
  | _ -> Alcotest.fail "numeric condition parse"

let test_pretty_roundtrip () =
  let p = check_ok (Exl.Parser.parse program_source) in
  let p2 = check_ok (Exl.Parser.parse (Exl.Pretty.program_to_string p)) in
  Alcotest.(check bool) "roundtrip" true (Exl.Ast.equal_program p p2)

let test_check_filter () =
  let checked = Exl.Program.load_exn program_source in
  let schema = Exl.Typecheck.Env.schema_exn checked.Exl.Typecheck.env "OVERNIGHT" in
  Alcotest.(check (list string)) "same dims" [ "m"; "instrument" ]
    (Schema.dim_names schema)

let test_check_rejects_bad_dim () =
  ignore
    (check_err "bad dim"
       (Exl.Program.load "cube A(x: int);\nB := filter(A, z = 1);\n"))

let test_check_rejects_bad_literal () =
  ignore
    (check_err "bad literal"
       (Exl.Program.load "cube A(x: int);\nB := filter(A, x = \"oops\");\n"))

let test_check_rejects_conditions_elsewhere () =
  ignore
    (check_err "conditions on sum"
       (Exl.Program.load "cube A(x: int);\nB := sum(A, x = 1);\n"))

let test_check_temporal_literal_coercion () =
  let checked =
    Exl.Program.load_exn "cube A(q: quarter);\nB := filter(A, q = \"2024Q1\");\n"
  in
  Alcotest.(check int) "well-typed" 1
    (List.length checked.Exl.Typecheck.statements)

let test_interp_filter () =
  let out = check_ok (Exl.Program.run_source program_source (data ())) in
  let overnight = Registry.find_exn out "OVERNIGHT" in
  Alcotest.(check int) "two rows kept" 2 (Cube.cardinality overnight);
  let total = Registry.find_exn out "ON_TOTAL" in
  Alcotest.check value "jan" (vf 10.) (Option.get (Cube.find total (key [ vm 2024 1 ])));
  Alcotest.check value "feb" (vf 12.) (Option.get (Cube.find total (key [ vm 2024 2 ])))

let test_tgd_has_constant () =
  let g = check_ok (Mappings.Generate.of_source program_source) in
  match Mappings.Mapping.tgd_for g.Mappings.Generate.mapping "OVERNIGHT" with
  | Some tgd ->
      Alcotest.(check string) "constant in atom"
        "DEP(m, \"overnight\", m1) → OVERNIGHT(m, \"overnight\", m1)"
        (Mappings.Tgd.to_string tgd)
  | None -> Alcotest.fail "no tgd"

let test_sql_where_literal () =
  let checked = Exl.Program.load_exn program_source in
  let sql = check_ok (Relational.Sql_target.script_of_program checked) in
  Alcotest.(check bool) "where clause" true
    (Astring_contains.contains sql "C1.INSTRUMENT = 'overnight'")

let test_r_filter_line () =
  let checked = Exl.Program.load_exn program_source in
  let r = check_ok (Vector.Vector_target.r_script_of_program checked) in
  Alcotest.(check bool) "R selection" true
    (Astring_contains.contains r "DEP$instrument == \"overnight\"")

let test_kettle_filter_step () =
  let checked = Exl.Program.load_exn program_source in
  let xml = check_ok (Etl.Etl_target.kettle_catalog_of_program checked) in
  Alcotest.(check bool) "FilterRows step" true
    (Astring_contains.contains xml "<type>FilterRows</type>")

let test_all_backends_agree () =
  let checked = Exl.Program.load_exn program_source in
  match Core.verify_all_backends checked (data ()) with
  | Ok () -> ()
  | Error msg -> Alcotest.fail msg

let test_filter_on_temporal_dim_all_backends () =
  let source =
    "cube A(q: quarter, r: string);\nQ1 := filter(A, q = \"2024Q1\");\nB := 2 * Q1;\n"
  in
  let reg = Registry.create () in
  Registry.add reg Registry.Elementary
    (cube_of "A"
       [ ("q", Domain.Period (Some Calendar.Quarter)); ("r", Domain.String) ]
       [
         [ vq 2024 1; vs "a"; vf 1. ];
         [ vq 2024 2; vs "a"; vf 2. ];
         [ vq 2024 1; vs "b"; vf 3. ];
       ]);
  let checked = Exl.Program.load_exn source in
  (match Core.verify_all_backends checked reg with
  | Ok () -> ()
  | Error msg -> Alcotest.fail msg);
  let out = core_ok (Core.run checked reg) in
  Alcotest.(check int) "two kept" 2
    (Cube.cardinality (Registry.find_exn out "B"))

let test_filter_composes_with_join () =
  (* filtered cube used inside a vectorial op: the filter tgd stays its
     own tuple-level tgd with constants, then joins downstream *)
  let source =
    {|
cube A(m: month, instrument: string);
cube W(m: month, instrument: string);
AO := filter(A, instrument = "overnight");
WO := filter(W, instrument = "overnight");
RATIO := AO / WO;
|}
  in
  let reg = Registry.create () in
  let mk name v =
    cube_of name
      [ ("m", Domain.Period (Some Calendar.Month)); ("instrument", Domain.String) ]
      [
        [ vm 2024 1; vs "overnight"; vf v ];
        [ vm 2024 1; vs "savings"; vf 100. ];
      ]
  in
  Registry.add reg Registry.Elementary (mk "A" 10.);
  Registry.add reg Registry.Elementary (mk "W" 4.);
  let checked = Exl.Program.load_exn source in
  (match Core.verify_all_backends checked reg with
  | Ok () -> ()
  | Error msg -> Alcotest.fail msg);
  let out = core_ok (Core.run checked reg) in
  Alcotest.check value "ratio" (vf 2.5)
    (Option.get
       (Cube.find (Registry.find_exn out "RATIO")
          (key [ vm 2024 1; vs "overnight" ])))

(* --- CSE --- *)

let test_cse_dedupes_shift_temps () =
  let source =
    "cube T(m: month);\nG := 100 * (T - shift(T, 1)) / shift(T, 1);\n"
  in
  let checked = Exl.Program.load_exn source in
  let normalized = check_ok (Exl.Normalize.checked checked) in
  let temps =
    List.filter
      (fun (s : Exl.Ast.stmt) -> Exl.Normalize.is_temp s.Exl.Ast.lhs)
      normalized.Exl.Typecheck.statements
  in
  (* shift appears twice in the source but only one temp remains *)
  let shift_temps =
    List.filter
      (fun (s : Exl.Ast.stmt) ->
        match s.Exl.Ast.rhs with
        | Exl.Ast.Call { fn = "shift"; _ } -> true
        | _ -> false)
      temps
  in
  Alcotest.(check int) "one shift temp" 1 (List.length shift_temps)

let test_cse_preserves_semantics () =
  let source =
    "cube T(m: month);\nG := 100 * (T - shift(T, 1)) / shift(T, 1);\n"
  in
  let reg = Registry.create () in
  Registry.add reg Registry.Elementary
    (cube_of "T"
       [ ("m", Domain.Period (Some Calendar.Month)) ]
       (List.init 6 (fun i -> [ vm 2024 (i + 1); vf (float_of_int (10 + i)) ])));
  let checked = Exl.Program.load_exn source in
  match Core.verify_all_backends checked reg with
  | Ok () -> ()
  | Error msg -> Alcotest.fail msg

let suite =
  [
    ("parse: filter conditions", `Quick, test_parse_filter);
    ("parse: numeric condition", `Quick, test_parse_numeric_condition);
    ("pretty: roundtrip", `Quick, test_pretty_roundtrip);
    ("check: filter type", `Quick, test_check_filter);
    ("check: rejects bad dim", `Quick, test_check_rejects_bad_dim);
    ("check: rejects bad literal", `Quick, test_check_rejects_bad_literal);
    ("check: conditions only on filter", `Quick, test_check_rejects_conditions_elsewhere);
    ("check: temporal literal coercion", `Quick, test_check_temporal_literal_coercion);
    ("interp: filter", `Quick, test_interp_filter);
    ("mapping: tgd with constant", `Quick, test_tgd_has_constant);
    ("sql: where literal", `Quick, test_sql_where_literal);
    ("vector: R selection", `Quick, test_r_filter_line);
    ("etl: kettle FilterRows", `Quick, test_kettle_filter_step);
    ("all backends agree", `Quick, test_all_backends_agree);
    ("temporal filter on all backends", `Quick, test_filter_on_temporal_dim_all_backends);
    ("filter composes with join", `Quick, test_filter_composes_with_join);
    ("cse: dedupes shift temps", `Quick, test_cse_dedupes_shift_temps);
    ("cse: preserves semantics", `Quick, test_cse_preserves_semantics);
  ]
