(* Cross-cutting edge cases: zero-dimensional cubes, NULL semantics,
   direct unit tests for smaller pipeline pieces. *)
open Matrix
open Helpers
module M = Mappings

let core_ok = function
  | Ok v -> v
  | Error msg -> Alcotest.failf "unexpected error: %s" msg

(* --- zero-dimensional (constant) cubes across every back end --- *)

let test_constant_cube_all_backends () =
  let source = "K := 2 + 3;\nK2 := K * 10;\n" in
  let checked = Core.compile_exn source in
  let data = Registry.create () in
  (match Core.verify_all_backends checked data with
  | Ok () -> ()
  | Error msg -> Alcotest.fail msg);
  let out = core_ok (Core.run checked data) in
  Alcotest.check value "k2" (vf 50.)
    (Option.get (Cube.find (Registry.find_exn out "K2") (key [])))

let test_total_aggregate_all_backends () =
  let source = "cube A(x: int);\nTOTAL := sum(A);\nSCALED := TOTAL / 2;\n" in
  let checked = Core.compile_exn source in
  let data = Registry.create () in
  Registry.add data Registry.Elementary
    (cube_of "A" [ ("x", Domain.Int) ] [ [ vi 1; vf 4. ]; [ vi 2; vf 6. ] ]);
  (match Core.verify_all_backends checked data with
  | Ok () -> ()
  | Error msg -> Alcotest.fail msg);
  let out = core_ok (Core.run checked data) in
  Alcotest.check value "scaled total" (vf 5.)
    (Option.get (Cube.find (Registry.find_exn out "SCALED") (key [])))

(* --- NULL semantics in the SQL engine --- *)

let test_sql_null_keys_never_join () =
  let db = Relational.Database.create () in
  let t = Relational.Database.create_table db ~name:"A" ~columns:[ "x"; "value" ] in
  Relational.Table.insert t [| Value.Null; vf 1. |];
  Relational.Table.insert t [| vi 1; vf 2. |];
  let schema = Schema.make ~name:"A" ~dims:[ ("x", Domain.Int) ] () in
  let lookup n = if n = "A" then Some schema else None in
  let select =
    {
      Relational.Sql_ast.projections =
        [
          (Relational.Sql_ast.Col { alias = "L"; column = "value" }, "lv");
          (Relational.Sql_ast.Col { alias = "R"; column = "value" }, "rv");
        ];
      from = Relational.Sql_ast.Tables [ ("A", "L"); ("A", "R") ];
      where =
        [
          ( Relational.Sql_ast.Col { alias = "L"; column = "x" },
            Relational.Sql_ast.Col { alias = "R"; column = "x" } );
        ];
      group_by = [];
    }
  in
  match Relational.Executor.rows_of_select db lookup select with
  | Ok rows -> Alcotest.(check int) "only the non-null key joins" 1 (List.length rows)
  | Error e -> Alcotest.fail e

(* --- merge_outer unit --- *)

let test_cube_merge_outer () =
  let a = cube_of "A" [ ("x", Domain.Int) ] [ [ vi 1; vf 1. ]; [ vi 2; vf 2. ] ] in
  let b = cube_of "B" [ ("x", Domain.Int) ] [ [ vi 2; vf 20. ]; [ vi 3; vf 30. ] ] in
  let combined =
    Cube.merge_outer
      (fun va vb ->
        let f v = Option.value ~default:0. (Option.bind v Value.to_float) in
        Value.of_float (f va +. f vb))
      (Cube.schema a) a b
  in
  Alcotest.(check int) "union" 3 (Cube.cardinality combined);
  Alcotest.check value "left only" (vf 1.) (Option.get (Cube.find combined (key [ vi 1 ])));
  Alcotest.check value "both" (vf 22.) (Option.get (Cube.find combined (key [ vi 2 ])));
  Alcotest.check value "right only" (vf 30.) (Option.get (Cube.find combined (key [ vi 3 ])))

(* --- fuse_step unit --- *)

let test_fuse_step_direct () =
  let tv v = M.Term.Var v in
  let producer =
    M.Tgd.Tuple_level
      {
        lhs = [ M.Tgd.atom "A" [ tv "q"; tv "m" ] ];
        rhs =
          M.Tgd.atom "T__1"
            [ tv "q"; M.Term.Binapp (Ops.Binop.Mul, tv "m", M.Term.Const (vf 2.)) ];
      }
  in
  let consumer =
    M.Tgd.Tuple_level
      {
        lhs = [ M.Tgd.atom "T__1" [ tv "q"; tv "m" ] ];
        rhs =
          M.Tgd.atom "OUT"
            [ tv "q"; M.Term.Binapp (Ops.Binop.Add, tv "m", M.Term.Const (vf 1.)) ];
      }
  in
  match M.Fuse.fuse_step ~producer ~consumer with
  | Some (M.Tgd.Tuple_level { lhs; rhs }) ->
      Alcotest.(check int) "one atom" 1 (List.length lhs);
      Alcotest.(check string) "source" "A" (List.hd lhs).M.Tgd.rel;
      Alcotest.(check bool) "nested term" true
        (Astring_contains.contains (M.Tgd.to_string (M.Tgd.Tuple_level { lhs; rhs }))
           "m * 2 + 1")
  | _ -> Alcotest.fail "expected a fused tuple-level tgd"

let test_fuse_step_rejects_non_tuple_level () =
  let tv v = M.Term.Var v in
  let producer =
    M.Tgd.Table_fn { fn = "cumsum"; params = []; source = "A"; target = "T__1" }
  in
  let consumer =
    M.Tgd.Tuple_level
      {
        lhs = [ M.Tgd.atom "T__1" [ tv "q"; tv "m" ] ];
        rhs = M.Tgd.atom "OUT" [ tv "q"; tv "m" ];
      }
  in
  Alcotest.(check bool) "not fusable" true
    (M.Fuse.fuse_step ~producer ~consumer = None)

(* --- stratify failure --- *)

let test_stratify_detects_forward_reference () =
  let tv v = M.Term.Var v in
  let schema name = Schema.make ~name ~dims:[ ("q", Domain.Int) ] () in
  let tgd src dst =
    M.Tgd.Tuple_level
      {
        lhs = [ M.Tgd.atom src [ tv "q"; tv "m" ] ];
        rhs = M.Tgd.atom dst [ tv "q"; tv "m" ];
      }
  in
  let mapping =
    {
      M.Mapping.source = [ schema "A" ];
      target = [ schema "A"; schema "B"; schema "C" ];
      st_tgds = [];
      t_tgds = [ tgd "C" "B"; tgd "B" "C" ] (* C used before defined *);
      egds = [];
    }
  in
  match M.Stratify.check mapping with
  | Error msg ->
      Alcotest.(check bool) "names the relation" true
        (Astring_contains.contains msg "C")
  | Ok () -> Alcotest.fail "expected stratification error"

(* --- historicity same-date replacement --- *)

let test_historicity_same_date_replaces () =
  let h = Engine.Historicity.create () in
  let date = Calendar.Date.make ~year:2026 ~month:1 ~day:1 in
  let mk v = cube_of "X" [ ("k", Domain.Int) ] [ [ vi 1; vf v ] ] in
  Engine.Historicity.store h ~valid_from:date (mk 1.);
  Engine.Historicity.store h ~valid_from:date (mk 2.);
  Alcotest.(check int) "one version" 1 (Engine.Historicity.version_count h "X");
  Alcotest.check value "latest wins" (vf 2.)
    (Option.get
       (Cube.find (Option.get (Engine.Historicity.latest h "X")) (key [ vi 1 ])))

(* --- chase without egd checks --- *)

let test_chase_check_egds_flag () =
  let { M.Generate.mapping; _ } =
    check_ok (M.Generate.of_source Helpers.overview_program)
  in
  let reg = overview_registry () in
  let source = Exchange.Instance.of_registry reg in
  let j1, s1 =
    match Exchange.Chase.run ~check_egds:false mapping source with
    | Ok r -> r
    | Error m -> Alcotest.fail m
  in
  let j2, s2 =
    match Exchange.Chase.run ~check_egds:true mapping source with
    | Ok r -> r
    | Error m -> Alcotest.fail m
  in
  Alcotest.(check int) "no egd comparisons" 0 s1.Exchange.Chase.egd_checks;
  Alcotest.(check bool) "egd comparisons done" true (s2.Exchange.Chase.egd_checks > 0);
  Alcotest.check cube_eq "same result"
    (Exchange.Instance.cube_of_relation j1 "PCHNG")
    (Exchange.Instance.cube_of_relation j2 "PCHNG")

(* --- frame utilities --- *)

let test_frame_sort_append_filter () =
  let f =
    Vector.Frame.create
      [ ("x", [| vi 3; vi 1; vi 2 |]); ("v", [| vf 30.; vf 10.; vf 20. |]) ]
  in
  let sorted = Vector.Frame.sort_rows f in
  Alcotest.check value "first row after sort" (vi 1)
    (Vector.Frame.column sorted "x").(0);
  let appended = Vector.Frame.append_rows sorted sorted in
  Alcotest.(check int) "doubled" 6 (Vector.Frame.length appended);
  let filtered =
    Vector.Frame.filter_rows appended (fun i ->
        Value.equal (Vector.Frame.column appended "x").(i) (vi 2))
  in
  Alcotest.(check int) "two matches" 2 (Vector.Frame.length filtered)

let suite =
  [
    ("constant cube on all backends", `Quick, test_constant_cube_all_backends);
    ("total aggregate on all backends", `Quick, test_total_aggregate_all_backends);
    ("sql: null keys never join", `Quick, test_sql_null_keys_never_join);
    ("cube: merge_outer", `Quick, test_cube_merge_outer);
    ("fuse: direct step", `Quick, test_fuse_step_direct);
    ("fuse: rejects non tuple-level", `Quick, test_fuse_step_rejects_non_tuple_level);
    ("stratify: forward reference", `Quick, test_stratify_detects_forward_reference);
    ("historicity: same date replaces", `Quick, test_historicity_same_date_replaces);
    ("chase: check_egds flag", `Quick, test_chase_check_egds_flag);
    ("frame: sort/append/filter", `Quick, test_frame_sort_append_filter);
  ]
