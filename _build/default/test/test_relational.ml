(* SQL target: generation (paper Section 5.1 fragments), the in-memory
   engine, and end-to-end equivalence with the reference interpreter. *)
open Matrix
open Helpers
module M = Mappings

let overview_mapping () =
  (check_ok (M.Generate.of_source Helpers.overview_program)).M.Generate.mapping

let insert_for mapping name =
  match M.Mapping.tgd_for mapping name with
  | None -> Alcotest.failf "no tgd for %s" name
  | Some tgd -> (
      match Relational.Sql_gen.insert_of_tgd mapping tgd with
      | Ok i -> i
      | Error msg -> Alcotest.failf "sql gen failed for %s: %s" name msg)

(* --- SQL text --- *)

let test_sql_join_fragment () =
  let sql =
    Relational.Sql_print.insert_to_string (insert_for (overview_mapping ()) "RGDP")
  in
  Alcotest.(check string) "paper's tgd (2) translation"
    "INSERT INTO RGDP(Q, R, VALUE)\n\
     SELECT C1.Q AS Q, C1.R AS R, C1.VALUE * C2.VALUE AS VALUE\n\
     FROM RGDPPC C1, PQR C2\n\
     WHERE C2.Q = C1.Q AND C2.R = C1.R"
    sql

let test_sql_group_by_fragment () =
  let sql =
    Relational.Sql_print.insert_to_string (insert_for (overview_mapping ()) "GDP")
  in
  Alcotest.(check string) "paper's tgd (3) translation"
    "INSERT INTO GDP(Q, VALUE)\n\
     SELECT Q, SUM(VALUE) AS VALUE\n\
     FROM RGDP\nGROUP BY Q"
    sql

let test_sql_table_fn_fragment () =
  let sql =
    Relational.Sql_print.insert_to_string (insert_for (overview_mapping ()) "GDPT")
  in
  Alcotest.(check string) "paper's tgd (4) translation"
    "INSERT INTO GDPT(Q, VALUE)\nSELECT Q, VALUE\nFROM STL_T(GDP)" sql

let test_ddl_has_primary_keys () =
  let ddl = Relational.Sql_gen.ddl_of_mapping (overview_mapping ()) in
  Alcotest.(check bool) "create gdp" true
    (String.length ddl > 0
    && Astring_contains.contains ddl "CREATE TABLE GDP"
    && Astring_contains.contains ddl "PRIMARY KEY (Q)")

(* --- engine basics --- *)

let lookup_none _ = None

let test_executor_constant_select () =
  let db = Relational.Database.create () in
  let select =
    {
      Relational.Sql_ast.projections = [ (Relational.Sql_ast.Lit (vf 42.), "x") ];
      from = Relational.Sql_ast.Tables [];
      where = [];
      group_by = [];
    }
  in
  match Relational.Executor.rows_of_select db lookup_none select with
  | Ok [ [| v |] ] -> Alcotest.check value "42" (vf 42.) v
  | Ok _ -> Alcotest.fail "expected one row"
  | Error e -> Alcotest.fail e

let test_plan_explain_shapes () =
  let mapping = overview_mapping () in
  let insert = insert_for mapping "RGDP" in
  let plan =
    check_ok
      (Result.map_error Exl.Errors.make
         (Relational.Executor.plan_of_select
            (M.Mapping.target_schema mapping)
            insert.Relational.Sql_ast.select))
  in
  let text = Relational.Plan.explain plan in
  Alcotest.(check bool) "hash join in plan" true
    (Astring_contains.contains text "HASH JOIN");
  Alcotest.(check bool) "scans in plan" true
    (Astring_contains.contains text "SCAN RGDPPC AS C1")

(* --- end-to-end equivalence --- *)

let registries_agree ~names a b =
  List.iter
    (fun name ->
      Alcotest.check cube_eq ("cube " ^ name) (Registry.find_exn a name)
        (Registry.find_exn b name))
    names

let overview_names = [ "PQR"; "RGDP"; "GDP"; "GDPT"; "PCHNG" ]

let test_sql_target_overview () =
  let reg = overview_registry () in
  let checked = load_overview () in
  let reference = check_ok (Exl.Interp.run checked reg) in
  let via_sql = check_ok (Relational.Sql_target.run_program checked reg) in
  registries_agree ~names:overview_names reference via_sql

let test_sql_target_overview_fused () =
  let reg = overview_registry () in
  let checked = load_overview () in
  let reference = check_ok (Exl.Interp.run checked reg) in
  let via_sql = check_ok (Relational.Sql_target.run_program ~fused:true checked reg) in
  registries_agree ~names:overview_names reference via_sql;
  (* Fusion removes the temp tables entirely. *)
  List.iter
    (fun name ->
      Alcotest.(check bool) (name ^ " absent") false (Registry.mem via_sql name))
    [ "PCHNG__1"; "PCHNG__2"; "PCHNG__3" ]

let test_sql_views_script () =
  let checked = load_overview () in
  let sql =
    check_ok (Relational.Sql_target.script_of_program ~views:`Temporaries checked)
  in
  Alcotest.(check bool) "create view" true
    (Astring_contains.contains sql "CREATE VIEW PCHNG__1");
  Alcotest.(check bool) "final insert stays" true
    (Astring_contains.contains sql "INSERT INTO PCHNG")

let test_sql_views_execution () =
  let reg = overview_registry () in
  let checked = load_overview () in
  let reference = check_ok (Exl.Interp.run checked reg) in
  let via_views =
    check_ok (Relational.Sql_target.run_program ~views:`Temporaries checked reg)
  in
  registries_agree ~names:overview_names reference via_views;
  (* the temporaries were never materialized *)
  List.iter
    (fun name ->
      Alcotest.(check int) (name ^ " empty") 0
        (Cube.cardinality (Registry.find_exn via_views name)))
    [ "PCHNG__1" ]

let prop_sql_views_matches_interp =
  QCheck.Test.make ~count:30
    ~name:"view-based SQL target == interpreter on random programs" Gen.arb_seed
    (fun seed ->
      let src, reg = Gen.program_of_seed seed in
      let checked = Exl.Program.load_exn src in
      let reference = check_ok (Exl.Interp.run checked reg) in
      match Relational.Sql_target.run_program ~views:`Temporaries checked reg with
      | Error e ->
          QCheck.Test.fail_reportf "sql views: %s\n%s" (Exl.Errors.to_string e) src
      | Ok via_sql ->
          List.for_all
            (fun name ->
              match Registry.find via_sql name with
              | Some got ->
                  Cube.equal_data ~eps:1e-7 (Registry.find_exn reference name) got
                  || QCheck.Test.fail_reportf "cube %s differs on\n%s" name src
              | None -> QCheck.Test.fail_reportf "missing %s on\n%s" name src)
            (Registry.names reference))

let prop_sql_matches_interp =
  QCheck.Test.make ~count:40 ~name:"SQL target == interpreter on random programs"
    Gen.arb_seed (fun seed ->
      let src, reg = Gen.program_of_seed seed in
      let checked = Exl.Program.load_exn src in
      let reference =
        match Exl.Interp.run checked reg with
        | Ok r -> r
        | Error e -> QCheck.Test.fail_reportf "interp: %s" (Exl.Errors.to_string e)
      in
      match Relational.Sql_target.run_program checked reg with
      | Error e ->
          QCheck.Test.fail_reportf "sql: %s\n%s" (Exl.Errors.to_string e) src
      | Ok via_sql ->
          List.for_all
            (fun name ->
              match Registry.find via_sql name with
              | Some got ->
                  Cube.equal_data ~eps:1e-7 (Registry.find_exn reference name) got
                  || QCheck.Test.fail_reportf "cube %s differs on\n%s" name src
              | None -> QCheck.Test.fail_reportf "missing %s on\n%s" name src)
            (Registry.names reference))

let prop_sql_fused_matches_interp =
  QCheck.Test.make ~count:40
    ~name:"fused SQL target == interpreter on random programs" Gen.arb_seed
    (fun seed ->
      let src, reg = Gen.program_of_seed seed in
      let checked = Exl.Program.load_exn src in
      let reference = check_ok (Exl.Interp.run checked reg) in
      match Relational.Sql_target.run_program ~fused:true checked reg with
      | Error e ->
          QCheck.Test.fail_reportf "sql: %s\n%s" (Exl.Errors.to_string e) src
      | Ok via_sql ->
          List.for_all
            (fun name ->
              match Registry.find via_sql name with
              | Some got ->
                  Cube.equal_data ~eps:1e-7 (Registry.find_exn reference name) got
                  || QCheck.Test.fail_reportf "cube %s differs on\n%s" name src
              | None -> QCheck.Test.fail_reportf "missing %s on\n%s" name src)
            (Registry.names reference))

(* --- the SQL parser: printer fixpoint and execution equivalence --- *)

let test_parser_roundtrip_overview () =
  let checked = load_overview () in
  List.iter
    (fun views ->
      let text =
        check_ok (Relational.Sql_target.script_of_program ~views checked)
      in
      match Relational.Sql_parser.parse_script text with
      | Error msg -> Alcotest.failf "parse failed: %s\n%s" msg text
      | Ok statements ->
          Alcotest.(check string) "printer fixpoint" text
            (Relational.Sql_print.statements_to_string statements))
    [ `None; `Temporaries ]

let test_parser_expressions () =
  let roundtrip src =
    match Relational.Sql_parser.parse_expr src with
    | Ok e -> Relational.Sql_print.expr_to_string e
    | Error msg -> Alcotest.failf "parse %s: %s" src msg
  in
  List.iter
    (fun src -> Alcotest.(check string) src src (roundtrip src))
    [
      "C1.Q + 1";
      "COALESCE(C1.VALUE, 0) * COALESCE(C2.VALUE, 0)";
      "100 * (C1.VALUE - C2.VALUE) / C1.VALUE";
      "QUARTER(D)";
      "LOG(2, C1.VALUE)";
      "SUM(VALUE)";
      "'overnight'";
      "PERIOD '2023Q1'";
      "DATE '2023-01-02'";
      "NULL";
    ]

let test_parser_rejects_garbage () =
  List.iter
    (fun src ->
      match Relational.Sql_parser.parse_statement src with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "expected parse error for %s" src)
    [
      "DELETE FROM X";
      "INSERT INTO X(A) SELECT";
      "INSERT INTO X(A) SELECT 1 FROM A B C";
      "CREATE VIEW V(A) SELECT 1";
    ]

let test_parsed_script_executes_equivalently () =
  (* print → parse → execute: same cubes as the reference interpreter *)
  let reg = overview_registry () in
  let checked = load_overview () in
  let { M.Generate.mapping; _ } = check_ok (M.Generate.of_checked checked) in
  let text =
    Relational.Sql_print.statements_to_string
      (check_ok
         (Result.map_error Exl.Errors.make
            (Relational.Sql_gen.statements_of_mapping mapping)))
  in
  let statements =
    check_ok (Result.map_error Exl.Errors.make (Relational.Sql_parser.parse_script text))
  in
  let db = Relational.Database.create () in
  List.iter
    (fun schema ->
      Relational.Database.load_cube db
        (Cube.with_schema schema (Registry.find_exn reg schema.Schema.name)))
    mapping.M.Mapping.source;
  (match
     Relational.Executor.run_statements db (M.Mapping.target_schema mapping)
       statements
   with
  | Ok _ -> ()
  | Error msg -> Alcotest.failf "execution of parsed script failed: %s" msg);
  let result =
    Relational.Database.to_registry db ~schemas:mapping.M.Mapping.target
      ~elementary:[]
  in
  let reference = check_ok (Exl.Interp.run checked reg) in
  registries_agree ~names:overview_names reference result

let prop_parser_fixpoint =
  QCheck.Test.make ~count:40 ~name:"SQL parse . print is the identity on generated scripts"
    Gen.arb_seed (fun seed ->
      let src, _ = Gen.program_of_seed seed in
      let checked = Exl.Program.load_exn src in
      match Relational.Sql_target.script_of_program checked with
      | Error e -> QCheck.Test.fail_reportf "gen: %s" (Exl.Errors.to_string e)
      | Ok text -> (
          match Relational.Sql_parser.parse_script text with
          | Error msg -> QCheck.Test.fail_reportf "parse: %s\n%s" msg text
          | Ok statements ->
              let printed = Relational.Sql_print.statements_to_string statements in
              printed = text
              || QCheck.Test.fail_reportf "not a fixpoint:\n%s\nvs\n%s" text printed))

let suite =
  [
    ("sql text: join fragment", `Quick, test_sql_join_fragment);
    ("sql text: group by fragment", `Quick, test_sql_group_by_fragment);
    ("sql text: table function fragment", `Quick, test_sql_table_fn_fragment);
    ("sql text: ddl", `Quick, test_ddl_has_primary_keys);
    ("executor: constant select", `Quick, test_executor_constant_select);
    ("executor: plan explain", `Quick, test_plan_explain_shapes);
    ("end-to-end: overview", `Quick, test_sql_target_overview);
    ("end-to-end: overview fused", `Quick, test_sql_target_overview_fused);
    ("views: script", `Quick, test_sql_views_script);
    ("views: execution", `Quick, test_sql_views_execution);
    QCheck_alcotest.to_alcotest prop_sql_views_matches_interp;
    ("parser: overview roundtrip", `Quick, test_parser_roundtrip_overview);
    ("parser: expressions", `Quick, test_parser_expressions);
    ("parser: rejects garbage", `Quick, test_parser_rejects_garbage);
    ("parser: parsed script executes", `Quick, test_parsed_script_executes_equivalently);
    QCheck_alcotest.to_alcotest prop_parser_fixpoint;
    QCheck_alcotest.to_alcotest prop_sql_matches_interp;
    QCheck_alcotest.to_alcotest prop_sql_fused_matches_interp;
  ]
