(* Schema mapping layer: tgd generation, printing, stratification,
   fusion. *)
open Helpers
module M = Mappings

let generate src = check_ok (M.Generate.of_source src)

let overview_generated () = generate Helpers.overview_program

let find_tgd mapping name =
  match M.Mapping.tgd_for mapping name with
  | Some tgd -> tgd
  | None -> Alcotest.failf "no tgd for %s" name

(* --- generation: the paper's tgds (1)-(4) --- *)

let test_tgd_shapes () =
  let { M.Generate.mapping; _ } = overview_generated () in
  (match find_tgd mapping "PQR" with
  | M.Tgd.Aggregation { aggr; group_by; source; _ } ->
      Alcotest.(check string) "avg" "avg" (Stats.Aggregate.to_string aggr);
      Alcotest.(check int) "two group terms" 2 (List.length group_by);
      Alcotest.(check string) "source" "PDR" source.M.Tgd.rel
  | _ -> Alcotest.fail "PQR should be an aggregation tgd");
  (match find_tgd mapping "RGDP" with
  | M.Tgd.Tuple_level { lhs; _ } ->
      Alcotest.(check int) "join of two atoms" 2 (List.length lhs)
  | _ -> Alcotest.fail "RGDP should be tuple-level");
  (match find_tgd mapping "GDP" with
  | M.Tgd.Aggregation { aggr; group_by; _ } ->
      Alcotest.(check string) "sum" "sum" (Stats.Aggregate.to_string aggr);
      Alcotest.(check int) "one group term" 1 (List.length group_by)
  | _ -> Alcotest.fail "GDP should be an aggregation tgd");
  match find_tgd mapping "GDPT" with
  | M.Tgd.Table_fn { fn; source; _ } ->
      Alcotest.(check string) "stl_t" "stl_t" fn;
      Alcotest.(check string) "GDP" "GDP" source
  | _ -> Alcotest.fail "GDPT should be a table-function tgd"

let test_tgd_printing_matches_paper () =
  let { M.Generate.mapping; _ } = overview_generated () in
  Alcotest.(check string) "tgd (2)"
    "RGDPPC(q, r, m1) ∧ PQR(q, r, m2) → RGDP(q, r, m1 * m2)"
    (M.Tgd.to_string (find_tgd mapping "RGDP"));
  Alcotest.(check string) "tgd (3)"
    "RGDP(q, r, m) → GDP(q, sum(m))"
    (M.Tgd.to_string (find_tgd mapping "GDP"));
  Alcotest.(check string) "tgd (4)"
    "GDP → GDPT(stl_t(GDP))"
    (M.Tgd.to_string (find_tgd mapping "GDPT"));
  Alcotest.(check string) "tgd (1)"
    "PDR(d, r, m) → PQR(quarter(d), r, avg(m))"
    (M.Tgd.to_string (find_tgd mapping "PQR"))

let test_all_tgds_safe () =
  let { M.Generate.mapping; _ } = overview_generated () in
  List.iter
    (fun tgd ->
      Alcotest.(check bool)
        (M.Tgd.to_string tgd) true (M.Tgd.is_safe tgd))
    (mapping.M.Mapping.t_tgds @ mapping.M.Mapping.st_tgds)

let test_shift_tgd_direction () =
  let { M.Generate.mapping; _ } =
    generate "cube A(t: quarter);\nB := shift(A, 1);\n"
  in
  Alcotest.(check string) "lag convention"
    "A(t, m) → B(t + 1, m)"
    (M.Tgd.to_string (find_tgd mapping "B"))

let test_egds_generated () =
  let { M.Generate.mapping; _ } = overview_generated () in
  let egd_rels =
    List.map (fun (e : M.Egd.t) -> e.M.Egd.relation) mapping.M.Mapping.egds
  in
  List.iter
    (fun name ->
      Alcotest.(check bool) ("egd for " ^ name) true (List.mem name egd_rels))
    [ "PDR"; "RGDPPC"; "PQR"; "RGDP"; "GDP"; "GDPT"; "PCHNG" ]

let test_constant_statement () =
  let { M.Generate.mapping; _ } = generate "K := 6 * 7;\n" in
  match find_tgd mapping "K" with
  | M.Tgd.Tuple_level { lhs = []; rhs } ->
      Alcotest.(check string) "rel" "K" rhs.M.Tgd.rel
  | _ -> Alcotest.fail "constant tgd should have an empty lhs"

(* --- stratification --- *)

let test_stratify_ok () =
  let { M.Generate.mapping; _ } = overview_generated () in
  check_ok (Result.map_error (fun m -> Exl.Errors.make m) (M.Stratify.check mapping))

let test_stratify_levels () =
  let { M.Generate.mapping; _ } = overview_generated () in
  let levels = M.Stratify.levels mapping in
  Alcotest.(check int) "PQR level" 1 (List.assoc "PQR" levels);
  Alcotest.(check int) "RGDP level" 2 (List.assoc "RGDP" levels);
  Alcotest.(check int) "GDP level" 3 (List.assoc "GDP" levels);
  Alcotest.(check int) "GDPT level" 4 (List.assoc "GDPT" levels)

let test_strata_partition () =
  let { M.Generate.mapping; _ } = overview_generated () in
  let strata = M.Stratify.strata mapping in
  let total = List.length (List.concat strata) in
  Alcotest.(check int) "all tgds in strata" (List.length mapping.M.Mapping.t_tgds) total

(* --- fusion --- *)

let test_fuse_removes_temps () =
  let { M.Generate.mapping; _ } = overview_generated () in
  let fused = M.Fuse.mapping mapping in
  Alcotest.(check bool) "fewer tgds" true
    (List.length fused.M.Mapping.t_tgds < List.length mapping.M.Mapping.t_tgds);
  List.iter
    (fun tgd ->
      Alcotest.(check bool) "no temp targets" false
        (Exl.Normalize.is_temp (M.Tgd.target_relation tgd)))
    fused.M.Mapping.t_tgds;
  (* Only the five original derived cubes remain as targets. *)
  Alcotest.(check (list string)) "targets"
    [ "PQR"; "RGDP"; "GDP"; "GDPT"; "PCHNG" ]
    (M.Mapping.derived_order fused)

let test_fused_pchng_shape () =
  (* The paper's tgd (5): two GDPT atoms joined one quarter apart with a
     complex arithmetic term in the rhs. *)
  let { M.Generate.mapping; _ } = overview_generated () in
  let fused = M.Fuse.mapping mapping in
  match M.Mapping.tgd_for fused "PCHNG" with
  | Some (M.Tgd.Tuple_level { lhs; rhs }) ->
      Alcotest.(check bool) "at least two GDPT atoms" true
        (List.length (List.filter (fun (a : M.Tgd.atom) -> a.M.Tgd.rel = "GDPT") lhs)
        >= 2);
      Alcotest.(check string) "target" "PCHNG" rhs.M.Tgd.rel
  | _ -> Alcotest.fail "fused PCHNG should be tuple-level"

let test_fuse_preserves_chase_semantics () =
  let { M.Generate.mapping; _ } = overview_generated () in
  let fused = M.Fuse.mapping mapping in
  let reg = overview_registry () in
  let source = Exchange.Instance.of_registry reg in
  let j1, _ = check_ok (Result.map_error Exl.Errors.make (Exchange.Chase.run mapping source)) in
  let j2, _ = check_ok (Result.map_error Exl.Errors.make (Exchange.Chase.run fused source)) in
  List.iter
    (fun name ->
      Alcotest.check cube_eq ("cube " ^ name)
        (Exchange.Instance.cube_of_relation j1 name)
        (Exchange.Instance.cube_of_relation j2 name))
    [ "PQR"; "RGDP"; "GDP"; "GDPT"; "PCHNG" ]

(* --- the logic-notation parser --- *)

let normalize_tgd tgd =
  let norm_atom (a : M.Tgd.atom) =
    { a with M.Tgd.args = List.map M.Term.normalize_shift a.M.Tgd.args }
  in
  match tgd with
  | M.Tgd.Tuple_level { lhs; rhs } ->
      M.Tgd.Tuple_level { lhs = List.map norm_atom lhs; rhs = norm_atom rhs }
  | M.Tgd.Aggregation { source; group_by; aggr; measure; target } ->
      M.Tgd.Aggregation
        {
          source = norm_atom source;
          group_by = List.map M.Term.normalize_shift group_by;
          aggr;
          measure;
          target;
        }
  | M.Tgd.Outer_combine { left; right; op; default; target } ->
      M.Tgd.Outer_combine
        { left = norm_atom left; right = norm_atom right; op; default; target }
  | M.Tgd.Table_fn _ -> tgd

let test_parse_tgd_roundtrip_overview () =
  let { M.Generate.mapping; _ } = overview_generated () in
  List.iter
    (fun tgd ->
      let text = M.Tgd.to_string tgd in
      match M.Parse.tgd_of_string text with
      | Error msg -> Alcotest.failf "parse [%s]: %s" text msg
      | Ok parsed ->
          Alcotest.(check bool) text true
            (M.Tgd.equal (normalize_tgd tgd) (normalize_tgd parsed)))
    mapping.M.Mapping.t_tgds

let test_parse_whole_listing () =
  let { M.Generate.mapping; _ } = overview_generated () in
  let listing = M.Mapping.to_string mapping in
  match M.Parse.tgds_of_string listing with
  | Error msg -> Alcotest.failf "listing: %s" msg
  | Ok tgds ->
      Alcotest.(check int) "all statement tgds parsed"
        (List.length mapping.M.Mapping.t_tgds)
        (List.length tgds)

let test_parse_ascii_connectives () =
  match
    M.Parse.tgd_of_string "RGDPPC(q, r, m1) & PQR(q, r, m2) -> RGDP(q, r, m1 * m2)"
  with
  | Ok (M.Tgd.Tuple_level { lhs; _ }) ->
      Alcotest.(check int) "two atoms" 2 (List.length lhs)
  | Ok _ -> Alcotest.fail "wrong shape"
  | Error msg -> Alcotest.fail msg

let test_parse_handwritten_tgd_executes () =
  (* author a mapping by hand, run it through the chase *)
  let tgds =
    check_ok
      (Result.map_error Exl.Errors.make
         (M.Parse.tgds_of_string
            "A(q, m) -> DOUBLE(q, 2 * m)\nDOUBLE(q, m) -> TOTAL(sum(m))\n"))
  in
  let schema_a =
    Matrix.Schema.make ~name:"A"
      ~dims:[ ("q", Matrix.Domain.Period (Some Matrix.Calendar.Quarter)) ]
      ()
  in
  let schema_double = Matrix.Schema.rename schema_a "DOUBLE" in
  let schema_total = Matrix.Schema.make ~name:"TOTAL" ~dims:[] () in
  let mapping =
    {
      M.Mapping.source = [ schema_a ];
      target = [ schema_a; schema_double; schema_total ];
      st_tgds = [];
      t_tgds = tgds;
      egds = [];
    }
  in
  let inst = Exchange.Instance.create () in
  Exchange.Instance.add_relation inst schema_a;
  ignore (Exchange.Instance.insert inst "A" [| vq 2024 1; vf 3. |]);
  ignore (Exchange.Instance.insert inst "A" [| vq 2024 2; vf 4. |]);
  match Exchange.Chase.run mapping inst with
  | Error msg -> Alcotest.fail msg
  | Ok (j, _) ->
      let total = Exchange.Instance.cube_of_relation j "TOTAL" in
      Alcotest.check value "2*3 + 2*4" (vf 14.)
        (Option.get (Matrix.Cube.find total (key [])))

let test_parse_rejects_garbage () =
  List.iter
    (fun src ->
      match M.Parse.tgd_of_string src with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "expected parse error for %s" src)
    [ "A(x" ; "A(x) B(y)"; "-> "; "A(x) -> frob(B(x))" ]

let prop_tgd_print_parse_roundtrip =
  QCheck.Test.make ~count:40 ~name:"tgd parse . print is the identity"
    Gen.arb_seed (fun seed ->
      let src, _ = Gen.program_of_seed seed in
      let mapping =
        match M.Generate.of_source src with
        | Ok g -> g.M.Generate.mapping
        | Error e -> QCheck.Test.fail_reportf "gen: %s" (Exl.Errors.to_string e)
      in
      List.for_all
        (fun tgd ->
          let text = M.Tgd.to_string tgd in
          match M.Parse.tgd_of_string text with
          | Error msg -> QCheck.Test.fail_reportf "parse [%s]: %s" text msg
          | Ok parsed ->
              M.Tgd.equal (normalize_tgd tgd) (normalize_tgd parsed)
              || QCheck.Test.fail_reportf "mismatch on [%s]" text)
        mapping.M.Mapping.t_tgds)

(* --- terms --- *)

let test_term_eval () =
  let open M.Term in
  let env v = if v = "y" then Some (Matrix.Value.Float 10.) else None in
  Alcotest.(check (option Helpers.value)) "3*y"
    (Some (Matrix.Value.Float 30.))
    (eval env (Binapp (Ops.Binop.Mul, Const (Matrix.Value.Float 3.), Var "y")));
  Alcotest.(check (option Helpers.value)) "y/0 undefined" None
    (eval env (Binapp (Ops.Binop.Div, Var "y", Const (Matrix.Value.Float 0.))));
  Alcotest.(check (option Helpers.value)) "unbound" None (eval env (Var "z"));
  let q = Matrix.Calendar.Period.quarter 2020 1 in
  let env_t v = if v = "t" then Some (Matrix.Value.Period q) else None in
  Alcotest.(check (option Helpers.value)) "shifted"
    (Some (Matrix.Value.Period (Matrix.Calendar.Period.quarter 2020 2)))
    (eval env_t (Shifted (Var "t", 1)))

let test_term_printing () =
  let open M.Term in
  Alcotest.(check string) "q - 1" "q - 1" (to_string (Shifted (Var "q", -1)));
  Alcotest.(check string) "complex"
    "(m1 - m2) * 100 / m1"
    (to_string
       (Binapp
          ( Ops.Binop.Div,
            Binapp
              ( Ops.Binop.Mul,
                Binapp (Ops.Binop.Sub, Var "m1", Var "m2"),
                Const (Matrix.Value.Float 100.) ),
            Var "m1" )))

let suite =
  [
    ("generate: tgd shapes", `Quick, test_tgd_shapes);
    ("generate: printing matches paper", `Quick, test_tgd_printing_matches_paper);
    ("generate: all tgds safe", `Quick, test_all_tgds_safe);
    ("generate: shift direction", `Quick, test_shift_tgd_direction);
    ("generate: egds for every cube", `Quick, test_egds_generated);
    ("generate: constant statement", `Quick, test_constant_statement);
    ("stratify: overview ok", `Quick, test_stratify_ok);
    ("stratify: levels", `Quick, test_stratify_levels);
    ("stratify: strata partition", `Quick, test_strata_partition);
    ("fuse: removes temporaries", `Quick, test_fuse_removes_temps);
    ("fuse: pchng shape", `Quick, test_fused_pchng_shape);
    ("fuse: preserves chase semantics", `Quick, test_fuse_preserves_chase_semantics);
    ("parse: overview tgds roundtrip", `Quick, test_parse_tgd_roundtrip_overview);
    ("parse: whole listing", `Quick, test_parse_whole_listing);
    ("parse: ascii connectives", `Quick, test_parse_ascii_connectives);
    ("parse: hand-written mapping executes", `Quick, test_parse_handwritten_tgd_executes);
    ("parse: rejects garbage", `Quick, test_parse_rejects_garbage);
    QCheck_alcotest.to_alcotest prop_tgd_print_parse_roundtrip;
    ("term: evaluation", `Quick, test_term_eval);
    ("term: printing", `Quick, test_term_printing);
  ]
