(* Random EXL programs with matching elementary data, for property
   tests: the core theorem (chase == interpreter == every target
   engine) must hold on arbitrary well-typed programs, not just the
   paper's example. *)
open Matrix

type cube_shape = {
  name : string;
  dims : (string * Domain.t) list;
  series_len : int option;
      (* Guaranteed length of every temporal slice, when the cube has
         exactly one temporal dimension and its slices are full,
         contiguous quarter ranges; None otherwise.  Used to gate
         operators with length preconditions (stl needs two periods). *)
}

let quarter_domain = Domain.Period (Some Calendar.Quarter)
let n_quarters = 12

(* Candidate dimension pools; every temporal cube uses dimension "t" so
   generated cubes are join-compatible whenever their dim sets match. *)
let shapes =
  [
    [ ("t", quarter_domain) ];
    [ ("t", quarter_domain); ("r", Domain.String) ];
    [ ("r", Domain.String) ];
    [ ("t", quarter_domain); ("r", Domain.String); ("k", Domain.Int) ];
  ]

let regions = [ "north"; "south"; "east" ]

let rand_int st lo hi = lo + Random.State.int st (hi - lo + 1)
let pick st xs = List.nth xs (Random.State.int st (List.length xs))

(* Positive measures keep sqrt-like functions and products tame. *)
let rand_measure st = float_of_int (rand_int st 1 400) /. 4.

let non_temporal_keys dims =
  let rec keys = function
    | [] -> [ [] ]
    | (_, dom) :: rest ->
        let values =
          match dom with
          | Domain.String -> List.map (fun r -> Value.String r) regions
          | Domain.Int -> List.map (fun i -> Value.Int i) [ 1; 2 ]
          | _ -> [ Value.Int 0 ]
        in
        List.concat_map (fun v -> List.map (fun k -> v :: k) (keys rest)) values
  in
  keys (List.filter (fun (_, d) -> not (Domain.is_temporal d)) dims)

let quarters =
  List.init n_quarters (fun i ->
      Value.Period (Calendar.Period.make Calendar.Quarter ((2019 * 4) + i)))

(* Temporal cubes get full, contiguous series per kept slice (sparsity
   lives at the slice level); purely categorical cubes get pointwise
   sparsity.  This keeps stl/diff preconditions decidable statically. *)
let fill_cube st cube dims =
  let has_time = List.exists (fun (_, d) -> Domain.is_temporal d) dims in
  let tpos = ref (-1) in
  List.iteri (fun i (_, d) -> if Domain.is_temporal d then tpos := i) dims;
  let insert key = Cube.set cube (Tuple.of_list key) (Value.Float (rand_measure st)) in
  if has_time then
    List.iter
      (fun rest_key ->
        if Random.State.float st 1.0 < 0.85 then
          List.iter
            (fun q ->
              (* splice q into position !tpos among the other dims *)
              let rec splice i rest =
                if i = !tpos then q :: rest
                else
                  match rest with
                  | [] -> [ q ]
                  | x :: xs -> x :: splice (i + 1) xs
              in
              insert (splice 0 rest_key))
            quarters)
      (non_temporal_keys dims)
  else
    List.iter
      (fun key -> if Random.State.float st 1.0 < 0.85 then insert key)
      (non_temporal_keys dims)

let domain_keyword = function
  | Domain.Period (Some Calendar.Quarter) -> "quarter"
  | Domain.String -> "string"
  | Domain.Int -> "int"
  | Domain.Date -> "date"
  | d -> Domain.to_string d

let decl_of { name; dims; _ } =
  Printf.sprintf "cube %s(%s);" name
    (String.concat ", "
       (List.map (fun (n, d) -> Printf.sprintf "%s: %s" n (domain_keyword d)) dims))

(* Build one random statement over the cubes defined so far; returns
   the statement source and the shape of the new cube. *)
let rand_stmt st idx available =
  let lhs = Printf.sprintf "D%d" idx in
  let operand = pick st available in
  let choice = rand_int st 0 8 in
  match choice with
  | 0 ->
      (* binary op between cubes with the same dims *)
      let partners =
        List.filter
          (fun c ->
            List.sort compare (List.map fst c.dims)
            = List.sort compare (List.map fst operand.dims))
          available
      in
      let partner = pick st partners in
      let op = pick st [ "+"; "-"; "*" ] in
      let series_len =
        (* Intersection of two full slices is full only if both cover
           the same quarters, which holds when neither was shifted;
           be conservative: only keep the guarantee when both operands
           carry one and take the min. *)
        match (operand.series_len, partner.series_len) with
        | Some a, Some b -> Some (min a b)
        | _ -> None
      in
      ( Printf.sprintf "%s := %s %s %s;" lhs operand.name op partner.name,
        { name = lhs; dims = operand.dims; series_len } )
  | 1 ->
      let k = float_of_int (rand_int st 1 9) in
      let op = pick st [ "+"; "*" ] in
      ( Printf.sprintf "%s := %s %s %g;" lhs operand.name op k,
        { operand with name = lhs } )
  | 2 ->
      (* total functions only: sqrt of a negative (possible after
         subtraction) would drop tuples and invalidate series_len *)
      let fn = pick st [ "abs"; "round"; "incr" ] in
      ( Printf.sprintf "%s := %s(%s);" lhs fn operand.name,
        { operand with name = lhs } )
  | 3 when operand.series_len <> None ->
      let k = rand_int st (-3) 3 in
      (* Shifting moves the window: slices stay full and contiguous,
         but a later join with an unshifted cube loses the guarantee —
         encode that by dropping it. *)
      ( Printf.sprintf "%s := shift(%s, %d);" lhs operand.name k,
        { name = lhs; dims = operand.dims; series_len = None } )
  | 4 when operand.dims <> [] ->
      let aggr = pick st [ "sum"; "avg"; "min"; "max"; "count" ] in
      let n = rand_int st 1 (List.length operand.dims) in
      let kept = List.filteri (fun i _ -> i < n) operand.dims in
      let keeps_time =
        List.exists (fun (_, d) -> Domain.is_temporal d) kept
      in
      ( Printf.sprintf "%s := %s(%s, group by %s);" lhs aggr operand.name
          (String.concat ", " (List.map fst kept)),
        {
          name = lhs;
          dims = kept;
          series_len = (if keeps_time then operand.series_len else None);
        } )
  | 5 when (match operand.series_len with Some l -> l >= 2 | None -> false) ->
      let fn = pick st [ "cumsum"; "lintrend"; "zscore" ] in
      ( Printf.sprintf "%s := %s(%s);" lhs fn operand.name,
        { operand with name = lhs } )
  | 6 when (match operand.series_len with Some l -> l >= 9 | None -> false) ->
      let fn = pick st [ "stl_t"; "stl_s"; "deseason"; "diff" ] in
      let series_len =
        match (fn, operand.series_len) with
        | "diff", Some l -> Some (l - 1)
        | _, l -> l
      in
      ( Printf.sprintf "%s := %s(%s);" lhs fn operand.name,
        { name = lhs; dims = operand.dims; series_len } )
  | 7 when List.mem_assoc "r" operand.dims ->
      let region = pick st regions in
      (* whole slices are kept or dropped, so per-slice series stay
         full and the guarantee survives *)
      ( Printf.sprintf "%s := filter(%s, r = \"%s\");" lhs operand.name region,
        { operand with name = lhs } )
  | 8 ->
      (* default-value vectorial variant: union of key sets *)
      let partners =
        List.filter
          (fun c ->
            List.sort compare (List.map fst c.dims)
            = List.sort compare (List.map fst operand.dims))
          available
      in
      let partner = pick st partners in
      let op = pick st [ "vadd"; "vsub"; "vmul" ] in
      let series_len =
        (* union of full, equally ranged slices stays full *)
        match (operand.series_len, partner.series_len) with
        | Some a, Some b when a = b -> Some a
        | _ -> None
      in
      ( Printf.sprintf "%s := %s(%s, %s);" lhs op operand.name partner.name,
        { name = lhs; dims = operand.dims; series_len } )
  | _ ->
      ( Printf.sprintf "%s := 2 * %s;" lhs operand.name,
        { operand with name = lhs } )

let rand_program_and_data st =
  let n_elementary = rand_int st 2 3 in
  let elementary =
    List.init n_elementary (fun i ->
        let dims = pick st shapes in
        let temporal =
          List.length (List.filter (fun (_, d) -> Domain.is_temporal d) dims)
        in
        {
          name = Printf.sprintf "E%d" i;
          dims;
          series_len = (if temporal = 1 then Some n_quarters else None);
        })
  in
  let n_stmts = rand_int st 3 8 in
  let rec build idx available acc =
    if idx > n_stmts then List.rev acc
    else
      let src, shape = rand_stmt st idx available in
      build (idx + 1) (shape :: available) (src :: acc)
  in
  let stmts = build 1 elementary [] in
  let source =
    String.concat "\n" (List.map decl_of elementary @ stmts) ^ "\n"
  in
  let registry = Registry.create () in
  List.iter
    (fun shape ->
      let schema = Schema.make ~name:shape.name ~dims:shape.dims () in
      let cube = Cube.create schema in
      fill_cube st cube shape.dims;
      Registry.add registry Registry.Elementary cube)
    elementary;
  (source, registry)

(* QCheck arbitrary wrapping: generate a seed, derive program and data
   deterministically so failures are reproducible from the seed. *)
let arb_seed = QCheck.make ~print:string_of_int QCheck.Gen.(0 -- 1_000_000)

let program_of_seed seed =
  let st = Random.State.make [| seed; 0xE1; 0x5E |] in
  rand_program_and_data st
