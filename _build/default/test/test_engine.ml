(* EXLEngine architecture (Section 6): determination engine,
   dispatcher, historicity, and the facade. *)
open Matrix
open Helpers

let ok = function
  | Ok v -> v
  | Error msg -> Alcotest.failf "unexpected error: %s" msg

let overview_determination () =
  let d = Engine.Determination.create () in
  ok (Engine.Determination.register_source d ~name:"overview" Helpers.overview_program);
  d

(* --- determination --- *)

let test_affected_from_pdr () =
  let d = overview_determination () in
  Alcotest.(check (list string)) "all downstream of PDR"
    [ "PQR"; "RGDP"; "GDP"; "GDPT"; "PCHNG" ]
    (Engine.Determination.affected d ~changed:[ "PDR" ])

let test_affected_from_rgdppc () =
  let d = overview_determination () in
  Alcotest.(check (list string)) "PQR not affected"
    [ "RGDP"; "GDP"; "GDPT"; "PCHNG" ]
    (Engine.Determination.affected d ~changed:[ "RGDPPC" ])

let test_affected_empty () =
  let d = overview_determination () in
  Alcotest.(check (list string)) "nothing" []
    (Engine.Determination.affected d ~changed:[])

let test_dependents () =
  let d = overview_determination () in
  Alcotest.(check (list string)) "GDP feeds GDPT" [ "GDPT" ]
    (Engine.Determination.dependents_of d "GDP");
  Alcotest.(check (list string)) "GDPT feeds PCHNG" [ "PCHNG" ]
    (Engine.Determination.dependents_of d "GDPT")

let test_multi_program_sharing () =
  let d = overview_determination () in
  (* A second program reading GDP is fine... *)
  ok
    (Engine.Determination.register_source d ~name:"extra"
       "GDP2 := 2 * GDP;\n");
  Alcotest.(check (list string)) "GDP2 downstream"
    [ "RGDP"; "GDP"; "GDPT"; "PCHNG"; "GDP2" ]
    (Engine.Determination.affected d ~changed:[ "RGDPPC" ]);
  (* ... but redefining a derived cube is rejected. *)
  match
    Engine.Determination.register_source d ~name:"conflict" "GDP := 1 * GDP2;\n"
  with
  | Error msg ->
      Alcotest.(check bool) "mentions definition" true
        (Astring_contains.contains msg "defined")
  | Ok () -> Alcotest.fail "expected redefinition error"

let test_build_program_subset () =
  let d = overview_determination () in
  let checked = ok (Engine.Determination.build_program d ~cubes:[ "GDP"; "GDPT" ]) in
  let env = checked.Exl.Typecheck.env in
  (* RGDP becomes an input declaration. *)
  Alcotest.(check (option string)) "RGDP is input"
    (Some "elementary")
    (Option.map Registry.kind_to_string (Exl.Typecheck.Env.kind env "RGDP"));
  Alcotest.(check (option string)) "GDP derived"
    (Some "derived")
    (Option.map Registry.kind_to_string (Exl.Typecheck.Env.kind env "GDP"))

let test_partition_groups_runs () =
  let groups =
    Engine.Determination.partition
      ~assign:(fun c -> if c = "GDPT" then "vector" else "etl")
      [ "PQR"; "RGDP"; "GDP"; "GDPT"; "PCHNG" ]
  in
  Alcotest.(check int) "three subgraphs" 3 (List.length groups);
  Alcotest.(check (list string)) "first run" [ "PQR"; "RGDP"; "GDP" ]
    (snd (List.nth groups 0));
  Alcotest.(check string) "second target" "vector" (fst (List.nth groups 1))

let test_dot_output () =
  let d = overview_determination () in
  let dot = Engine.Determination.dot d in
  Alcotest.(check bool) "edge" true
    (Astring_contains.contains dot "GDP -> GDPT")

(* --- dispatcher assignment --- *)

let test_assignment_respects_capabilities () =
  let d = overview_determination () in
  let policy =
    { Engine.Dispatcher.priority = [ "etl"; "vector"; "sql" ]; overrides = [] }
  in
  (* The ETL target lacks seasonal decomposition: GDPT must fall through
     to the vector engine. *)
  Alcotest.(check string) "GDPT goes to vector" "vector"
    (ok
       (Engine.Dispatcher.assign ~targets:Engine.Target.builtins ~policy d "GDPT"));
  Alcotest.(check string) "RGDP stays on etl" "etl"
    (ok (Engine.Dispatcher.assign ~targets:Engine.Target.builtins ~policy d "RGDP"))

let test_assignment_override () =
  let d = overview_determination () in
  let policy =
    {
      Engine.Dispatcher.priority = [ "sql" ];
      overrides = [ ("GDP", "vector") ];
    }
  in
  Alcotest.(check string) "override wins" "vector"
    (ok (Engine.Dispatcher.assign ~targets:Engine.Target.builtins ~policy d "GDP"))

let test_assignment_override_rejected_when_unsupported () =
  let d = overview_determination () in
  let policy =
    {
      Engine.Dispatcher.priority = [ "sql" ];
      overrides = [ ("GDPT", "etl") ];
    }
  in
  match Engine.Dispatcher.assign ~targets:Engine.Target.builtins ~policy d "GDPT" with
  | Error msg ->
      Alcotest.(check bool) "explains" true
        (Astring_contains.contains msg "cannot compute")
  | Ok t -> Alcotest.failf "expected rejection, got %s" t

(* --- historicity --- *)

let date y m d = Calendar.Date.make ~year:y ~month:m ~day:d

let test_historicity_as_of () =
  let h = Engine.Historicity.create () in
  let mk v =
    cube_of "GDP" [ ("q", Domain.Period (Some Calendar.Quarter)) ]
      [ [ vq 2020 1; vf v ] ]
  in
  Engine.Historicity.store h ~valid_from:(date 2026 1 1) (mk 100.);
  Engine.Historicity.store h ~valid_from:(date 2026 2 1) (mk 105.);
  Alcotest.(check int) "two versions" 2 (Engine.Historicity.version_count h "GDP");
  let v_jan = Option.get (Engine.Historicity.as_of h (date 2026 1 15) "GDP") in
  Alcotest.check value "january view" (vf 100.)
    (Option.get (Cube.find v_jan (key [ vq 2020 1 ])));
  let v_now = Option.get (Engine.Historicity.latest h "GDP") in
  Alcotest.check value "latest view" (vf 105.)
    (Option.get (Cube.find v_now (key [ vq 2020 1 ])));
  Alcotest.(check (option Helpers.cube_eq |> fun _ -> Alcotest.bool))
    "before first version" true
    (Engine.Historicity.as_of h (date 2025 1 1) "GDP" = None)

(* --- the facade --- *)

let make_engine ?config () =
  let engine = Engine.Exlengine.create ?config () in
  ok (Engine.Exlengine.register_program engine ~name:"overview" Helpers.overview_program);
  let data = overview_registry () in
  ok (Engine.Exlengine.load_elementary engine (Registry.find_exn data "PDR"));
  ok (Engine.Exlengine.load_elementary engine (Registry.find_exn data "RGDPPC"));
  (engine, data)

let overview_names = [ "PQR"; "RGDP"; "GDP"; "GDPT"; "PCHNG" ]

let test_facade_end_to_end () =
  let engine, data = make_engine () in
  let report = ok (Engine.Exlengine.recompute engine) in
  Alcotest.(check (list string)) "all recomputed" overview_names
    report.Engine.Dispatcher.recomputed;
  let reference = check_ok (Exl.Interp.run (load_overview ()) data) in
  List.iter
    (fun name ->
      Alcotest.check cube_eq ("cube " ^ name)
        (Registry.find_exn reference name)
        (Option.get (Engine.Exlengine.cube engine name)))
    overview_names;
  Alcotest.(check (list string)) "dirty cleared" [] (Engine.Exlengine.changed engine)

let test_facade_incremental () =
  let engine, data = make_engine () in
  ignore (ok (Engine.Exlengine.recompute engine));
  (* Change only RGDPPC: PQR must not be recomputed. *)
  ok (Engine.Exlengine.load_elementary engine (Registry.find_exn data "RGDPPC"));
  let report = ok (Engine.Exlengine.recompute engine) in
  Alcotest.(check (list string)) "partial recomputation"
    [ "RGDP"; "GDP"; "GDPT"; "PCHNG" ]
    report.Engine.Dispatcher.recomputed

let test_facade_translation_cache () =
  let engine, data = make_engine () in
  ignore (ok (Engine.Exlengine.recompute engine));
  let misses_after_first =
    Engine.Translation.cache_misses (Engine.Exlengine.translation_cache engine)
  in
  ok (Engine.Exlengine.load_elementary engine (Registry.find_exn data "PDR"));
  ignore (ok (Engine.Exlengine.recompute engine));
  Alcotest.(check int) "no new misses on identical recomputation"
    misses_after_first
    (Engine.Translation.cache_misses (Engine.Exlengine.translation_cache engine));
  Alcotest.(check bool) "cache hits recorded" true
    (Engine.Translation.cache_hits (Engine.Exlengine.translation_cache engine) > 0)

let test_facade_multi_target_split () =
  let config =
    {
      Engine.Exlengine.default_config with
      Engine.Exlengine.policy =
        { Engine.Dispatcher.priority = [ "etl"; "vector"; "sql" ]; overrides = [] };
    }
  in
  let engine, data = make_engine ~config () in
  let report = ok (Engine.Exlengine.recompute engine) in
  let targets_used =
    List.sort_uniq String.compare
      (List.map
         (fun (s : Engine.Dispatcher.subgraph_report) -> s.Engine.Dispatcher.target)
         report.Engine.Dispatcher.subgraphs)
  in
  Alcotest.(check (list string)) "split across engines" [ "etl"; "vector" ]
    targets_used;
  (* Results still agree with the reference interpreter. *)
  let reference = check_ok (Exl.Interp.run (load_overview ()) data) in
  List.iter
    (fun name ->
      Alcotest.check cube_eq ("cube " ^ name)
        (Registry.find_exn reference name)
        (Option.get (Engine.Exlengine.cube engine name)))
    overview_names

let test_facade_parallel_dispatch () =
  (* Two independent programs over disjoint data: with the etl-priority
     policy they form independent subgraphs; parallel dispatch must
     produce the same cubes as sequential. *)
  let two_programs engine =
    ok
      (Engine.Exlengine.register_program engine ~name:"overview"
         Helpers.overview_program);
    ok
      (Engine.Exlengine.register_program engine ~name:"second"
         "cube S(m: month);\nS2 := 2 * S;\nS3 := cumsum(S2);\n");
    let data = overview_registry () in
    ok (Engine.Exlengine.load_elementary engine (Registry.find_exn data "PDR"));
    ok (Engine.Exlengine.load_elementary engine (Registry.find_exn data "RGDPPC"));
    let s =
      cube_of "S"
        [ ("m", Domain.Period (Some Calendar.Month)) ]
        (List.init 8 (fun i -> [ vm 2024 (i + 1); vf (float_of_int i) ]))
    in
    ok (Engine.Exlengine.load_elementary engine s)
  in
  let run parallel =
    let config =
      { Engine.Exlengine.default_config with Engine.Exlengine.parallel_dispatch = parallel }
    in
    let engine = Engine.Exlengine.create ~config () in
    two_programs engine;
    ignore (ok (Engine.Exlengine.recompute engine));
    engine
  in
  let sequential = run false and parallel = run true in
  List.iter
    (fun name ->
      Alcotest.check cube_eq ("cube " ^ name)
        (Option.get (Engine.Exlengine.cube sequential name))
        (Option.get (Engine.Exlengine.cube parallel name)))
    [ "PQR"; "RGDP"; "GDP"; "GDPT"; "PCHNG"; "S2"; "S3" ]

let test_facade_history_versions () =
  let engine, data = make_engine () in
  ignore (ok (Engine.Exlengine.recompute ~as_of:(date 2026 1 1) engine));
  ok (Engine.Exlengine.load_elementary engine (Registry.find_exn data "RGDPPC"));
  ignore (ok (Engine.Exlengine.recompute ~as_of:(date 2026 2 1) engine));
  Alcotest.(check int) "GDP has two versions" 2
    (Engine.Historicity.version_count (Engine.Exlengine.history engine) "GDP");
  Alcotest.(check int) "PQR has one version" 1
    (Engine.Historicity.version_count (Engine.Exlengine.history engine) "PQR")

let test_facade_store_persistence () =
  let engine, _ = make_engine () in
  ignore (ok (Engine.Exlengine.recompute engine));
  let dir = Filename.temp_file "exl_engine_store" "" in
  Sys.remove dir;
  ok (Engine.Exlengine.save_store engine ~dir);
  (* a fresh engine restores the saved state *)
  let engine2 = Engine.Exlengine.create () in
  ok
    (Engine.Exlengine.register_program engine2 ~name:"overview"
       Helpers.overview_program);
  ok (Engine.Exlengine.load_store engine2 ~dir);
  Alcotest.check cube_eq "GDP restored"
    (Option.get (Engine.Exlengine.cube engine "GDP"))
    (Option.get (Engine.Exlengine.cube engine2 "GDP"));
  (* elementary cubes are marked dirty: recompute refreshes everything *)
  Alcotest.(check bool) "dirty after load" true
    (Engine.Exlengine.changed engine2 <> []);
  let report = ok (Engine.Exlengine.recompute engine2) in
  Alcotest.(check int) "all recomputed" 5
    (List.length report.Engine.Dispatcher.recomputed)

let test_facade_rejects_unknown_elementary () =
  let engine = Engine.Exlengine.create () in
  ok (Engine.Exlengine.register_program engine ~name:"p" "cube A(x: int);\nB := A + 1;\n");
  let stray = cube_of "Z" [ ("x", Domain.Int) ] [ [ vi 1; vf 1. ] ] in
  match Engine.Exlengine.load_elementary engine stray with
  | Error msg ->
      Alcotest.(check bool) "mentions cube" true (Astring_contains.contains msg "Z")
  | Ok () -> Alcotest.fail "expected rejection"

let prop_engine_matches_interp =
  QCheck.Test.make ~count:25
    ~name:"EXLEngine facade == interpreter on random programs" Gen.arb_seed
    (fun seed ->
      let src, reg = Gen.program_of_seed seed in
      let engine = Engine.Exlengine.create () in
      (match Engine.Exlengine.register_program engine ~name:"p" src with
      | Ok () -> ()
      | Error msg -> QCheck.Test.fail_reportf "register: %s\n%s" msg src);
      List.iter
        (fun name ->
          match Engine.Exlengine.load_elementary engine (Registry.find_exn reg name) with
          | Ok () -> ()
          | Error msg -> QCheck.Test.fail_reportf "load: %s" msg)
        (Registry.elementary_names reg);
      (match Engine.Exlengine.recompute engine with
      | Ok _ -> ()
      | Error msg -> QCheck.Test.fail_reportf "recompute: %s\n%s" msg src);
      let checked = Exl.Program.load_exn src in
      let reference = check_ok (Exl.Interp.run checked reg) in
      List.for_all
        (fun name ->
          match Engine.Exlengine.cube engine name with
          | Some got ->
              Cube.equal_data ~eps:1e-7 (Registry.find_exn reference name) got
              || QCheck.Test.fail_reportf "cube %s differs on\n%s" name src
          | None ->
              Registry.kind_of reference name = Some Registry.Elementary
              || QCheck.Test.fail_reportf "missing %s on\n%s" name src)
        (Registry.derived_names reference))

let suite =
  [
    ("determination: affected from PDR", `Quick, test_affected_from_pdr);
    ("determination: affected from RGDPPC", `Quick, test_affected_from_rgdppc);
    ("determination: affected empty", `Quick, test_affected_empty);
    ("determination: dependents", `Quick, test_dependents);
    ("determination: multi-program", `Quick, test_multi_program_sharing);
    ("determination: build subset program", `Quick, test_build_program_subset);
    ("determination: partition runs", `Quick, test_partition_groups_runs);
    ("determination: dot", `Quick, test_dot_output);
    ("dispatcher: capability assignment", `Quick, test_assignment_respects_capabilities);
    ("dispatcher: override", `Quick, test_assignment_override);
    ("dispatcher: unsupported override rejected", `Quick, test_assignment_override_rejected_when_unsupported);
    ("historicity: as-of reads", `Quick, test_historicity_as_of);
    ("facade: end to end", `Quick, test_facade_end_to_end);
    ("facade: incremental recomputation", `Quick, test_facade_incremental);
    ("facade: translation cache", `Quick, test_facade_translation_cache);
    ("facade: multi-target split", `Quick, test_facade_multi_target_split);
    ("facade: parallel dispatch", `Quick, test_facade_parallel_dispatch);
    ("facade: history versions", `Quick, test_facade_history_versions);
    ("facade: store persistence", `Quick, test_facade_store_persistence);
    ("facade: rejects unknown elementary", `Quick, test_facade_rejects_unknown_elementary);
    QCheck_alcotest.to_alcotest prop_engine_matches_interp;
  ]
