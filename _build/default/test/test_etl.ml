(* ETL target: flow generation (paper Figure 1), the streaming engine,
   Kettle catalog serialization, end-to-end equivalence. *)
open Matrix
open Helpers
module M = Mappings

let overview_job () =
  let checked = load_overview () in
  check_ok (Etl.Etl_target.job_of_program checked)

(* --- flow structure --- *)

let test_figure1_flow_shape () =
  (* Figure 1: the flow for tgd (2) is two data sources -> merge ->
     calculation -> output. *)
  let job, _ = overview_job () in
  let flow =
    List.find (fun f -> f.Etl.Flow.name = "compute_RGDP") job.Etl.Job.flows
  in
  let kinds = List.map Etl.Step.kind flow.Etl.Flow.steps in
  Alcotest.(check (list string)) "figure 1 step sequence"
    [ "TableInput"; "TableInput"; "MergeJoin"; "Calculator"; "SelectValues"; "TableOutput" ]
    kinds;
  Alcotest.(check (list string)) "reads both cubes"
    [ "RGDPPC"; "PQR" ]
    (Etl.Flow.input_cubes flow);
  Alcotest.(check string) "writes RGDP" "RGDP" (Etl.Flow.output_cube flow)

let test_aggregation_flow_has_sort_and_group () =
  let job, _ = overview_job () in
  let flow =
    List.find (fun f -> f.Etl.Flow.name = "compute_GDP") job.Etl.Job.flows
  in
  let kinds = List.map Etl.Step.kind flow.Etl.Flow.steps in
  Alcotest.(check bool) "has sort" true (List.mem "SortRows" kinds);
  Alcotest.(check bool) "has group" true (List.mem "GroupBy" kinds)

let test_blackbox_flow_user_defined () =
  let job, _ = overview_job () in
  let flow =
    List.find (fun f -> f.Etl.Flow.name = "compute_GDPT") job.Etl.Job.flows
  in
  Alcotest.(check bool) "user-defined step" true
    (List.mem "UserDefined" (List.map Etl.Step.kind flow.Etl.Flow.steps))

let test_flow_validation_rejects_cycles () =
  let bad =
    [
      Etl.Step.Sort { step = "a"; input = "b" };
      Etl.Step.Sort { step = "b"; input = "a" };
    ]
  in
  match Etl.Flow.make ~name:"bad" bad with
  | Error msg ->
      Alcotest.(check bool) "mentions undefined" true
        (Astring_contains.contains msg "undefined")
  | Ok _ -> Alcotest.fail "expected validation error"

let test_flow_validation_requires_one_output () =
  let steps = [ Etl.Step.Table_input { step = "in"; cube = "A" } ] in
  match Etl.Flow.make ~name:"no_out" steps with
  | Error msg ->
      Alcotest.(check bool) "mentions output" true
        (Astring_contains.contains msg "output")
  | Ok _ -> Alcotest.fail "expected validation error"

(* --- kettle serialization --- *)

let test_kettle_xml () =
  let checked = load_overview () in
  let xml = check_ok (Etl.Etl_target.kettle_catalog_of_program checked) in
  List.iter
    (fun fragment ->
      Alcotest.(check bool) ("contains " ^ fragment) true
        (Astring_contains.contains xml fragment))
    [
      "<job>";
      "<transformation>";
      "<type>MergeJoin</type>";
      "<type>TableOutput</type>";
      "<hop><from>in_left</from><to>merge</to></hop>";
      "<formula>";
    ]

let test_kettle_escaping () =
  Alcotest.(check string) "escape" "a &lt;b&gt; &amp; &quot;c&quot;"
    (Etl.Kettle.escape "a <b> & \"c\"")

(* --- engine --- *)

let overview_names = [ "PQR"; "RGDP"; "GDP"; "GDPT"; "PCHNG" ]

let test_etl_target_overview () =
  let reg = overview_registry () in
  let checked = load_overview () in
  let reference = check_ok (Exl.Interp.run checked reg) in
  let via_etl = check_ok (Etl.Etl_target.run_program checked reg) in
  List.iter
    (fun name ->
      Alcotest.check cube_eq ("cube " ^ name)
        (Registry.find_exn reference name)
        (Registry.find_exn via_etl name))
    overview_names

let test_batch_size_is_semantics_neutral () =
  let reg = overview_registry () in
  let checked = load_overview () in
  let a = check_ok (Etl.Etl_target.run_program ~batch_size:7 checked reg) in
  let b = check_ok (Etl.Etl_target.run_program ~batch_size:100000 checked reg) in
  List.iter
    (fun name ->
      Alcotest.check cube_eq ("cube " ^ name) (Registry.find_exn a name)
        (Registry.find_exn b name))
    overview_names

let prop_etl_matches_interp =
  QCheck.Test.make ~count:40
    ~name:"ETL target == interpreter on random programs" Gen.arb_seed
    (fun seed ->
      let src, reg = Gen.program_of_seed seed in
      let checked = Exl.Program.load_exn src in
      let reference = check_ok (Exl.Interp.run checked reg) in
      match Etl.Etl_target.run_program checked reg with
      | Error e ->
          QCheck.Test.fail_reportf "etl: %s\n%s" (Exl.Errors.to_string e) src
      | Ok via_etl ->
          List.for_all
            (fun name ->
              match Registry.find via_etl name with
              | Some got ->
                  Cube.equal_data ~eps:1e-7 (Registry.find_exn reference name) got
                  || QCheck.Test.fail_reportf "cube %s differs on\n%s" name src
              | None -> QCheck.Test.fail_reportf "missing %s on\n%s" name src)
            (Registry.names reference))

let suite =
  [
    ("flow: figure 1 shape", `Quick, test_figure1_flow_shape);
    ("flow: aggregation sort+group", `Quick, test_aggregation_flow_has_sort_and_group);
    ("flow: blackbox user-defined", `Quick, test_blackbox_flow_user_defined);
    ("flow: validation rejects undefined inputs", `Quick, test_flow_validation_rejects_cycles);
    ("flow: validation requires one output", `Quick, test_flow_validation_requires_one_output);
    ("kettle: xml catalog", `Quick, test_kettle_xml);
    ("kettle: escaping", `Quick, test_kettle_escaping);
    ("end-to-end: overview", `Quick, test_etl_target_overview);
    ("end-to-end: batch size neutral", `Quick, test_batch_size_is_semantics_neutral);
    QCheck_alcotest.to_alcotest prop_etl_matches_interp;
  ]
