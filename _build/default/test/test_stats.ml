(* The statistical substrate: descriptive statistics, aggregation
   operators, moving windows, loess, regression, interpolation and
   seasonal decomposition. *)
open Helpers

let arr = Array.of_list

(* --- descriptive --- *)

let test_descriptive_known_values () =
  let xs = [| 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. |] in
  Alcotest.check floats "mean" 5. (Stats.Descriptive.mean xs);
  Alcotest.check floats "stddev" 2. (Stats.Descriptive.stddev xs);
  Alcotest.check floats "median" 4.5 (Stats.Descriptive.median xs);
  Alcotest.check floats "q0" 2. (Stats.Descriptive.quantile 0. xs);
  Alcotest.check floats "q1" 9. (Stats.Descriptive.quantile 1. xs);
  Alcotest.check floats "sum" 40. (Stats.Descriptive.sum xs)

let test_descriptive_correlation () =
  let x = [| 1.; 2.; 3.; 4. |] in
  let y = [| 2.; 4.; 6.; 8. |] in
  Alcotest.check floats "perfect" 1. (Stats.Descriptive.correlation x y);
  let y_neg = [| 8.; 6.; 4.; 2. |] in
  Alcotest.check floats "inverse" (-1.) (Stats.Descriptive.correlation x y_neg)

let test_descriptive_empty_rejected () =
  Alcotest.check_raises "mean of empty"
    (Invalid_argument "Descriptive.mean: empty input") (fun () ->
      ignore (Stats.Descriptive.mean [||]))

let test_autocorrelation () =
  (* a pure sine of period 12 has acf ~1 at lag 12, ~-1 at lag 6 *)
  let xs =
    Array.init 120 (fun i -> sin (2. *. Float.pi *. float_of_int i /. 12.))
  in
  Alcotest.(check bool) "lag 12 high" true
    (Stats.Descriptive.autocorrelation ~lag:12 xs > 0.85);
  Alcotest.(check bool) "lag 6 low" true
    (Stats.Descriptive.autocorrelation ~lag:6 xs < -0.85);
  Alcotest.check floats "lag 0" 1. (Stats.Descriptive.autocorrelation ~lag:0 xs);
  Alcotest.check floats "degenerate" 0.
    (Stats.Descriptive.autocorrelation ~lag:1 (Array.make 5 3.))

(* --- aggregates --- *)

let test_aggregate_known () =
  let bag = [ 3.; 1.; 2. ] in
  let check name aggr expected =
    Alcotest.check floats name expected (Stats.Aggregate.apply aggr bag)
  in
  check "sum" Stats.Aggregate.Sum 6.;
  check "avg" Stats.Aggregate.Avg 2.;
  check "min" Stats.Aggregate.Min 1.;
  check "max" Stats.Aggregate.Max 3.;
  check "count" Stats.Aggregate.Count 3.;
  check "median" Stats.Aggregate.Median 2.;
  check "product" Stats.Aggregate.Product 6.;
  check "first" Stats.Aggregate.First 3.;
  check "last" Stats.Aggregate.Last 2.

let test_aggregate_names_roundtrip () =
  List.iter
    (fun aggr ->
      Alcotest.(check bool)
        (Stats.Aggregate.to_string aggr)
        true
        (Stats.Aggregate.of_string (Stats.Aggregate.to_string aggr) = Some aggr))
    Stats.Aggregate.all

let prop_aggregate_bounds =
  QCheck.Test.make ~count:200 ~name:"min <= avg/median <= max"
    QCheck.(list_of_size Gen.(1 -- 30) (int_range (-500) 500))
    (fun xs ->
      let bag = List.map float_of_int xs in
      let v a = Stats.Aggregate.apply a bag in
      let lo = v Stats.Aggregate.Min and hi = v Stats.Aggregate.Max in
      let between x = lo -. 1e-9 <= x && x <= hi +. 1e-9 in
      between (v Stats.Aggregate.Avg) && between (v Stats.Aggregate.Median))

let prop_sum_count_avg =
  QCheck.Test.make ~count:200 ~name:"sum = count * avg"
    QCheck.(list_of_size Gen.(1 -- 30) (int_range (-500) 500))
    (fun xs ->
      let bag = List.map float_of_int xs in
      let v a = Stats.Aggregate.apply a bag in
      Float.abs (v Stats.Aggregate.Sum -. (v Stats.Aggregate.Count *. v Stats.Aggregate.Avg))
      < 1e-6)

(* --- moving windows --- *)

let test_moving_trailing () =
  Alcotest.check float_array "trailing w=2"
    [| 1.; 1.5; 2.5; 3.5 |]
    (Stats.Moving.trailing_average ~window:2 (arr [ 1.; 2.; 3.; 4. ]))

let test_moving_centered_odd () =
  Alcotest.check float_array "centered w=3"
    [| Float.nan; 2.; 3.; Float.nan |]
    (Stats.Moving.centered_average ~window:3 (arr [ 1.; 2.; 3.; 4. ]))

let test_moving_centered_even_2xw () =
  (* 2x4 MA of a linear series is exact in the interior. *)
  let xs = Array.init 8 float_of_int in
  let out = Stats.Moving.centered_average ~window:4 xs in
  Alcotest.check floats "interior exact" 2. out.(2);
  Alcotest.check floats "interior exact 2" 5. out.(5);
  Alcotest.(check bool) "edges nan" true (Float.is_nan out.(0) && Float.is_nan out.(7))

let test_moving_diff_and_pct () =
  Alcotest.check float_array "diff"
    [| Float.nan; 1.; 2.; 4. |]
    (Stats.Moving.diff (arr [ 1.; 2.; 4.; 8. ]));
  Alcotest.check float_array "pct"
    [| Float.nan; 100.; 100.; 100. |]
    (Stats.Moving.pct_change (arr [ 1.; 2.; 4.; 8. ]))

let test_moving_cumsum () =
  Alcotest.check float_array "cumsum" [| 1.; 3.; 6. |]
    (Stats.Moving.cumsum (arr [ 1.; 2.; 3. ]))

(* --- loess --- *)

let test_loess_fits_linear_exactly () =
  (* Locally linear regression reproduces a linear signal exactly. *)
  let xs = Array.init 20 (fun i -> (3. *. float_of_int i) +. 7.) in
  let smoothed = Stats.Loess.smooth ~span:7 xs in
  Array.iteri
    (fun i v -> Alcotest.check floats (Printf.sprintf "point %d" i) xs.(i) v)
    smoothed

let test_loess_tricube () =
  Alcotest.check floats "at zero" 1. (Stats.Loess.tricube 0.);
  Alcotest.check floats "outside" 0. (Stats.Loess.tricube 1.5);
  Alcotest.(check bool) "monotone" true
    (Stats.Loess.tricube 0.2 > Stats.Loess.tricube 0.8)

(* --- regression --- *)

let test_ols_recovers_line () =
  let x = Array.init 50 float_of_int in
  let y = Array.map (fun xi -> (2.5 *. xi) -. 4.) x in
  let fit = Stats.Regression.ols x y in
  Alcotest.check floats "slope" 2.5 fit.Stats.Regression.slope;
  Alcotest.check floats "intercept" (-4.) fit.Stats.Regression.intercept;
  Alcotest.check floats "r2" 1. (Stats.Regression.r_squared fit x y)

let test_ols_degenerate_x () =
  let x = [| 3.; 3.; 3. |] and y = [| 1.; 2.; 3. |] in
  let fit = Stats.Regression.ols x y in
  Alcotest.check floats "slope 0" 0. fit.Stats.Regression.slope;
  Alcotest.check floats "intercept mean" 2. fit.Stats.Regression.intercept

let test_ols_multi () =
  (* y = 1 + 2 a + 3 b *)
  let rows =
    [| [| 0.; 0. |]; [| 1.; 0. |]; [| 0.; 1. |]; [| 2.; 3. |]; [| 4.; 1. |] |]
  in
  let y = Array.map (fun r -> 1. +. (2. *. r.(0)) +. (3. *. r.(1))) rows in
  let coeffs = Stats.Regression.ols_multi rows y in
  Alcotest.check floats "intercept" 1. coeffs.(0);
  Alcotest.check floats "b1" 2. coeffs.(1);
  Alcotest.check floats "b2" 3. coeffs.(2)

let test_solve_singular_rejected () =
  Alcotest.check_raises "singular"
    (Invalid_argument "Regression.solve_normal_equations: singular system")
    (fun () ->
      ignore
        (Stats.Regression.solve_normal_equations
           [| [| 1.; 2. |]; [| 2.; 4. |] |]
           [| 1.; 2. |]))

(* --- interpolation --- *)

let test_interpolate_interior () =
  Alcotest.check float_array "linear"
    [| 1.; 2.; 3.; 4. |]
    (Stats.Interpolate.fill_linear (arr [ 1.; Float.nan; Float.nan; 4. ]))

let test_interpolate_edges_extrapolate () =
  Alcotest.check float_array "extrapolation"
    [| 0.; 1.; 2.; 3. |]
    (Stats.Interpolate.fill_linear (arr [ Float.nan; 1.; 2.; Float.nan ]))

let test_interpolate_single_point () =
  Alcotest.check float_array "constant"
    [| 5.; 5.; 5. |]
    (Stats.Interpolate.fill_linear (arr [ Float.nan; 5.; Float.nan ]))

(* --- seasonal decomposition --- *)

let synthetic ~n ~period ~trend_slope ~amp =
  Array.init n (fun i ->
      let t = float_of_int i in
      (trend_slope *. t)
      +. (amp *. sin (2. *. Float.pi *. t /. float_of_int period)))

let test_decompose_reconstruction_identity () =
  let xs = synthetic ~n:48 ~period:12 ~trend_slope:0.8 ~amp:10. in
  List.iter
    (fun method_ ->
      let c = Stats.Decompose.decompose ~method_ ~period:12 xs in
      Array.iteri
        (fun i x ->
          Alcotest.check floats "identity" x
            (c.Stats.Decompose.trend.(i)
            +. c.Stats.Decompose.seasonal.(i)
            +. c.Stats.Decompose.remainder.(i)))
        xs)
    [ Stats.Decompose.Classical; Stats.Decompose.Stl ]

let test_decompose_recovers_components () =
  let period = 12 and slope = 0.8 and amp = 10. in
  let xs = synthetic ~n:72 ~period ~trend_slope:slope ~amp in
  let c = Stats.Decompose.stl ~period xs in
  (* the trend should grow with roughly the true slope in the interior *)
  let t = c.Stats.Decompose.trend in
  let measured_slope = (t.(60) -. t.(12)) /. 48. in
  Alcotest.(check bool) "slope recovered" true
    (Float.abs (measured_slope -. slope) < 0.1);
  (* the seasonal component should carry most of the sinusoid's variance *)
  let seasonal_sd = Stats.Descriptive.stddev c.Stats.Decompose.seasonal in
  Alcotest.(check bool) "seasonal amplitude" true
    (seasonal_sd > 0.8 *. (amp /. sqrt 2.));
  (* and the remainder should be comparatively small *)
  let remainder_sd = Stats.Descriptive.stddev c.Stats.Decompose.remainder in
  Alcotest.(check bool)
    (Printf.sprintf "remainder small (%.3f vs %.3f)" remainder_sd seasonal_sd)
    true
    (remainder_sd < 0.25 *. seasonal_sd)

let test_decompose_seasonal_periodicity () =
  let xs = synthetic ~n:48 ~period:4 ~trend_slope:0.3 ~amp:5. in
  let c = Stats.Decompose.classical ~period:4 xs in
  (* classical seasonal figure repeats exactly *)
  for i = 0 to 43 do
    Alcotest.check floats "periodic"
      c.Stats.Decompose.seasonal.(i)
      c.Stats.Decompose.seasonal.(i + 4)
  done

let test_decompose_too_short_rejected () =
  Alcotest.check_raises "too short"
    (Invalid_argument
       "Decompose: series of length 6 too short for period 4 (need >= 8)")
    (fun () -> ignore (Stats.Decompose.stl ~period:4 (Array.make 6 1.)))

let prop_deseasonalize_removes_seasonality =
  QCheck.Test.make ~count:50 ~name:"deseasonalized series is less seasonal"
    QCheck.(pair (int_range 2 20) (int_range 3 9))
    (fun (amp, slope_tenths) ->
      (* the shrinker may escape the declared ranges; a flat series has
         no seasonality to remove *)
      QCheck.assume (amp >= 2 && slope_tenths >= 1);
      let amp = float_of_int amp and slope = float_of_int slope_tenths /. 10. in
      let xs = synthetic ~n:48 ~period:12 ~trend_slope:slope ~amp in
      let adjusted = Stats.Decompose.deseasonalize ~period:12 xs in
      let seasonal_power a =
        let c = Stats.Decompose.classical ~period:12 a in
        Stats.Descriptive.stddev c.Stats.Decompose.seasonal
      in
      (* Measuring seasonality of a trending series has an edge-effect
         floor; the adjusted series should sit near that floor, far
         below the seasonal signal itself. *)
      let floor_power =
        seasonal_power (synthetic ~n:48 ~period:12 ~trend_slope:slope ~amp:0.)
      in
      seasonal_power adjusted < floor_power +. (0.15 *. seasonal_power xs))

let suite =
  [
    ("descriptive: known values", `Quick, test_descriptive_known_values);
    ("descriptive: correlation", `Quick, test_descriptive_correlation);
    ("descriptive: empty rejected", `Quick, test_descriptive_empty_rejected);
    ("descriptive: autocorrelation", `Quick, test_autocorrelation);
    ("aggregate: known values", `Quick, test_aggregate_known);
    ("aggregate: names roundtrip", `Quick, test_aggregate_names_roundtrip);
    QCheck_alcotest.to_alcotest prop_aggregate_bounds;
    QCheck_alcotest.to_alcotest prop_sum_count_avg;
    ("moving: trailing average", `Quick, test_moving_trailing);
    ("moving: centered odd", `Quick, test_moving_centered_odd);
    ("moving: centered even (2xw)", `Quick, test_moving_centered_even_2xw);
    ("moving: diff and pct", `Quick, test_moving_diff_and_pct);
    ("moving: cumsum", `Quick, test_moving_cumsum);
    ("loess: fits linear exactly", `Quick, test_loess_fits_linear_exactly);
    ("loess: tricube", `Quick, test_loess_tricube);
    ("regression: recovers line", `Quick, test_ols_recovers_line);
    ("regression: degenerate x", `Quick, test_ols_degenerate_x);
    ("regression: multiple", `Quick, test_ols_multi);
    ("regression: singular rejected", `Quick, test_solve_singular_rejected);
    ("interpolate: interior", `Quick, test_interpolate_interior);
    ("interpolate: edges extrapolate", `Quick, test_interpolate_edges_extrapolate);
    ("interpolate: single point", `Quick, test_interpolate_single_point);
    ("decompose: reconstruction identity", `Quick, test_decompose_reconstruction_identity);
    ("decompose: recovers components", `Quick, test_decompose_recovers_components);
    ("decompose: classical periodicity", `Quick, test_decompose_seasonal_periodicity);
    ("decompose: too short rejected", `Quick, test_decompose_too_short_rejected);
    QCheck_alcotest.to_alcotest prop_deseasonalize_removes_seasonality;
  ]
