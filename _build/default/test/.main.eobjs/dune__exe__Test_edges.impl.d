test/test_edges.ml: Alcotest Array Astring_contains Calendar Core Cube Domain Engine Exchange Helpers List Mappings Matrix Ops Option Registry Relational Schema Value Vector
