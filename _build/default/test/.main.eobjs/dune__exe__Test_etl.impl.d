test/test_etl.ml: Alcotest Astring_contains Cube Etl Exl Gen Helpers List Mappings Matrix QCheck QCheck_alcotest Registry
