test/test_engine.ml: Alcotest Astring_contains Calendar Cube Domain Engine Exl Filename Gen Helpers List Matrix Option QCheck QCheck_alcotest Registry String Sys
