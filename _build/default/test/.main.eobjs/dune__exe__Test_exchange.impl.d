test/test_exchange.ml: Alcotest Calendar Cube Domain Exchange Exl Gen Helpers List Mappings Matrix Option QCheck QCheck_alcotest Registry Schema String Value
