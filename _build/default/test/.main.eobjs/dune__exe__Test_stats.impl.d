test/test_stats.ml: Alcotest Array Float Gen Helpers List Printf QCheck QCheck_alcotest Stats
