test/test_filter.ml: Alcotest Astring_contains Calendar Core Cube Domain Etl Exl Helpers List Mappings Matrix Option Registry Relational Schema Vector
