test/test_outer.ml: Alcotest Astring_contains Calendar Core Cube Domain Exl Helpers Mappings Matrix Ops Option Registry
