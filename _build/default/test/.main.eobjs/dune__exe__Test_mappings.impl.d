test/test_mappings.ml: Alcotest Exchange Exl Gen Helpers List Mappings Matrix Ops Option QCheck QCheck_alcotest Result Stats
