test/test_relational.ml: Alcotest Astring_contains Cube Exl Gen Helpers List Mappings Matrix QCheck QCheck_alcotest Registry Relational Result Schema String
