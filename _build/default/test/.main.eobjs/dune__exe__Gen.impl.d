test/gen.ml: Calendar Cube Domain List Matrix Printf QCheck Random Registry Schema String Tuple Value
