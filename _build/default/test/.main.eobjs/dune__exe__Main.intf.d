test/main.mli:
