test/main.ml: Alcotest Test_core Test_delta Test_edges Test_engine Test_etl Test_exchange Test_exl Test_filter Test_mappings Test_matrix Test_ops Test_outer Test_relational Test_stats Test_vector
