test/test_core.ml: Alcotest Astring_contains Core Cube Helpers List Matrix Registry String Vector
