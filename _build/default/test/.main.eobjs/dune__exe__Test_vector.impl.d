test/test_vector.ml: Alcotest Array Astring_contains Cube Domain Exl Gen Helpers List Mappings Matrix Ops Option QCheck QCheck_alcotest Registry Schema Stats Value Vector
