test/test_ops.ml: Alcotest Array Astring_contains Calendar Cube Domain Exl Helpers List Matrix Ops Option Registry Value
