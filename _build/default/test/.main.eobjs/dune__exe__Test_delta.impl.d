test/test_delta.ml: Alcotest Calendar Cube Domain Exchange Exl Gen Helpers List Mappings Matrix Option Printf QCheck QCheck_alcotest Random Registry Schema Tuple Value
