test/test_exl.ml: Alcotest Astring_contains Calendar Core Cube Domain Exl Float Gen Helpers List Matrix Ops Option QCheck QCheck_alcotest Registry Schema String Tuple Value
