test/helpers.ml: Alcotest Array Calendar Cube Domain Exl Float Fmt List Matrix Registry Schema Tuple Value
